#!/usr/bin/env python
"""The paper's headline experiment, as a story in four acts.

An attacker who (a) sits on the client's access link and (b) controls
one of the three trusted DoH providers tries to shift the client's
clock by 10 seconds. We try all four combinations of
{plain DNS, distributed DoH} x {naive SNTP, Chronos} and watch who
survives — reproducing §I/§V: plain DNS falls even with Chronos ([1]),
distributed DoH + Chronos holds.

Run:  python examples/chronos_timeshift.py
"""

from repro.attacks.timeshift import TimeShiftExperiment


def main() -> None:
    experiment = TimeShiftExperiment(seed=7, lie_offset=10.0,
                                     num_providers=3, corrupted_providers=1)
    print("Attacker: on-path at the client edge + 1 of 3 DoH providers; "
          "goal: shift clock by 10 s\n")
    header = (f"{'configuration':28s} {'pool poisoned':>13s} "
              f"{'clock error':>12s} {'verdict':>10s}")
    print(header)
    print("-" * len(header))
    for result in experiment.run_all():
        verdict = "SHIFTED" if result.shifted else "safe"
        print(f"{result.configuration:28s} "
              f"{result.pool_malicious_fraction:>12.0%} "
              f"{result.clock_error_after:>10.3f}s "
              f"{verdict:>10s}")
    print("\nReading: Chronos alone cannot survive a poisoned pool "
          "(rows 1-2); Algorithm 1 bounds the poison to 1/3 (rows 3-4); "
          "only the tandem (row 4) keeps correct time — §IV's point.")


if __name__ == "__main__":
    main()
