#!/usr/bin/env python
"""Attack lab: watch each attacker class succeed or fail mechanically.

Four attackers from the paper's threat discussion, each run against the
transport that stops it (or doesn't):

1. off-path TXID/port spray vs a weak plain-DNS resolver  -> poisoned
2. the same spray vs a hardened resolver                  -> rejected
3. on-path rewriting vs plain DNS and vs DoH              -> split
4. over-population through 1 corrupted DoH resolver, with
   and without §II fn.2's truncation                      -> split

Run:  python examples/attack_lab.py
"""

from repro.attacks.mitm import OnPathAttacker
from repro.attacks.offpath import OffPathPoisoner
from repro.attacks.overpopulation import OverPopulationAttack
from repro.core.policy import TruncationPolicy
from repro.dns.client import StubResolver
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.scenarios import materialize, pool_spec

FORGED = [f"203.0.113.{i + 1}" for i in range(4)]


def act1_and_2_offpath() -> None:
    for hardened in (False, True):
        scenario = materialize(pool_spec(
            resolver_config=None if hardened else ResolverConfig(
                txid_bits=6, randomize_txid=False)), seed=5)
        victim = scenario.providers[0]
        if not hardened:
            victim.host._randomize_ports = False
        poisoner = OffPathPoisoner(scenario.internet,
                                   injection_node=victim.host.node)
        outcomes = []
        victim.resolver.resolve(scenario.pool_domain, RRType.A,
                                outcomes.append)
        poisoner.poison_resolver_lookup(
            victim_address=victim.address,
            qname=scenario.pool_domain, qtype=RRType.A,
            spoofed_server=Endpoint(IPAddress("10.0.0.1"), 53),
            forged_addresses=[IPAddress(a) for a in FORGED],
            port_window=4, txid_bits=6 if not hardened else 10)
        scenario.simulator.run()
        poisoned = victim.resolver.stats.poisoned_acceptances
        label = "hardened (random TXID+port)" if hardened else "weak (sequential)"
        # Forgeries to unused ports die at the host; ones reaching the
        # socket still face the TXID check.
        print(f"  off-path spray vs {label:28s}: "
              f"{poisoner.total_packets_injected} forged packets -> "
              f"{'POISONED' if poisoned else 'none accepted'}")


def act3_onpath() -> None:
    scenario = materialize(pool_spec(), seed=6)
    mitm = OnPathAttacker(scenario.internet,
                          ["client-edge--eu-central"])
    mitm.poison_a_records(scenario.pool_domain, FORGED)

    stub = StubResolver(scenario.client, scenario.simulator,
                        scenario.providers[0].address, timeout=5.0)
    outcomes = []
    stub.query(scenario.pool_domain, RRType.A, outcomes.append)
    scenario.simulator.run()
    plain_poisoned = all(str(a) in FORGED for a in outcomes[0].addresses)
    print(f"  on-path rewrite vs plain DNS: "
          f"{'POISONED (full pool replaced)' if plain_poisoned else '??'}")

    pool = scenario.generate_pool_sync()
    doh_clean = all(scenario.directory.is_benign(a) for a in pool.addresses)
    print(f"  on-path rewrite vs DoH      : "
          f"{'powerless (pool clean, ' if doh_clean else '??'}"
          f"{mitm.stats.tls_records_seen} opaque TLS records observed)")


def act4_overpopulation() -> None:
    for policy in (TruncationPolicy.NONE, TruncationPolicy.SHORTEST):
        scenario = materialize(pool_spec(answers_per_query=4), seed=8)
        attack = OverPopulationAttack(scenario, corrupted=1, inflate_to=20)
        result = attack.run(policy)
        verdict = ("ATTACKER MAJORITY"
                   if result.attacker_controls_majority else "bounded to 1/N")
        print(f"  over-population, truncation={policy.value:8s}: "
              f"attacker share {result.attacker_fraction:.0%} -> {verdict}")


def main() -> None:
    print("Act 1-2: off-path forgery (the Introduction's weak link)")
    act1_and_2_offpath()
    print("\nAct 3: on-path attacker vs both transports")
    act3_onpath()
    print("\nAct 4: over-population ([1]) vs §II fn.2 truncation")
    act4_overpopulation()


if __name__ == "__main__":
    main()
