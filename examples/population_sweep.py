#!/usr/bin/env python
"""Population sweep: victim fraction across a whole client fleet.

Stands up one simulated internet with the Figure 1 infrastructure, the
NTP server fleet behind pool.ntp.org, and a few hundred resolve→sync
clients with churn — then reads the population outcomes (victim
fraction over virtual time, availability, clock-error distribution)
straight from the streaming telemetry registry.

Both sweep axes here are plain dotted spec paths: the attack knob
(``provider.corrupted``) and the execution knob (``fleet.shards``).
``fleet.shards`` above 1 routes ``materialize`` to the sharded
megafleet engine — the same population split into K windows, each run
as its own world and folded back into one registry — which is how the
same spec scales past 100k clients.

Run:  python examples/population_sweep.py
"""

from repro.scenarios import materialize, population_spec, set_path

BASE = population_spec(
    num_clients=300,          # one population, three hundred clients
    rounds=4,                 # resolve→sync rounds per client
    arrival="poisson",        # memoryless client wake-ups
    churn_rate=0.1,           # clients leave and rejoin
)


def main() -> None:
    print("corrupted  shards  victim fraction  availability  "
          "mean |clock err|  churn")
    print("---------  ------  ---------------  ------------  "
          "----------------  -----")
    world = None
    for corrupted in (0, 1, 2, 3):
        for shards in (1, 4):
            # One declarative world per point: the base spec with both
            # axes swept by dotted path.
            spec = set_path(BASE, "provider.corrupted", corrupted)
            spec = set_path(spec, "fleet.shards", shards)
            world = materialize(spec, seed=2026)
            outcomes = world.run()
            print(f"{corrupted}/3        "
                  f"{shards:6d}  "
                  f"{outcomes.victim_fraction:15.3f}  "
                  f"{outcomes.availability:12.0%}  "
                  f"{outcomes.mean_abs_clock_error * 1000:13.1f} ms  "
                  f"{outcomes.churn_leaves:5d}")
    outcomes = world.outcomes()

    # The last scenario's victim curve, binned in virtual time by the
    # telemetry pipeline (pop.victim_fraction TimeSeries) — folded
    # across the shard worlds, so it reads exactly like a one-world run.
    print("\nVictim fraction over virtual time (corrupted = 3/3, 4 shards):")
    for when, fraction in outcomes.victim_curve:
        bar = "#" * round(fraction * 40)
        print(f"  t={when:6.1f}s  {fraction:5.1%}  {bar}")

    # Everything above is also available as raw instruments.
    registry = world.telemetry
    print(f"\nTelemetry: {registry.value('net.datagrams_sent'):.0f} datagrams, "
          f"{registry.value('pop.rounds'):.0f} rounds, "
          f"{len(registry.names())} instruments "
          f"(last point executed {world.executed_mode!r} "
          f"over {world.shards} shards)")


if __name__ == "__main__":
    main()
