#!/usr/bin/env python
"""Cryptocurrency peer bootstrapping — the paper's other motivation.

§I cites Loe & Quaglia (CCS'19): "most Cryptocurrencies just rely on the
DNS" to discover their first peers, so an eclipse attacker who poisons
the seed lookup owns the node's whole view of the network. We rebuild
the Figure 1 machinery around a ``seed.coin.example``-style domain and
show the same Algorithm 1 bound for eclipse resistance, plus the
per-address majority vote for a node that refuses *any* unvouched peer.

This example deliberately wires the world from the low-level APIs
(topology, zones, providers) instead of using the NTP scenario builder —
a template for adapting the library to a new pool-consuming application.

Run:  python examples/crypto_bootstrap.py
"""

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.majority import MajorityVoteCombiner
from repro.core.pool import PoolGeneratorConfig, SecurePoolGenerator
from repro.core.resolverset import ResolverRef, ResolverSet
from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.rrtype import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.doh.client import DoHClient
from repro.doh.providers import FIGURE1_PROVIDERS, deploy_provider
from repro.doh.tls import CertificateAuthority, TrustStore
from repro.netsim.address import IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.scenarios.workload import PoolDirectory
from repro.util.rng import RngRegistry

SEED_DOMAIN = Name("seed.coin.example")
ATTACKER_PEERS = [f"203.0.113.{i + 1}" for i in range(6)]


def build_world(seed: int = 99):
    registry = RngRegistry(seed)
    simulator = Simulator()
    topology = Topology.global_backbone(rng_registry=registry)
    topology.add_link("node-edge", "asia-east", LinkProfile.metro())
    topology.add_link("seed-dns-edge", "eu-central", LinkProfile.metro())
    internet = Internet(simulator, topology, registry)

    # DNS: root delegating "example", which holds the seeder zone.
    root_host = internet.add_host(
        Host("root-ns", "seed-dns-edge", [ip("10.0.0.1")]))
    root_zone = Zone(".", soa_mname="root-ns.example")
    root_zone.add_delegation("example", "ns1.example",
                             glue=[ARdata("10.0.0.2")])
    example_host = internet.add_host(
        Host("ns1.example", "seed-dns-edge", [ip("10.0.0.2")]))
    example_zone = Zone("example", soa_mname="ns1.example")
    example_zone.add_record("ns1.example", ARdata("10.0.0.2"))

    # The DNS seeder: 30 full nodes, 5 returned per query (bitcoind-ish).
    peers = PoolDirectory(
        benign=[f"172.20.0.{i + 1}" for i in range(30)],
        answers_per_query=5, rng=registry.stream("seeder"))
    example_zone.add_provider(SEED_DOMAIN, RRType.A,
                              peers.record_provider(), ttl=60)
    AuthoritativeServer(root_host, [root_zone])
    AuthoritativeServer(example_host, [example_zone])
    root_hints = [(Name("root-ns.example"), IPAddress("10.0.0.1"))]

    # Five DoH providers: the three from Fig.1 plus two regional ones.
    from repro.doh.providers import DoHProviderProfile
    profiles = list(FIGURE1_PROVIDERS) + [
        DoHProviderProfile("doh.asia.example", "asia-south", "10.53.0.4"),
        DoHProviderProfile("doh.eu.example", "eu-central", "10.53.0.5"),
    ]
    ca = CertificateAuthority("Coin Root CA", registry.stream("ca"))
    providers = [deploy_provider(internet, profile, ca, root_hints, registry)
                 for profile in profiles]

    node = internet.add_host(Host("coin-node", "node-edge",
                                  [ip("10.77.0.1")]))
    return (simulator, internet, registry, node, providers,
            TrustStore([ca]), peers)


def main() -> None:
    simulator, internet, registry, node, providers, trust, peers = build_world()

    # The attacker runs 2 of the 5 trusted resolvers (x = 3/5 honest).
    corrupt_first_k(providers, 2, CompromiseConfig(
        target=SEED_DOMAIN,
        behavior=CompromisedResolverBehavior.SUBSTITUTE,
        forged_addresses=ATTACKER_PEERS[:5]))

    doh = DoHClient(node, simulator, trust,
                    rng=registry.stream("node-doh"))
    resolver_set = ResolverSet(
        [ResolverRef(p.name, p.endpoint) for p in providers],
        assumed_secure_fraction=3 / 5)
    generator = SecurePoolGenerator(doh, resolver_set, simulator,
                                    PoolGeneratorConfig())

    pools = []
    generator.generate(SEED_DOMAIN.to_text(), pools.append)
    simulator.run()
    pool = pools[0]

    eclipse = {IPAddress(a) for a in ATTACKER_PEERS}
    attacker_share = sum(1 for a in pool.addresses if a in eclipse) / len(
        pool.addresses)
    print(f"Bootstrap peer pool: {len(pool.addresses)} entries from "
          f"{len(providers)} resolvers (K={pool.truncate_length})")
    print(f"Attacker-run resolvers: 2/5 -> eclipse peers in pool: "
          f"{attacker_share:.0%} (bounded by 2/5 = 40%)")
    assert attacker_share <= 2 / 5 + 1e-9

    # A paranoid node: only connect to majority-vouched peers.
    voted = MajorityVoteCombiner().combine(pool.contributions)
    voted_attacker = sum(1 for a in voted if a in eclipse)
    print(f"Majority-vouched peers: {len(voted)} "
          f"({voted_attacker} attacker-controlled)")
    print("\nAn eclipse needs 3 of 5 resolver compromises here; with one "
          "plain-DNS seed lookup it needed a single off-path poisoning.")


if __name__ == "__main__":
    main()
