#!/usr/bin/env python
"""Deployment planner: how many resolvers do you need?

Uses the §III analysis to answer the operator's question: given an
estimate of per-resolver compromise probability, how many independent
DoH resolvers give a target security level — the paper's "key size"
knob, tabulated.

Run:  python examples/deployment_planner.py
"""

from repro.analysis import (
    attack_probability_exact,
    attack_probability_paper,
    marginal_bits_per_resolver,
    resolvers_for_target_security,
    security_bits,
)


def main() -> None:
    x = 0.5  # attacker must corrupt half the resolvers (y = 1/2 goal)

    print("Attack probability by deployment size (x = 1/2)\n")
    print(f"{'N':>3s}  " + "".join(f"p={p:<11.2f}" for p in (0.05, 0.1, 0.2)))
    for n in (3, 5, 7, 9, 13, 17, 25, 33):
        row = [f"{n:>3d}  "]
        for p in (0.05, 0.1, 0.2):
            row.append(f"{attack_probability_paper(n, x, p):<13.2e}")
        print("".join(row))

    print("\nSecurity bits (paper model) and the key-size analogy:")
    for p in (0.05, 0.1, 0.2):
        slope = marginal_bits_per_resolver(x, p)
        print(f"  p={p:.2f}: every added resolver buys {slope:.2f} bits "
              f"(N=9 -> {security_bits(9, x, p):.1f} bits)")

    print("\nSmallest N for a target attack probability (p=0.1):")
    for target in (1e-3, 1e-6, 1e-9, 1e-12):
        n = resolvers_for_target_security(x, 0.1, target)
        exact = attack_probability_exact(n, x, 0.1)
        print(f"  target {target:.0e}: N = {n:2d} "
              f"(exact binomial model: {exact:.2e})")

    print("\nPaper's 3-resolver example: attacking a 2/3 majority needs "
          f"2 resolvers -> p^2 = {attack_probability_paper(3, 2/3, 0.1):.3f} "
          "at p=0.1.")


if __name__ == "__main__":
    main()
