#!/usr/bin/env python
"""Trace one poisoned referral chain through the resolution hierarchy.

The H1 experiments measure *how often* cache expiries hand an off-path
attacker a raceable window; this example shows *one* such race being
won, causally. A small client population resolves ``pool.ntp.org``
through providers whose recursors walk the real root→TLD→authoritative
chain (``ResolverSpec(mode="iterative")``), while an off-path sprayer
races forged answers against provider 0's upstream queries. The run
executes under a :class:`~repro.telemetry.trace.Tracer`; the span tree
is then read back to narrate:

* the benign referral walk (each ``resolver.step`` hop: zone, server,
  referral depth),
* the step where a spoofed response beat the TXID/port checks
  (``poisoned=True`` on the span) and entered the cache,
* and how the poisoned answer flowed into client NTP syncs against the
  attacker's server.

Timestamps are virtual and span IDs counter-derived, so the printed
chains are bit-identical on every run — diff them across code changes.

Run:  python examples/hierarchy_poisoning.py [--out TRACE.jsonl]
"""

import argparse
from pathlib import Path

from repro.scenarios.presets import hierarchy_population_spec
from repro.scenarios.spec import materialize
from repro.telemetry.trace import Tracer, use_tracer
from repro.telemetry.tracetool import (
    TraceIndex,
    attrs,
    format_victim_chain,
    summarize,
    victim_rounds,
)

#: What the sprayer forges into provider 0's cache.
FORGED = ("203.0.113.66",)

#: Short pool TTL + a fast sprayer: expiries re-open upstream
#: resolutions often enough that one race lands within the run.
SPEC = hierarchy_population_spec(
    num_clients=10, rounds=3, pool_ttl=15,
    spray_rate=8.0, spray_duration=60.0,
    covered_bits=6, port_window=2, forged=FORGED)


def narrate_referral_walk(index, resolve_span) -> None:
    """Print each hop of one resolution's walk down the hierarchy."""
    a = attrs(resolve_span)
    print(f"resolve {a['qname']} ({a['qtype']}) "
          f"via {a.get('resolver', '?')}:")
    for step in index.children(resolve_span, name="resolver.step"):
        s = attrs(step)
        flag = "  <-- POISONED" if s.get("poisoned") else ""
        print(f"  depth {s['depth']}: zone {s['zone']!r:14} "
              f"server {s['server']}{flag}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="TRACE.jsonl",
                        help="also write the trace as JSONL (feed it to "
                             "python -m repro.telemetry.tracetool)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    # Publishers capture the ambient tracer when constructed, so the
    # world must be materialized inside the tracer scope.
    tracer = Tracer()
    with use_tracer(tracer):
        root = tracer.begin("campaign.trial",
                            attrs={"point": "hierarchy_poisoning",
                                   "trial": 0, "seed": args.seed})
        with tracer.scope(root):
            world = materialize(SPEC, args.seed)
            outcomes = world.run()
        tracer.finish(root)

    index = TraceIndex(tracer.snapshot())
    stats = [d.resolver.stats for d in world.pool.providers]
    poisoned = sum(s.poisoned_acceptances for s in stats)
    print(f"{SPEC.fleet.size} clients x {SPEC.fleet.rounds} rounds over "
          f"the 2-level hierarchy, pool TTL {SPEC.pool.ttl}s, sprayer at "
          f"{SPEC.attacks[0].param('rate'):.0f} bursts/s:")
    print(f"  exposure windows {sum(s.exposure_windows for s in stats)}, "
          f"spoofs rejected {sum(s.spoofs_rejected for s in stats)}, "
          f"poisoned acceptances {poisoned}, "
          f"victim rounds {outcomes.victim_rounds}/{outcomes.rounds}\n")
    print(summarize(index))
    print()

    # The benign walk first: the deepest clean resolution we traced.
    resolves = index.named("resolver.resolve")
    clean = next(r for r in resolves
                 if not any(attrs(s).get("poisoned")
                            for s in index.children(
                                r, name="resolver.step")))
    narrate_referral_walk(index, clean)
    print()

    # Then every step a forgery actually won.
    dirty = [r for r in resolves
             if any(attrs(s).get("poisoned")
                    for s in index.children(r, name="resolver.step"))]
    if not dirty:
        print("no poisoned step in this trace — rerun with another "
              "--seed or a higher spray rate")
    for r in dirty:
        narrate_referral_walk(index, r)
        print()

    # And where the poison went: client rounds that synced to FORGED.
    rounds = victim_rounds(index)
    for round_span in rounds[:2]:
        print(format_victim_chain(index, round_span, forged=FORGED))
        print()
    if len(rounds) > 2:
        print(f"... {len(rounds) - 2} more victim chain(s) omitted")

    if args.out:
        Path(args.out).write_text(tracer.to_jsonl())
        print(f"\nwrote {args.out} — analyze with:\n"
              f"  python -m repro.telemetry.tracetool {args.out} "
              f"--forged 203.0.113.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
