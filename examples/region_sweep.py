#!/usr/bin/env python
"""Per-region fleet vs an on-path attacker, as one declarative sweep.

Three access regions with heterogeneous links, an attacker owning only
the European one: its victim share is its *path coverage* (≈ 1/R),
however many trusted resolvers the clients fan out to.

Run:  python examples/region_sweep.py
"""

from repro.campaign import CampaignRunner, ParameterGrid, spec_trial
from repro.scenarios import (
    AttackSpec, FaultSpec, LinkSpec, RegionSpec, population_spec, set_path,
)

REGIONS = (
    RegionSpec(name="eu", attach="eu-central", link=LinkSpec(latency=0.002)),
    RegionSpec(name="us", attach="us-east", link=LinkSpec(latency=0.012)),
    RegionSpec(name="asia", attach="asia-east", link=LinkSpec(latency=0.030),
               fault=FaultSpec(loss_rate=0.05)),     # a lossy far edge
)
ONPATH = AttackSpec.of("mitm", at="region:eu", mode="poison",
                       forged=("203.0.113.101", "203.0.113.102"))

GRID = ParameterGrid.over_spec(
    population_spec(num_clients=90, rounds=3),       # the base world
    {"network.regions": (REGIONS[:1], REGIONS[:2], REGIONS[:3]),
     "attacks": ((), (ONPATH,))},                    # swept spec paths
    name="region-sweep")


def main() -> None:
    result = CampaignRunner(spec_trial, base_seed=7).run(GRID)
    print("regions  attacker      victim fraction  availability")
    for s in result.summaries:
        attacked = bool(s.params["attacks"])
        print(f"{len(s.params['network.regions']):7d}  "
              f"{'on-path @ eu' if attacked else 'none':12s}  "
              f"{s['victim_fraction'].mean:15.3f}  "
              f"{s['availability'].mean:12.0%}")


if __name__ == "__main__":
    main()
