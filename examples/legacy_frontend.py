#!/usr/bin/env python
"""Backward compatibility: an unmodified stub resolver behind the
majority front-end.

The paper promises deployment "without changing the DNS infrastructure,
offering a standard-compatible DNS-resolver interface". Here a legacy
application host points its ordinary plain-DNS stub at the front-end:
pool queries transparently get Algorithm 1's combined answer, everything
else is proxied over secure DoH.

Run:  python examples/legacy_frontend.py
"""

from repro.core.frontend import MajorityDnsFrontend
from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.netsim.address import ip
from repro.netsim.host import Host
from repro.scenarios import figure1_scenario


def main() -> None:
    scenario = figure1_scenario(seed=11)

    # The front-end runs on the client's gateway host, port 53.
    frontend = MajorityDnsFrontend(
        scenario.client,
        scenario.make_generator(),
        scenario.make_doh_client("frontend"),
        pool_domains=[scenario.pool_domain])

    # A legacy application machine: stock stub resolver, no DoH, no
    # awareness of the scheme.
    legacy_host = scenario.internet.add_host(
        Host("legacy-app", "client-edge", [ip("10.99.0.2")]))
    stub = StubResolver(legacy_host, scenario.simulator,
                        scenario.client.primary_address, timeout=10.0)

    def lookup(qname: str, qtype=RRType.A):
        outcomes = []
        stub.query(qname, qtype, outcomes.append)
        scenario.simulator.run()
        return outcomes[0]

    print("Legacy app -> plain DNS :53 -> majority front-end\n")

    pool_answer = lookup("pool.ntp.org")
    print(f"pool.ntp.org A -> {len(pool_answer.addresses)} addresses "
          f"(Algorithm 1 combined, {frontend.pool_queries} pool query):")
    for address in pool_answer.addresses:
        print(f"  {address}")

    other_answer = lookup("c.ntpns.org")
    print(f"\nc.ntpns.org A -> {[str(a) for a in other_answer.addresses]} "
          f"(proxied over DoH, {frontend.proxied_queries} proxy query)")

    missing = lookup("does-not-exist.ntp.org")
    print(f"does-not-exist.ntp.org -> RCODE "
          f"{missing.response.rcode.name} (errors propagate faithfully)")


if __name__ == "__main__":
    main()
