#!/usr/bin/env python
"""Trace one compromised-provider trial and read the attack off the spans.

The E2 experiments measure *how much* of the pool an attacker owning
``corrupted`` of ``N`` DoH providers captures; this example shows *how*
a single capture happens, causally. A small client population resolves
its NTP pool through 3 DoH providers, one of which substitutes forged
addresses (the paper's §III-a compromised-resolver attacker). The whole
run executes under a :class:`~repro.telemetry.trace.Tracer`, and the
resulting span tree is then read back with the ``tracetool`` analyzer:

* which provider's corrupted answer survived Algorithm 1's combine,
* through which network path (per-hop latency included),
* and how the poisoned pick flowed into the client's SNTP sync.

Timestamps are virtual and span IDs counter-derived, so the printed
chains are bit-identical on every run — diff them across code changes.

Run:  python examples/trace_attack.py [--out TRACE.jsonl]
"""

import argparse
from pathlib import Path

from repro.scenarios.spec import materialize, population_spec
from repro.telemetry.trace import Tracer, use_tracer
from repro.telemetry.tracetool import (
    TraceIndex,
    format_victim_chain,
    summarize,
    victim_rounds,
)

#: The attacker's addresses — what the corrupted provider substitutes
#: for every pool answer it serves.
FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

SPEC = population_spec(
    num_clients=6, rounds=2,
    num_providers=3, corrupted=1, behavior="substitute", forged=FORGED,
    pool_size=12, answers_per_query=4, lie_offset=10.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="TRACE.jsonl",
                        help="also write the trace as JSONL (feed it to "
                             "python -m repro.telemetry.tracetool)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    # Publishers capture the ambient tracer when constructed, so the
    # world must be materialized inside the tracer scope.
    tracer = Tracer()
    with use_tracer(tracer):
        root = tracer.begin("campaign.trial",
                            attrs={"point": "trace_attack", "trial": 0,
                                   "seed": args.seed})
        with tracer.scope(root):
            world = materialize(SPEC, args.seed)
            outcomes = world.run()
        tracer.finish(root)

    index = TraceIndex(tracer.snapshot())
    print(f"1 corrupted / 3 providers, {SPEC.fleet.size} clients x "
          f"{SPEC.fleet.rounds} rounds: "
          f"{outcomes.victim_rounds}/{outcomes.rounds} victim rounds, "
          f"{len(index.spans)} spans\n")
    print(summarize(index))
    print()

    rounds = victim_rounds(index)
    for round_span in rounds[:2]:
        print(format_victim_chain(index, round_span, forged=FORGED))
        print()
    if len(rounds) > 2:
        print(f"... {len(rounds) - 2} more victim chain(s) omitted")

    if args.out:
        Path(args.out).write_text(tracer.to_jsonl())
        print(f"\nwrote {args.out} — analyze with:\n"
              f"  python -m repro.telemetry.tracetool {args.out} "
              f"--forged 203.0.113.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
