#!/usr/bin/env python
"""Quickstart: generate a secure NTP server pool with distributed DoH.

Builds the paper's Figure 1 world — three public DoH resolvers
(dns.google, cloudflare-dns.com, dns.quad9.net), the pool.ntp.org zone
on the c/d/e.ntpns.org nameservers — and runs Algorithm 1 once.

Run:  python examples/quickstart.py
"""

from repro.scenarios import figure1_scenario


def main() -> None:
    # One seeded, deterministic world: DNS tree + 3 DoH providers + client.
    scenario = figure1_scenario(seed=2024)

    print("Trusted DoH resolvers:")
    for deployment in scenario.providers:
        print(f"  {deployment.name:22s} at {deployment.endpoint}")
    print(f"Pool domain: {scenario.pool_domain} "
          f"({len(scenario.directory.benign)} registered servers, "
          f"{scenario.directory.answers_per_query} returned per query)\n")

    # Algorithm 1: query through every resolver, truncate to the
    # shortest list, combine. `generate_pool_sync` drives the simulator
    # until the callback fires.
    pool = scenario.generate_pool_sync()

    print(f"Generated pool ({len(pool.addresses)} addresses = "
          f"{len(pool.contributions)} resolvers x K={pool.truncate_length}):")
    for resolver_name, contribution in pool.contributions.items():
        formatted = ", ".join(str(address) for address in contribution)
        print(f"  {resolver_name:22s} -> {formatted}")

    benign = scenario.directory.benign_fraction(pool.addresses)
    print(f"\nBenign fraction: {benign:.0%}")
    print(f"Max share from any single resolver: "
          f"{pool.max_contribution_fraction():.0%} "
          f"(bounded to 1/N = {1 / len(pool.contributions):.0%})")
    print(f"Wall-clock (virtual): {pool.elapsed * 1000:.1f} ms for "
          f"{len(pool.answers)} parallel DoH lookups")


if __name__ == "__main__":
    main()
