"""Deterministic, hierarchical random-number management.

Every stochastic component of the simulation draws from a named stream
derived from a single root seed. Two runs with the same root seed are
bit-identical, regardless of the order in which components are created,
because each stream's seed depends only on the root seed and the stream
name — never on global RNG state.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, Sequence, Tuple, TypeVar

T = TypeVar("T")

_SEED_BYTES = 8


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation hashes the root seed together with the name path, so
    the child seed is stable across runs and independent of creation
    order.

    >>> derive_seed(42, "netsim") == derive_seed(42, "netsim")
    True
    >>> derive_seed(42, "netsim") != derive_seed(42, "attacks")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        encoded = name.encode("utf-8")
        # Length-prefix every component so that no concatenation of
        # names can collide with a different split of the same bytes.
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")


def make_rng(root_seed: int, *names: str) -> random.Random:
    """Create an independent :class:`random.Random` for a named stream."""
    return random.Random(derive_seed(root_seed, *names))


class StreamPrefix:
    """A pre-hashed name prefix for bulk child-stream derivation.

    :func:`derive_seed` feeds the root seed and every path component
    through one SHA-256 pass; components are length-prefixed, so the
    digest state after hashing a *prefix* of the path is a function of
    that prefix alone. A :class:`StreamPrefix` snapshots that state
    once and derives each child seed from a cheap ``hasher.copy()``
    plus the suffix components — bit-identical to
    ``derive_seed(root, *prefix, *suffix)`` by construction, without
    re-hashing the shared prefix per lookup. The population layer uses
    one prefix per client (``("population", tag)``) so building a
    100k-client shard does one prefix pass, not eight, per client.

    Streams are memoised in the owning registry's table under the same
    ``"/"``-joined keys :meth:`RngRegistry.stream` uses, so prefixed
    and direct lookups of the same path return the same generator.
    """

    __slots__ = ("_streams", "_names", "_hasher")

    def __init__(self, registry: "RngRegistry",
                 names: Tuple[str, ...]) -> None:
        self._streams = registry._streams
        self._names = names
        hasher = hashlib.sha256()
        hasher.update(str(int(registry.root_seed)).encode("ascii"))
        for name in names:
            encoded = name.encode("utf-8")
            hasher.update(len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
        self._hasher = hasher

    @property
    def names(self) -> Tuple[str, ...]:
        """The path components this prefix covers."""
        return self._names

    def derive(self, *names: str) -> int:
        """``derive_seed(root, *self.names, *names)``, from the
        snapshotted digest state."""
        hasher = self._hasher.copy()
        for name in names:
            encoded = name.encode("utf-8")
            hasher.update(len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
        return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")

    def stream(self, *names: str) -> random.Random:
        """The registry stream for ``(*self.names, *names)``."""
        key = "/".join(self._names + names)
        stream = self._streams.get(key)
        if stream is None:
            self._streams[key] = stream = random.Random(self.derive(*names))
        return stream


class RngRegistry:
    """A registry of named random streams sharing one root seed.

    The registry memoises streams so that repeated lookups of the same
    name return the same generator object (and therefore continue the
    same sequence).

    >>> reg = RngRegistry(7)
    >>> reg.stream("a") is reg.stream("a")
    True
    >>> reg.stream("a") is reg.stream("b")
    False
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this registry derives every stream from."""
        return self._root_seed

    def stream(self, *names: str) -> random.Random:
        """Return (creating if needed) the stream for a name path."""
        key = "/".join(names)
        if key not in self._streams:
            self._streams[key] = make_rng(self._root_seed, *names)
        return self._streams[key]

    def prefixed(self, *names: str) -> StreamPrefix:
        """A :class:`StreamPrefix` over ``names``: bulk-derive child
        streams without re-hashing the shared path prefix."""
        return StreamPrefix(self, tuple(names))

    def fork(self, *names: str) -> "RngRegistry":
        """Create a child registry whose root seed is derived from ours.

        Useful for handing a component its own private seed universe.
        """
        return RngRegistry(derive_seed(self._root_seed, *names))

    def shuffled(self, items: Sequence[T], *names: str) -> list[T]:
        """Return a shuffled copy of ``items`` using a named stream."""
        copy = list(items)
        self.stream(*names).shuffle(copy)
        return copy

    def sample(self, items: Sequence[T], k: int, *names: str) -> list[T]:
        """Sample ``k`` distinct items using a named stream."""
        return self.stream(*names).sample(list(items), k)

    def iter_seeds(self, *names: str) -> Iterator[int]:
        """Yield an endless deterministic sequence of child seeds."""
        index = 0
        while True:
            yield derive_seed(self._root_seed, *names, str(index))
            index += 1
