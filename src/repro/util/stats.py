"""Small statistics helpers used by the analysis and benchmark code.

These wrap the tiny amount of statistics the reproduction needs (means,
percentiles, normal-approximation confidence intervals, Welford running
moments) so that benchmark harnesses don't each reimplement them.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for singleton input."""
    n = len(values)
    if n == 0:
        raise ValueError("stddev() of empty sequence")
    if n == 1:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def median(values: Sequence[float]) -> float:
    """Median of a sequence (average of middle two for even length)."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    interpolated = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp: float rounding in the interpolation must never push the
    # result outside the data range.
    return min(max(interpolated, ordered[0]), ordered[-1])


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Returns ``(low, high)``. For a singleton sample the interval
    degenerates to the point itself.
    """
    if not values:
        raise ValueError("confidence_interval() of empty sequence")
    return normal_ci(mean(values), stddev(values), len(values), confidence)


def normal_ci(mu: float, sd: float, count: int,
              confidence: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation CI for a mean given its sample moments.

    The moments-based form of :func:`confidence_interval`, for callers
    (e.g. the campaign aggregator) that hold Welford accumulators rather
    than raw samples. Degenerates to the point itself for ``count == 1``;
    ``count < 1`` raises ``ValueError``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count == 1:
        return (mu, mu)
    # Two-sided z for the requested confidence via the probit function.
    z = _probit(0.5 + confidence / 2.0)
    half_width = z * sd / math.sqrt(count)
    return (mu - half_width, mu + half_width)


def _probit(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"probit argument must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


class RunningStats:
    """Welford online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for v in (1.0, 2.0, 3.0):
    ...     rs.add(v)
    >>> rs.count, rs.mean
    (3, 2.0)
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two samples."""
        if self._count == 0:
            raise ValueError("no observations")
        if self._count == 1:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._max

    def ci(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the running mean (see
        :func:`normal_ci`; degenerates to the point for one sample)."""
        return normal_ci(self.mean, self.stddev, self._count, confidence)

    def ci_width(self, confidence: float = 0.95) -> float:
        """Full width (high − low) of :meth:`ci` — the quantity
        adaptive sampling drives below its target."""
        low, high = self.ci(confidence)
        return high - low

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = RunningStats()
        if self._count == 0 and other._count == 0:
            return merged
        merged._count = self._count + other._count
        if self._count == 0:
            merged._mean, merged._m2 = other._mean, other._m2
        elif other._count == 0:
            merged._mean, merged._m2 = self._mean, self._m2
        else:
            delta = other._mean - self._mean
            merged._mean = (self._mean * self._count
                            + other._mean * other._count) / merged._count
            merged._m2 = (self._m2 + other._m2
                          + delta * delta * self._count * other._count
                          / merged._count)
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._count == 0:
            return "RunningStats(empty)"
        return (f"RunningStats(n={self._count}, mean={self._mean:.6g}, "
                f"sd={self.stddev:.6g})")
