"""Argument-validation helpers with consistent error messages.

Raising early with a precise message is the cheapest form of
documentation; these helpers keep the call sites one-liners.
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

T = TypeVar("T")


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str = "fraction") -> float:
    """Validate a fraction in the half-open interval (0, 1]."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate a strictly positive number."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate a number that is zero or greater."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_type(value: Any, expected: Type[T], name: str = "value") -> T:
    """Validate ``isinstance(value, expected)`` with a clear message."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
