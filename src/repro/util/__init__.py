"""Shared utilities: seeded randomness, statistics helpers, validation.

These helpers are deliberately small and dependency-free so that every
other subpackage (``repro.netsim``, ``repro.dns``, ``repro.core``, ...)
can rely on them without import cycles.
"""

from repro.util.rng import RngRegistry, derive_seed, make_rng
from repro.util.stats import (
    RunningStats,
    confidence_interval,
    mean,
    median,
    percentile,
    stddev,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngRegistry",
    "derive_seed",
    "make_rng",
    "RunningStats",
    "confidence_interval",
    "mean",
    "median",
    "percentile",
    "stddev",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
