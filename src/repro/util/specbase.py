"""Shared serialization base for declarative spec dataclasses.

Historically this machinery lived in :mod:`repro.scenarios.spec`; it
moved here so spec classes owned by lower layers (e.g.
:class:`repro.dns.hierarchy.HierarchySpec`) can use it without the DNS
layer importing the scenario compiler.  ``repro.scenarios.spec``
re-exports :class:`SpecBase`, so existing imports keep working.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError


def _encode(value: Any) -> Any:
    if isinstance(value, SpecBase):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


class SpecBase:
    """Shared serialization machinery for every spec dataclass.

    Subclasses declare nested fields in ``_NESTED`` as
    ``{field: (kind, spec_class)}`` with ``kind`` one of ``"spec"``,
    ``"opt"`` (optional spec), ``"tuple"`` (tuple of specs),
    ``"opt_tuple"`` (optional tuple of specs) or ``"scalars"`` (tuple
    of plain values, ``spec_class`` ignored).  Everything else
    round-trips as a JSON scalar.
    """

    _NESTED: Dict[str, Tuple[str, Optional[type]]] = {}

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_dict`."""
        return {f.name: _encode(getattr(self, f.name))
                for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpecBase":
        """Rebuild a spec from :meth:`to_dict` output (lists become
        tuples; unknown keys fail loudly to catch typo'd sweeps)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"{cls.__name__}.from_dict: unknown fields "
                f"{sorted(unknown)}; known: {sorted(known)}")
        kwargs: Dict[str, Any] = {}
        for name, raw in data.items():
            kind, spec_cls = cls._NESTED.get(name, (None, None))
            if kind == "spec":
                kwargs[name] = spec_cls.from_dict(raw)
            elif kind == "opt":
                kwargs[name] = (None if raw is None
                                else spec_cls.from_dict(raw))
            elif kind == "tuple":
                kwargs[name] = tuple(spec_cls.from_dict(item)
                                     for item in raw)
            elif kind == "opt_tuple":
                kwargs[name] = (None if raw is None
                                else tuple(spec_cls.from_dict(item)
                                           for item in raw))
            elif kind == "scalars":
                kwargs[name] = tuple(raw)
            else:
                kwargs[name] = raw
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, byte-stable across runs)."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SpecBase":
        return cls.from_dict(json.loads(text))


__all__ = ["SpecBase", "_encode"]
