"""The asymptotic advantage of adding resolvers (§III-b).

    "by increasing the number of used DoH resolvers, a successful attack
    becomes exponentially less probable, effectively giving the same
    type of asymptotic advantage over an attacker which is achieved by
    increasing the key size in a traditional cryptosystem."

We quantify that as *security bits*: ``-log2`` of the attack
probability. Under the paper's model the bits grow linearly in N with
slope ``x · (-log2 p_attack)`` — the key-size analogy made exact.
"""

from __future__ import annotations

import math

from repro.analysis.model import attack_probability_paper
from repro.util.validation import check_probability


def security_bits(n: int, x: float, p_attack: float) -> float:
    """``-log2`` of the paper-model attack probability.

    >>> security_bits(3, 2/3, 0.5)
    2.0
    """
    probability = attack_probability_paper(n, x, p_attack)
    if probability <= 0.0:
        return math.inf
    return -math.log2(probability)


def marginal_bits_per_resolver(x: float, p_attack: float) -> float:
    """Asymptotic security bits gained per added resolver.

    Each extra resolver raises ``M = ⌈xN⌉`` by ``x`` on average, so the
    exponent grows by ``x·(-log2 p)`` bits.
    """
    check_probability(p_attack, "p_attack")
    if p_attack == 0.0:
        return math.inf
    return x * -math.log2(p_attack)


def equivalent_keyspace_bits(n: int, x: float, p_attack: float) -> float:
    """Size (in bits) of the brute-force keyspace with the same success
    probability for a single guess — the paper's key-size framing."""
    return security_bits(n, x, p_attack)
