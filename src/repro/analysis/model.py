"""Closed-form security model (paper §III).

Two quantities:

* **§III-a** — with N resolvers each contributing exactly K of the N·K
  pool addresses, an attacker who wants a fraction ``y`` of the pool
  must corrupt at least ``⌈yN⌉`` resolvers ("x ≥ y").

* **§III-b** — if each resolver falls to the attacker independently
  with probability ``p_attack``, the probability of a successful attack
  against fraction ``x`` is, per the paper, ``p_attack^M`` with
  ``M = ⌈xN⌉``. That expression is the probability that M *specific*
  resolvers all fall; the exact probability that *at least* M of N fall
  is the binomial tail, which the Monte-Carlo experiments validate and
  for which the paper's term is the dominant factor at small p
  (tail ≈ C(N, M)·p^M).
"""

from __future__ import annotations

import math

from scipy.stats import binom

from repro.util.validation import check_fraction, check_probability


def required_corrupted_resolvers(n: int, target_fraction: float) -> int:
    """§III-a: resolvers to corrupt for a pool fraction ``y``.

    >>> required_corrupted_resolvers(3, 2/3)
    2
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_fraction(target_fraction, "target_fraction")
    # ceil with tolerance: y*n that is an exact integer needs exactly
    # that many resolvers (yK <= xK with x = y).
    return math.ceil(target_fraction * n - 1e-9)


def attack_probability_paper(n: int, x: float, p_attack: float) -> float:
    """§III-b, the paper's expression: ``p_attack^⌈xN⌉``.

    >>> attack_probability_paper(3, 2/3, 0.1)
    0.010000000000000002
    """
    check_probability(p_attack, "p_attack")
    m = required_corrupted_resolvers(n, x)
    return p_attack ** m


def attack_probability_exact(n: int, x: float, p_attack: float) -> float:
    """Exact independent-compromise model: P[Binomial(N, p) ≥ ⌈xN⌉].

    This is what a Monte-Carlo over independent per-resolver compromise
    converges to; the paper's ``p^M`` is its leading term divided by
    the ``C(N, M)`` choice factor.
    """
    check_probability(p_attack, "p_attack")
    m = required_corrupted_resolvers(n, x)
    if m <= 0:
        return 1.0
    # P[X >= m] = survival function at m-1.
    return float(binom.sf(m - 1, n, p_attack))


def resolvers_for_target_security(x: float, p_attack: float,
                                  target_probability: float) -> int:
    """Smallest N with paper-model attack probability ≤ target.

    Demonstrates the paper's "increase N like a key size" knob.
    """
    check_probability(p_attack, "p_attack")
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must be in (0, 1)")
    if p_attack == 0.0:
        return 1
    if p_attack == 1.0:
        raise ValueError("no N helps when every resolver falls (p=1)")
    for n in range(1, 10_000):
        if attack_probability_paper(n, x, p_attack) <= target_probability:
            return n
    raise ValueError("target unreachable below N=10000")
