"""Monte-Carlo validation of the §III models.

Two simulations:

* :func:`simulate_attack_probability` — flip a compromise coin per
  resolver per trial; count trials where ≥ ⌈xN⌉ fell. Converges to
  :func:`repro.analysis.model.attack_probability_exact`.
* :func:`simulate_pool_fraction` — build the combined pool under k
  corrupted resolvers (with the attacker inflating or not) and measure
  the attacker's share, validating both §III-a and §II footnote 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.policy import TruncationPolicy
from repro.util.rng import make_rng
from repro.util.validation import check_probability


@dataclass
class MonteCarloResult:
    """An estimate with its standard error and trial count."""

    estimate: float
    standard_error: float
    trials: int

    def within(self, expected: float, sigmas: float = 4.0) -> bool:
        """Is ``expected`` within ``sigmas`` standard errors (minimum
        tolerance 1e-9 for zero-variance corners)?"""
        tolerance = max(self.standard_error * sigmas, 1e-9)
        return abs(self.estimate - expected) <= tolerance

    @classmethod
    def from_chunk_means(cls, mean: float, stderr: float, chunks: int,
                         chunk_size: int) -> "MonteCarloResult":
        """Reassemble a result from equal-size chunked sub-simulations.

        When a campaign runs the simulation as ``chunks`` independent
        trials of ``chunk_size`` coin flips each, the mean of the chunk
        estimates equals the pooled estimate and the standard error of
        that mean equals the pooled standard error, so the aggregate's
        ``(mean, stderr)`` reconstructs the single-run result.
        """
        if chunks < 1 or chunk_size < 1:
            raise ValueError("chunks and chunk_size must be >= 1")
        return cls(estimate=mean, standard_error=stderr,
                   trials=chunks * chunk_size)


def simulate_attack_probability(n: int, x: float, p_attack: float,
                                trials: int = 10_000,
                                seed: int = 0) -> MonteCarloResult:
    """Estimate P[attacker corrupts ≥ ⌈xN⌉ of N resolvers]."""
    check_probability(p_attack, "p_attack")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    needed = math.ceil(x * n - 1e-9)
    rng = make_rng(seed, "mc-attack", str(n), str(x), str(p_attack))
    successes = 0
    for _ in range(trials):
        corrupted = sum(1 for _ in range(n) if rng.random() < p_attack)
        if corrupted >= needed:
            successes += 1
    estimate = successes / trials
    stderr = math.sqrt(max(estimate * (1 - estimate), 1e-12) / trials)
    return MonteCarloResult(estimate=estimate, standard_error=stderr,
                            trials=trials)


def simulate_pool_fraction(n: int, corrupted: int, answers_per_query: int,
                           inflate_to: int,
                           truncation: TruncationPolicy,
                           trials: int = 1_000,
                           seed: int = 0) -> MonteCarloResult:
    """Estimate the attacker's share of the combined pool.

    Honest resolvers answer ``answers_per_query`` genuine addresses;
    corrupted ones answer ``inflate_to`` attacker addresses. The pool is
    combined under ``truncation``.
    """
    if not 0 <= corrupted <= n:
        raise ValueError(f"corrupted must be in [0, {n}]")
    rng = make_rng(seed, "mc-pool", str(n), str(corrupted))
    fractions = []
    for _ in range(trials):
        lengths = ([inflate_to] * corrupted
                   + [answers_per_query] * (n - corrupted))
        k = truncation.truncate_length(lengths)
        attacker_share = corrupted * min(inflate_to, k)
        total = attacker_share + (n - corrupted) * min(answers_per_query, k)
        fractions.append(attacker_share / total if total else 0.0)
        rng.random()  # keep the stream advancing for API symmetry
    estimate = sum(fractions) / trials
    variance = sum((f - estimate) ** 2 for f in fractions) / max(trials - 1, 1)
    stderr = math.sqrt(variance / trials)
    return MonteCarloResult(estimate=estimate, standard_error=stderr,
                            trials=trials)


# ----------------------------------------------------------------------
# Campaign-engine adapters (module-level and picklable, so campaigns can
# shard the Monte-Carlo across worker processes).
# ----------------------------------------------------------------------


def _check_trial_params(params, known: frozenset) -> None:
    unknown = set(params) - known
    if unknown:
        raise ValueError(f"unrecognised trial parameters: {sorted(unknown)}; "
                         f"known: {sorted(known)}")


_ATTACK_PROBABILITY_KEYS = frozenset({"n", "x", "p_attack", "chunk"})
_POOL_FRACTION_KEYS = frozenset({"n", "corrupted", "answers_per_query",
                                 "inflate_to", "truncation", "chunk"})


def attack_probability_trial(params, seed: int) -> dict:
    """One campaign trial: a chunk of §III-b compromise simulations.

    Expects ``params`` with ``n``, ``x``, ``p_attack`` and optionally
    ``chunk`` (coin-flip trials per campaign trial, default 500).
    Returns the chunk's success fraction as metric ``"success"``; the
    campaign aggregate over equal-size chunks reconstructs the full
    Monte-Carlo estimate (see :meth:`MonteCarloResult.from_chunk_means`).
    """
    _check_trial_params(params, _ATTACK_PROBABILITY_KEYS)
    result = simulate_attack_probability(
        params["n"], params["x"], params["p_attack"],
        trials=params.get("chunk", 500), seed=seed)
    return {"success": result.estimate}


def pool_fraction_trial(params, seed: int) -> dict:
    """One campaign trial of the §III-a pool-share model.

    Expects ``n``, ``corrupted``, ``answers_per_query``, ``inflate_to``
    and ``truncation`` (a :class:`~repro.core.policy.TruncationPolicy`),
    plus optional ``chunk``. Returns metric ``"attacker_share"``.
    """
    _check_trial_params(params, _POOL_FRACTION_KEYS)
    result = simulate_pool_fraction(
        params["n"], params["corrupted"], params["answers_per_query"],
        params["inflate_to"], params["truncation"],
        trials=params.get("chunk", 100), seed=seed)
    return {"attacker_share": result.estimate}
