"""Analytic pool composition under k corrupted resolvers.

Closed forms for what :func:`repro.analysis.montecarlo.simulate_pool_fraction`
measures, and for what the end-to-end scenarios produce — used to
cross-check the three layers against each other in E2/E5.
"""

from __future__ import annotations

from repro.util.validation import check_positive


def pool_fraction_with_truncation(n: int, corrupted: int,
                                  honest_answers: int,
                                  attacker_answers: int) -> float:
    """Attacker's pool share under SHORTEST truncation.

    Every resolver contributes K = min(all list lengths); the attacker
    owns ``corrupted`` of the N shares — independent of how much it
    inflates (that is the theorem behind §II fn. 2).
    Degenerate case: an attacker answering *zero* records collapses the
    pool (returns 0.0 share of an empty pool; availability is the cost).
    """
    _validate(n, corrupted, honest_answers)
    if attacker_answers == 0 and corrupted > 0:
        return 0.0
    return corrupted / n


def pool_fraction_without_truncation(n: int, corrupted: int,
                                     honest_answers: int,
                                     attacker_answers: int) -> float:
    """Attacker's pool share when lists are concatenated unmodified.

    Inflation pays off linearly: share = cA / (cA + (N-c)H).
    """
    _validate(n, corrupted, honest_answers)
    attacker_total = corrupted * attacker_answers
    honest_total = (n - corrupted) * honest_answers
    total = attacker_total + honest_total
    if total == 0:
        return 0.0
    return attacker_total / total


def _validate(n: int, corrupted: int, honest_answers: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= corrupted <= n:
        raise ValueError(f"corrupted must be in [0, {n}], got {corrupted}")
    check_positive(honest_answers, "honest_answers")
