"""Security analysis (§III) — closed forms and Monte-Carlo validation.

* :mod:`repro.analysis.model` — the paper's two results: the required
  corrupted-resolver count ``⌈yN⌉`` (§III-a) and the attack probability
  ``p_attack^⌈xN⌉`` (§III-b), plus the exact independent-compromise
  (binomial tail) model the paper's expression approximates;
* :mod:`repro.analysis.montecarlo` — empirical validation of the models
  by direct simulation of resolver compromise;
* :mod:`repro.analysis.advantage` — the "key-size style asymptotic
  advantage": security bits as a function of N;
* :mod:`repro.analysis.poolquality` — analytic pool composition under
  k corrupted resolvers with and without truncation.
"""

from repro.analysis.advantage import (
    equivalent_keyspace_bits,
    marginal_bits_per_resolver,
    security_bits,
)
from repro.analysis.model import (
    attack_probability_exact,
    attack_probability_paper,
    required_corrupted_resolvers,
    resolvers_for_target_security,
)
from repro.analysis.montecarlo import (
    MonteCarloResult,
    simulate_attack_probability,
    simulate_pool_fraction,
)
from repro.analysis.poolquality import (
    pool_fraction_with_truncation,
    pool_fraction_without_truncation,
)

__all__ = [
    "equivalent_keyspace_bits",
    "marginal_bits_per_resolver",
    "security_bits",
    "attack_probability_exact",
    "attack_probability_paper",
    "required_corrupted_resolvers",
    "resolvers_for_target_security",
    "MonteCarloResult",
    "simulate_attack_probability",
    "simulate_pool_fraction",
    "pool_fraction_with_truncation",
    "pool_fraction_without_truncation",
]
