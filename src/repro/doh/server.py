"""DoH endpoint (RFC 8484) backed by a recursive resolver.

Accepts ``GET /dns-query?dns=<base64url>`` and ``POST /dns-query`` with
``application/dns-message`` bodies over the simulated TLS channel, runs
the query through the co-located :class:`RecursiveResolver`, and returns
the DNS response with cache-appropriate headers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dns.message import Message
from repro.dns.resolver import RecursiveResolver
from repro.dns.wire import WireFormatError
from repro.doh.encoding import EncodingError, b64url_decode
from repro.doh.http import HttpRequest, HttpResponse
from repro.doh.tls import Certificate, KeyPair, TlsServer
from repro.netsim.address import Endpoint
from repro.netsim.host import Host

DOH_PORT = 443
DOH_PATH = "/dns-query"
DNS_MESSAGE_TYPE = "application/dns-message"
MAX_QUERY_BYTES = 4096


class DoHServer:
    """A DoH front-end on port 443 of a resolver host.

    :param host: machine to run on (shared with the backend resolver).
    :param resolver: backend performing the actual recursion.
    :param certificate: TLS identity (subject must be the provider name).
    :param keypair: static DH keypair matching the certificate.
    """

    def __init__(self, host: Host, resolver: RecursiveResolver,
                 certificate: Certificate, keypair: KeyPair,
                 port: int = DOH_PORT) -> None:
        self._host = host
        self._resolver = resolver
        self._tls = TlsServer(host, port, certificate, keypair,
                              on_data=self._handle_http)
        self._requests_served = 0
        self._requests_rejected = 0
        # Bounded-queue capacity during chaos Overload windows; None
        # (the steady state) keeps the historical inline serve path.
        self.capacity: Optional["ServerCapacity"] = None  # noqa: F821

    @property
    def endpoint(self) -> Endpoint:
        return self._tls.endpoint

    @property
    def tls(self) -> TlsServer:
        return self._tls

    @property
    def resolver(self) -> RecursiveResolver:
        return self._resolver

    @property
    def server_name(self) -> str:
        return self._tls.certificate.subject

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def requests_rejected(self) -> int:
        return self._requests_rejected

    # ------------------------------------------------------------------
    # HTTP handling.
    # ------------------------------------------------------------------

    def _handle_http(self, session_id: int, data: bytes,
                     reply: Callable[[bytes], None]) -> None:
        try:
            request = HttpRequest.decode(data)
        except ValueError:
            self._reject(reply, 400)
            return
        if request.path != DOH_PATH:
            self._reject(reply, 404)
            return
        wire = self._extract_query(request, reply)
        if wire is None:
            return
        try:
            query = Message.decode(wire)
        except WireFormatError:
            self._reject(reply, 400)
            return
        if query.is_response or len(query.questions) != 1:
            self._reject(reply, 400)
            return
        capacity = self.capacity
        if capacity is None:
            self._serve(query, reply)
            return
        # Overflow under the servfail policy answers 503 (the HTTP
        # rendering of SERVFAIL); the drop policy leaves the client to
        # its timeout.
        capacity.admit(lambda: self._serve(query, reply),
                       lambda: self._reject(reply, 503))

    def _serve(self, query: Message,
               reply: Callable[[bytes], None]) -> None:
        self._requests_served += 1
        question = query.question

        def respond(outcome) -> None:
            dns_response = RecursiveResolver.outcome_to_response(query, outcome)
            ttl = min((record.ttl for record in dns_response.answers),
                      default=0)
            reply(HttpResponse(
                status=200,
                headers={"Content-Type": DNS_MESSAGE_TYPE,
                         "Cache-Control": f"max-age={ttl}"},
                body=dns_response.encode(),
            ).encode())

        self._resolver.resolve(question.qname, question.qtype, respond)

    def _extract_query(self, request: HttpRequest,
                       reply: Callable[[bytes], None]) -> Optional[bytes]:
        if request.method == "GET":
            encoded = request.query_params.get("dns")
            if not encoded:
                self._reject(reply, 400)
                return None
            if len(encoded) > MAX_QUERY_BYTES:
                self._reject(reply, 413)
                return None
            try:
                return b64url_decode(encoded)
            except EncodingError:
                self._reject(reply, 400)
                return None
        if request.method == "POST":
            if request.header("content-type") != DNS_MESSAGE_TYPE:
                self._reject(reply, 415)
                return None
            if len(request.body) > MAX_QUERY_BYTES:
                self._reject(reply, 413)
                return None
            return request.body
        self._reject(reply, 405)
        return None

    def _reject(self, reply: Callable[[bytes], None], status: int) -> None:
        self._requests_rejected += 1
        reply(HttpResponse(status=status).encode())
