"""Base64url without padding, as RFC 8484 §4.1 requires for GET."""

from __future__ import annotations

import base64
import binascii


class EncodingError(ValueError):
    """Raised for malformed base64url input."""


def b64url_encode(data: bytes) -> str:
    """Encode bytes as unpadded base64url text."""
    return base64.urlsafe_b64encode(data).decode("ascii").rstrip("=")


def b64url_decode(text: str) -> bytes:
    """Decode unpadded base64url text; raises :class:`EncodingError`."""
    padding = (-len(text)) % 4
    if padding == 3:
        raise EncodingError(f"invalid base64url length {len(text)}")
    try:
        return base64.urlsafe_b64decode(text + "=" * padding)
    except (binascii.Error, ValueError) as exc:
        raise EncodingError(f"invalid base64url payload: {exc}") from exc
