"""Minimal HTTP/1.1 request/response codec for the DoH layer.

Only what RFC 8484 needs: request line with method/target, a small set
of headers, binary bodies with Content-Length. One HTTP message per TLS
record; no chunked encoding, no pipelining subtleties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

_CRLF = b"\r\n"

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    500: "Internal Server Error",
    502: "Bad Gateway",
}


class HttpError(ValueError):
    """Raised when parsing malformed HTTP bytes."""


def _encode_headers(headers: Dict[str, str], body: bytes) -> bytes:
    rendered = dict(headers)
    rendered.setdefault("Content-Length", str(len(body)))
    lines = [f"{key}: {value}".encode("latin-1")
             for key, value in rendered.items()]
    return _CRLF.join(lines)


def _parse_headers(block: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in block.split(_CRLF):
        if not line:
            continue
        key, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(f"malformed header line {line!r}")
        headers[key.decode("latin-1").strip().lower()] = (
            value.decode("latin-1").strip())
    return headers


def _split_message(data: bytes) -> Tuple[bytes, Dict[str, str], bytes]:
    head, sep, rest = data.partition(_CRLF + _CRLF)
    if not sep:
        raise HttpError("missing header terminator")
    first_line, _, header_block = head.partition(_CRLF)
    headers = _parse_headers(header_block)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > len(rest):
        raise HttpError("body shorter than Content-Length")
    return first_line, headers, rest[:length]


@dataclass
class HttpRequest:
    """An HTTP request."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """Target without the query string."""
        return self.target.partition("?")[0]

    @property
    def query_params(self) -> Dict[str, str]:
        """Parsed query-string parameters (no percent-decoding needed
        for base64url values)."""
        _, sep, query = self.target.partition("?")
        if not sep:
            return {}
        params = {}
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = value
        return params

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return {k.lower(): v for k, v in self.headers.items()}.get(
            name.lower(), default)

    def encode(self) -> bytes:
        request_line = f"{self.method} {self.target} HTTP/1.1".encode("latin-1")
        return (request_line + _CRLF
                + _encode_headers(self.headers, self.body)
                + _CRLF + _CRLF + self.body)

    @classmethod
    def decode(cls, data: bytes) -> "HttpRequest":
        first_line, headers, body = _split_message(data)
        parts = first_line.decode("latin-1").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(f"malformed request line {first_line!r}")
        method, target, _version = parts
        return cls(method=method.upper(), target=target,
                   headers=headers, body=body)


@dataclass
class HttpResponse:
    """An HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return {k.lower(): v for k, v in self.headers.items()}.get(
            name.lower(), default)

    def encode(self) -> bytes:
        reason = STATUS_REASONS.get(self.status, "Unknown")
        status_line = f"HTTP/1.1 {self.status} {reason}".encode("latin-1")
        return (status_line + _CRLF
                + _encode_headers(self.headers, self.body)
                + _CRLF + _CRLF + self.body)

    @classmethod
    def decode(cls, data: bytes) -> "HttpResponse":
        first_line, headers, body = _split_message(data)
        parts = first_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpError(f"malformed status line {first_line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpError(f"bad status code {parts[1]!r}") from None
        return cls(status=status, headers=headers, body=body)
