"""DoH client: one secure query to one provider.

Each query opens a fresh TLS connection (handshake is one round trip in
the simulation), sends the RFC 8484 request, and reports a structured
:class:`DoHQueryOutcome`. Validation mirrors a careful client: the
response must parse, be a response, and echo the question — plus all the
TLS-layer guarantees (certificate verification, record MACs) enforced by
:mod:`repro.doh.tls`.

Timeout/retry supervision rides on
:meth:`repro.netsim.transport.Transport.supervise` — the query owns its
TLS channel, the transport owns the attempt schedule.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.doh.encoding import b64url_encode
from repro.doh.http import HttpRequest, HttpResponse
from repro.doh.server import DNS_MESSAGE_TYPE, DOH_PATH
from repro.doh.tls import TlsClientConnection, TrustStore
from repro.netsim.address import Endpoint
from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    AttemptInfo,
    ExchangeReport,
    RetryPolicy,
    Transport,
)
from repro.telemetry.registry import current_registry
from repro.telemetry.trace import current_tracer


class DoHStatus(enum.Enum):
    """Terminal states of a DoH query."""

    OK = "ok"
    TLS_FAILURE = "tls-failure"
    HTTP_ERROR = "http-error"
    BAD_RESPONSE = "bad-response"
    TIMEOUT = "timeout"


@dataclass
class DoHQueryOutcome:
    """Result of one DoH query."""

    status: DoHStatus
    message: Optional[Message] = None
    http_status: Optional[int] = None
    failure_reason: Optional[str] = None
    latency: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status is DoHStatus.OK


DoHCallback = Callable[[DoHQueryOutcome], None]


@dataclass
class DoHClientStats:
    queries: int = 0
    successes: int = 0
    tls_failures: int = 0
    timeouts: int = 0
    bad_responses: int = 0


class DoHClient:
    """Client for RFC 8484 queries from a simulated host.

    :param host: the client machine.
    :param simulator: virtual-time engine (timeouts, latency metrics).
    :param trust_store: CAs trusted for provider certificates.
    :param rng: randomness for TXIDs and ephemeral DH keys.
    :param method: "GET" (base64url) or "POST" (binary body).
    :param timeout: per-attempt timeout in seconds.
    :param retries: additional attempts after a timeout, each over a
        fresh connection. Real DoH rides on TCP/QUIC whose transport
        retransmits lost segments; our datagram-framed channel models
        that recovery at the query level instead.
    """

    def __init__(self, host: Host, simulator: Simulator,
                 trust_store: TrustStore, rng: Optional[random.Random] = None,
                 method: str = "GET", timeout: float = 4.0,
                 retries: int = 2) -> None:
        if method not in ("GET", "POST"):
            raise ValueError(f"method must be GET or POST, got {method!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._host = host
        self._simulator = simulator
        self._trust_store = trust_store
        self._rng = rng or random.Random(0)
        self._method = method
        self._policy = RetryPolicy(timeout=timeout, retries=retries)
        self._transport = Transport(host, simulator, rng=self._rng)
        self._stats = DoHClientStats()
        self._telemetry = current_registry()
        self._tracer = current_tracer()

    @property
    def stats(self) -> DoHClientStats:
        return self._stats

    def query(self, server: Endpoint, server_name: str,
              qname: "Name | str", qtype: RRType,
              callback: DoHCallback) -> None:
        """Issue one DoH query; ``callback`` fires exactly once."""
        txid = self._transport.draw_txid()
        message = make_query(txid, Name(qname), qtype)
        _DoHQuery(self, server, server_name, message, callback).start()


class _DoHQuery:
    """One in-flight DoH query, one fresh TLS connection per attempt."""

    def __init__(self, client: DoHClient, server: Endpoint, server_name: str,
                 query: Message, callback: DoHCallback) -> None:
        self._client = client
        self._server = server
        self._server_name = server_name
        self._query = query
        self._callback = callback
        self._connection: TlsClientConnection = None  # set per attempt
        self._exchange = None  # set in start()

    def start(self) -> None:
        self._client._stats.queries += 1
        self._exchange = self._client._transport.supervise(
            begin_attempt=self._open_connection,
            on_complete=self._on_exchange_complete,
            policy=self._client._policy, label="doh-query")

    @property
    def _finished(self) -> bool:
        return self._exchange is not None and self._exchange.finished

    def _open_connection(self, attempt: AttemptInfo) -> None:
        """Open (or reopen, on retry) a fresh TLS connection."""
        if self._connection is not None:
            self._connection.close()
        self._connection = TlsClientConnection(
            self._client._host, self._server, self._server_name,
            self._client._trust_store, self._client._rng)
        self._connection.on_established(self._send_request)
        self._connection.on_data(self._on_response_bytes)
        self._connection.on_failure(self._on_tls_failure)
        self._connection.connect()

    def _send_request(self) -> None:
        tracer = self._client._tracer
        if tracer is not None:
            # The TLS handshake completion arrives through a simulator
            # callback hop; re-activate the attempt span so the encode
            # event (and the request's flight) parent under it.
            with tracer.scope(self._exchange.attempt_span):
                tracer.event(
                    "doh.encode",
                    attrs={"qname": str(self._query.question.qname),
                           "server": self._server_name})
                self._send_request_untraced()
            return
        self._send_request_untraced()

    def _send_request_untraced(self) -> None:
        wire = self._query.encode()
        if self._client._method == "GET":
            request = HttpRequest(
                method="GET",
                target=f"{DOH_PATH}?dns={b64url_encode(wire)}",
                headers={"Accept": DNS_MESSAGE_TYPE},
            )
        else:
            request = HttpRequest(
                method="POST",
                target=DOH_PATH,
                headers={"Accept": DNS_MESSAGE_TYPE,
                         "Content-Type": DNS_MESSAGE_TYPE},
                body=wire,
            )
        self._connection.send(request.encode())

    def _on_response_bytes(self, data: bytes) -> None:
        if self._finished:
            return
        tracer = self._client._tracer
        if tracer is not None:
            # Response bytes also arrive through a callback hop; the
            # decode events below must parent under the live attempt.
            with tracer.scope(self._exchange.attempt_span):
                self._decode_response(data)
            return
        self._decode_response(data)

    def _decode_response(self, data: bytes) -> None:
        tracer = self._client._tracer
        try:
            response = HttpResponse.decode(data)
        except ValueError:
            self._client._stats.bad_responses += 1
            self._finish(DoHQueryOutcome(DoHStatus.BAD_RESPONSE,
                                         failure_reason="unparseable HTTP"))
            return
        if not response.ok:
            self._finish(DoHQueryOutcome(DoHStatus.HTTP_ERROR,
                                         http_status=response.status))
            return
        if response.header("content-type") != DNS_MESSAGE_TYPE:
            self._client._stats.bad_responses += 1
            self._finish(DoHQueryOutcome(DoHStatus.BAD_RESPONSE,
                                         http_status=response.status,
                                         failure_reason="wrong content type"))
            return
        try:
            message = Message.decode(response.body)
        except WireFormatError:
            self._client._stats.bad_responses += 1
            self._finish(DoHQueryOutcome(DoHStatus.BAD_RESPONSE,
                                         http_status=response.status,
                                         failure_reason="unparseable DNS"))
            return
        question_ok = (
            message.is_response
            and len(message.questions) == 1
            and message.questions[0].qname == self._query.question.qname
            and message.questions[0].qtype == self._query.question.qtype
        )
        if not question_ok:
            self._client._stats.bad_responses += 1
            if tracer is not None:
                tracer.event("doh.decode",
                             attrs={"accepted": False,
                                    "reason": "question mismatch"})
            self._finish(DoHQueryOutcome(DoHStatus.BAD_RESPONSE,
                                         http_status=response.status,
                                         failure_reason="question mismatch"))
            return
        self._client._stats.successes += 1
        if tracer is not None:
            answers = [str(record.rdata.address)  # type: ignore[attr-defined]
                       for record in message.answers
                       if record.rrtype in (RRType.A, RRType.AAAA)]
            tracer.event("doh.decode",
                         attrs={"accepted": True,
                                "qname": str(self._query.question.qname),
                                "answers": answers})
        self._finish(DoHQueryOutcome(DoHStatus.OK, message=message,
                                     http_status=response.status))

    def _on_tls_failure(self, reason: str) -> None:
        if self._finished:
            return
        self._client._stats.tls_failures += 1
        self._finish(DoHQueryOutcome(DoHStatus.TLS_FAILURE,
                                     failure_reason=reason))

    def _finish(self, outcome: DoHQueryOutcome) -> None:
        """Hand the terminal outcome to the transport supervisor (which
        suppresses anything arriving after the first decision)."""
        self._exchange.resolve(outcome)

    def _on_exchange_complete(self, report: ExchangeReport) -> None:
        outcome = report.value
        if report.timed_out:
            self._client._stats.timeouts += 1
            outcome = DoHQueryOutcome(DoHStatus.TIMEOUT)
        outcome.latency = report.elapsed
        telemetry = self._client._telemetry
        if telemetry is not None:
            telemetry.counter("doh.queries").inc()
            telemetry.counter("doh.outcomes",
                              status=outcome.status.value).inc()
            if outcome.ok:
                telemetry.histogram("doh.latency").observe(outcome.latency)
        self._connection.close()
        self._callback(outcome)
