"""DNS-over-HTTPS substrate (RFC 8484) over a simulated TLS layer.

The paper's security argument rests on one property of DoH: the channel
between client and resolver is *authenticated and confidential*, so an
off-path attacker cannot inject answers and an on-path attacker can at
worst drop or delay traffic. :mod:`repro.doh.tls` provides exactly that
property with honest mechanics — a real (mod-p) Diffie-Hellman key
exchange authenticated by a certificate binding the server name to its
static DH key, with per-record MACs — rather than a flag an attacker
implementation could "forget" to honour.

Modules:

* :mod:`repro.doh.tls` — certificates, trust stores, and the secure
  channel (client + server halves) over simulated datagrams;
* :mod:`repro.doh.http` — a minimal HTTP/1.1 request/response codec;
* :mod:`repro.doh.encoding` — base64url helpers for the DoH GET form;
* :mod:`repro.doh.server` — a DoH endpoint backed by a recursive
  resolver on the same host;
* :mod:`repro.doh.client` — a DoH client issuing GET/POST queries;
* :mod:`repro.doh.providers` — provider deployment profiles modelled on
  the public resolvers the paper names (Google / Cloudflare / Quad9).
"""

from repro.doh.client import DoHClient, DoHQueryOutcome
from repro.doh.encoding import b64url_decode, b64url_encode
from repro.doh.http import HttpRequest, HttpResponse
from repro.doh.providers import DoHProviderProfile, ProviderDeployment, deploy_provider
from repro.doh.server import DoHServer
from repro.doh.tls import (
    Certificate,
    CertificateAuthority,
    KeyPair,
    TlsClientConnection,
    TlsError,
    TlsServer,
    TrustStore,
)

__all__ = [
    "DoHClient",
    "DoHQueryOutcome",
    "b64url_decode",
    "b64url_encode",
    "HttpRequest",
    "HttpResponse",
    "DoHProviderProfile",
    "ProviderDeployment",
    "deploy_provider",
    "DoHServer",
    "Certificate",
    "CertificateAuthority",
    "KeyPair",
    "TlsClientConnection",
    "TlsError",
    "TlsServer",
    "TrustStore",
]
