"""DoH provider deployments.

A *provider* is one DoH service a client may trust: a host somewhere in
the topology running a recursive resolver plus a DoH front-end, with a
certificate issued by a CA. Profiles for the three providers named in
the paper's Figure 1 (dns.google, cloudflare-dns.com, dns.quad9.net)
are predefined; :func:`synthetic_profiles` generates arbitrarily many
more for large-N experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dns.name import Name
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.doh.server import DoHServer
from repro.doh.tls import Certificate, CertificateAuthority, KeyPair
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.util.rng import RngRegistry


@dataclass(frozen=True)
class DoHProviderProfile:
    """Static description of a provider before deployment."""

    name: str          # TLS server name, e.g. "dns.google"
    region: str        # topology node to attach to
    address: str       # service IP in the simulation

    def __str__(self) -> str:
        return f"{self.name}@{self.region}"


# The three providers shown in the paper's Figure 1.
GOOGLE = DoHProviderProfile("dns.google", "us-west", "10.53.0.1")
CLOUDFLARE = DoHProviderProfile("cloudflare-dns.com", "us-east", "10.53.0.2")
QUAD9 = DoHProviderProfile("dns.quad9.net", "eu-west", "10.53.0.3")
FIGURE1_PROVIDERS = [GOOGLE, CLOUDFLARE, QUAD9]


def synthetic_profiles(count: int, regions: List[str],
                       subnet_prefix: str = "10.54") -> List[DoHProviderProfile]:
    """Generate ``count`` synthetic provider profiles round-robin over
    ``regions`` (used by the large-N sweeps in E2-E4)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if not regions:
        raise ValueError("need at least one region")
    profiles = []
    for index in range(count):
        region = regions[index % len(regions)]
        profiles.append(DoHProviderProfile(
            name=f"doh{index}.resolvers.example",
            region=region,
            address=f"{subnet_prefix}.{index // 250}.{index % 250 + 1}",
        ))
    return profiles


@dataclass
class ProviderDeployment:
    """A live provider: host + resolver, and — unless deployed in
    plain-DNS serving mode — a DoH front-end with a TLS identity."""

    profile: DoHProviderProfile
    host: Host
    resolver: RecursiveResolver
    doh_server: Optional[DoHServer] = None
    certificate: Optional[Certificate] = None
    keypair: Optional[KeyPair] = None

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def endpoint(self) -> Endpoint:
        if self.doh_server is None:
            raise ValueError(
                f"provider {self.name!r} serves plain DNS only "
                f"(no DoH endpoint)")
        return self.doh_server.endpoint

    @property
    def address(self) -> IPAddress:
        return self.host.primary_address


def deploy_provider(internet: Internet, profile: DoHProviderProfile,
                    authority: CertificateAuthority,
                    root_hints: List[Tuple[Name, IPAddress]],
                    rng_registry: RngRegistry,
                    resolver_config: Optional[ResolverConfig] = None,
                    instrument: bool = False) -> ProviderDeployment:
    """Stand up one provider in the simulated Internet.

    Creates the host, the backend recursive resolver (plain DNS on :53,
    used for its recursion engine), the TLS identity, and the DoH
    front-end on :443.  ``instrument=True`` turns on the resolver's
    cache/referral telemetry (iterative-hierarchy worlds).
    """
    host = internet.add_host(Host(
        profile.name, profile.region, [IPAddress(profile.address)],
        rng=rng_registry.stream("provider-ports", profile.name)))
    resolver = RecursiveResolver(
        host, internet.simulator, root_hints,
        config=resolver_config or ResolverConfig(),
        rng=rng_registry.stream("provider-txid", profile.name),
        instrument=instrument)
    keypair = KeyPair.generate(rng_registry.stream("provider-key", profile.name))
    certificate = authority.issue(profile.name, keypair.public)
    doh_server = DoHServer(host, resolver, certificate, keypair)
    return ProviderDeployment(profile=profile, host=host, resolver=resolver,
                              doh_server=doh_server, certificate=certificate,
                              keypair=keypair)
