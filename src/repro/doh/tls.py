"""A structurally honest TLS substitute for the simulation.

The paper relies on one property of the DoH channel: responses cannot be
forged or read by anyone who is not the authenticated server. We provide
that property with *working* mechanics instead of an honour-system flag:

* **Key exchange** — real finite-field Diffie-Hellman over the RFC 3526
  group-14 prime. The server's *static* DH public key is bound to its
  name by a certificate; the client uses an ephemeral key. Only the
  holder of the certified private key can compute the session secret,
  which authenticates the server (TLS-style static-DH authentication).
* **Record protection** — every record is encrypted with a keystream
  derived from the session secret and carries an HMAC-SHA256 tag; the
  receiver drops records whose tag fails, so an on-path attacker can
  drop or delay but not read or rewrite.
* **Certificates** — a :class:`CertificateAuthority` signs (HMAC over
  its private secret) the binding of subject name to static public key.
  Verification recomputes nothing secret: the CA exposes a *verifier*
  (its issued-fingerprint set) through the :class:`TrustStore`. CA
  compromise is modelled explicitly by handing the attacker the CA
  object (see :mod:`repro.attacks.mitm`).

What is deliberately *not* modelled: cipher agility, session resumption,
real X.509 encoding, and TCP segmentation — none of which the paper's
argument touches. The handshake is one round trip over the datagram
layer.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import random
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.netsim.address import Endpoint
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.socket import UdpSocket

# RFC 3526 group 14: 2048-bit MODP prime, generator 2.
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF", 16)
DH_GENERATOR = 2
_KEY_BYTES = 256  # 2048-bit group elements

#: Window width of the fixed-base comb table below.
_COMB_WINDOW = 6

_generator_comb: Optional[List[List[int]]] = None


def _generator_pow(exponent: int) -> int:
    """``DH_GENERATOR ** exponent mod DH_PRIME``, comb-accelerated.

    Every handshake mints two ephemerals, and ``pow()`` re-walks the
    full 2048-bit exponent each time — at campaign scale the modexp is
    the single hottest call in the whole simulation. The generator is
    fixed, so a one-off comb table of ``g**(v * 2**(wi))`` reduces each
    ephemeral to ~340 modular multiplications (about 5x faster here)
    while producing the same value ``pow()`` would. Arbitrary-base
    exponentiations (peer shared secrets) still use ``pow()``.
    """
    global _generator_comb
    if _generator_comb is None:
        width = 1 << _COMB_WINDOW
        windows = -(-DH_PRIME.bit_length() // _COMB_WINDOW)
        table = []
        base = DH_GENERATOR
        for _ in range(windows):
            row = [1] * width
            for value in range(1, width):
                row[value] = row[value - 1] * base % DH_PRIME
            table.append(row)
            base = row[1] * row[width - 1] % DH_PRIME  # base ** width
        _generator_comb = table
    accumulator = 1
    index = 0
    mask = (1 << _COMB_WINDOW) - 1
    while exponent:
        window = exponent & mask
        if window:
            accumulator = (accumulator
                           * _generator_comb[index][window] % DH_PRIME)
        exponent >>= _COMB_WINDOW
        index += 1
    return accumulator

_RECORD_CLIENT_HELLO = 1
_RECORD_SERVER_HELLO = 2
_RECORD_DATA = 3
_RECORD_ALERT = 4

_session_counter = itertools.count(1)


class TlsError(RuntimeError):
    """Raised for handshake/record failures surfaced to the caller."""


# ----------------------------------------------------------------------
# Keys and certificates.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KeyPair:
    """A static or ephemeral DH keypair."""

    secret: int
    public: int

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        secret = rng.randrange(2, DH_PRIME - 2)
        return cls(secret=secret, public=_generator_pow(secret))

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute the DH shared secret with a peer's public value."""
        if not 2 <= peer_public <= DH_PRIME - 2:
            raise TlsError("peer public value out of range")
        shared = pow(peer_public, self.secret, DH_PRIME)
        return hashlib.sha256(
            shared.to_bytes(_KEY_BYTES, "big")).digest()


@dataclass(frozen=True)
class Certificate:
    """Binds a server name to a static DH public key, signed by a CA."""

    subject: str
    issuer: str
    public_key: int
    serial: int
    signature: bytes

    @property
    def fingerprint(self) -> bytes:
        return hashlib.sha256(self._signed_blob()).digest()

    def _signed_blob(self) -> bytes:
        return b"|".join([
            self.subject.encode("utf-8"),
            self.issuer.encode("utf-8"),
            self.public_key.to_bytes(_KEY_BYTES, "big"),
            str(self.serial).encode("ascii"),
        ])

    # ------------------------------------------------------------------
    # Wire form (length-prefixed fields).
    # ------------------------------------------------------------------

    def encode(self) -> bytes:
        subject = self.subject.encode("utf-8")
        issuer = self.issuer.encode("utf-8")
        return b"".join([
            struct.pack("!H", len(subject)), subject,
            struct.pack("!H", len(issuer)), issuer,
            self.public_key.to_bytes(_KEY_BYTES, "big"),
            struct.pack("!I", self.serial),
            struct.pack("!H", len(self.signature)), self.signature,
        ])

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Certificate", int]:
        """Decode from ``data``; returns (certificate, bytes consumed)."""
        offset = 0

        def take(count: int) -> bytes:
            nonlocal offset
            if offset + count > len(data):
                raise TlsError("truncated certificate")
            chunk = data[offset:offset + count]
            offset += count
            return chunk

        subject_len = struct.unpack("!H", take(2))[0]
        subject = take(subject_len).decode("utf-8")
        issuer_len = struct.unpack("!H", take(2))[0]
        issuer = take(issuer_len).decode("utf-8")
        public_key = int.from_bytes(take(_KEY_BYTES), "big")
        serial = struct.unpack("!I", take(4))[0]
        sig_len = struct.unpack("!H", take(2))[0]
        signature = take(sig_len)
        return cls(subject, issuer, public_key, serial, signature), offset


class CertificateAuthority:
    """Issues certificates and remembers what it issued.

    The "signature" is an HMAC over the CA's private secret; clients do
    not verify it cryptographically (they would need the secret) —
    instead the :class:`TrustStore` asks the CA object whether the
    certificate's fingerprint is in its issued set. Forging therefore
    requires holding the CA object itself, which is exactly the
    "attacker compromised a trusted CA" capability and is granted to
    attack code explicitly, never implicitly.
    """

    def __init__(self, name: str, rng: random.Random) -> None:
        self._name = name
        self._secret = rng.randbytes(32)
        self._serial = itertools.count(1)
        self._issued: Set[bytes] = set()

    @property
    def name(self) -> str:
        return self._name

    def issue(self, subject: str, public_key: int) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        serial = next(self._serial)
        unsigned = Certificate(subject=subject, issuer=self._name,
                               public_key=public_key, serial=serial,
                               signature=b"")
        signature = hmac.new(self._secret, unsigned._signed_blob(),
                             hashlib.sha256).digest()
        cert = Certificate(subject=subject, issuer=self._name,
                           public_key=public_key, serial=serial,
                           signature=signature)
        self._issued.add(cert.fingerprint)
        return cert

    def has_issued(self, certificate: Certificate) -> bool:
        """Whether this CA issued the certificate (fingerprint match)."""
        expected = hmac.new(self._secret, certificate._signed_blob(),
                            hashlib.sha256).digest()
        return (certificate.fingerprint in self._issued
                and hmac.compare_digest(expected, certificate.signature))

    def revoke(self, certificate: Certificate) -> None:
        """Drop a certificate from the issued set (revocation)."""
        self._issued.discard(certificate.fingerprint)


class TrustStore:
    """The set of CAs a client trusts."""

    def __init__(self, authorities: List[CertificateAuthority]) -> None:
        self._authorities = {ca.name: ca for ca in authorities}

    def add(self, authority: CertificateAuthority) -> None:
        self._authorities[authority.name] = authority

    def verify(self, certificate: Certificate, expected_subject: str) -> bool:
        """Validate issuer trust and subject-name match."""
        if certificate.subject != expected_subject:
            return False
        authority = self._authorities.get(certificate.issuer)
        if authority is None:
            return False
        return authority.has_issued(certificate)


# ----------------------------------------------------------------------
# Record protection.
# ----------------------------------------------------------------------


def _keystream(key: bytes, direction: bytes, seq: int, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(block) for block in blocks) < length:
        blocks.append(hashlib.sha256(
            key + direction + struct.pack("!QI", seq, counter)).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _seal(key: bytes, direction: bytes, session_id: int, seq: int,
          plaintext: bytes) -> bytes:
    stream = _keystream(key, direction, seq, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(key, struct.pack("!BQQ", _RECORD_DATA, session_id, seq)
                   + direction + ciphertext, hashlib.sha256).digest()
    return ciphertext + tag


def _open(key: bytes, direction: bytes, session_id: int, seq: int,
          sealed: bytes) -> Optional[bytes]:
    if len(sealed) < 32:
        return None
    ciphertext, tag = sealed[:-32], sealed[-32:]
    expected = hmac.new(key, struct.pack("!BQQ", _RECORD_DATA, session_id, seq)
                        + direction + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        return None
    stream = _keystream(key, direction, seq, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


_DIR_CLIENT_TO_SERVER = b"c2s"
_DIR_SERVER_TO_CLIENT = b"s2c"


# ----------------------------------------------------------------------
# Server half.
# ----------------------------------------------------------------------


@dataclass
class _ServerSession:
    key: bytes
    peer: Endpoint
    recv_seq: int = 0
    send_seq: int = 0


# Handler receives (session_id, decrypted request bytes, reply callable).
ServerDataHandler = Callable[[int, bytes, Callable[[bytes], None]], None]


class TlsServer:
    """Server half of the secure channel, bound to host:port.

    :param host: simulated machine.
    :param port: UDP port (443 for DoH).
    :param certificate: the identity presented to clients.
    :param keypair: static DH keypair matching the certificate.
    :param on_data: application callback for each decrypted record.
    """

    def __init__(self, host: Host, port: int, certificate: Certificate,
                 keypair: KeyPair, on_data: Optional[ServerDataHandler] = None) -> None:
        if certificate.public_key != keypair.public:
            raise TlsError("certificate does not match keypair")
        self._host = host
        self._certificate = certificate
        self._keypair = keypair
        self._on_data = on_data
        self._sessions: Dict[int, _ServerSession] = {}
        self._socket = host.bind(port, self._handle_datagram)
        self._handshakes_completed = 0
        self._records_rejected = 0

    @property
    def endpoint(self) -> Endpoint:
        return self._socket.endpoint

    @property
    def certificate(self) -> Certificate:
        return self._certificate

    @property
    def handshakes_completed(self) -> int:
        return self._handshakes_completed

    @property
    def records_rejected(self) -> int:
        """Records dropped for MAC failure or unknown session."""
        return self._records_rejected

    def on_data(self, handler: ServerDataHandler) -> None:
        self._on_data = handler

    def _handle_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if len(payload) < 9:
            return
        record_type = payload[0]
        session_id = struct.unpack("!Q", payload[1:9])[0]
        body = payload[9:]
        if record_type == _RECORD_CLIENT_HELLO:
            self._handle_client_hello(datagram, session_id, body)
        elif record_type == _RECORD_DATA:
            self._handle_data(datagram, session_id, body)
        # Alerts and unknown types are dropped silently.

    def _handle_client_hello(self, datagram: Datagram, session_id: int,
                             body: bytes) -> None:
        if len(body) < _KEY_BYTES:
            return
        client_public = int.from_bytes(body[:_KEY_BYTES], "big")
        try:
            key = self._keypair.shared_secret(client_public)
        except TlsError:
            return
        self._sessions[session_id] = _ServerSession(key=key, peer=datagram.src)
        self._handshakes_completed += 1
        # ServerHello: certificate + key confirmation MAC. The MAC
        # proves possession of the certified private key (only the real
        # server can compute `key`).
        confirmation = hmac.new(key, b"server-finished"
                                + struct.pack("!Q", session_id),
                                hashlib.sha256).digest()
        hello = (struct.pack("!BQ", _RECORD_SERVER_HELLO, session_id)
                 + self._certificate.encode() + confirmation)
        self._socket.reply(datagram, hello)

    def _handle_data(self, datagram: Datagram, session_id: int,
                     body: bytes) -> None:
        session = self._sessions.get(session_id)
        if session is None:
            self._records_rejected += 1
            return
        plaintext = _open(session.key, _DIR_CLIENT_TO_SERVER, session_id,
                          session.recv_seq, body)
        if plaintext is None:
            self._records_rejected += 1
            return
        session.recv_seq += 1
        if self._on_data is None:
            return

        def reply(data: bytes) -> None:
            sealed = _seal(session.key, _DIR_SERVER_TO_CLIENT, session_id,
                           session.send_seq, data)
            session.send_seq += 1
            record = struct.pack("!BQ", _RECORD_DATA, session_id) + sealed
            self._socket.sendto(session.peer, record)

        self._on_data(session_id, plaintext, reply)


# ----------------------------------------------------------------------
# Client half.
# ----------------------------------------------------------------------


class TlsClientConnection:
    """Client half: connect, verify the server, exchange records.

    Usage::

        conn = TlsClientConnection(host, server_endpoint, "dns.example",
                                   trust_store, rng)
        conn.on_established(lambda: conn.send(b"request"))
        conn.on_data(handle_response_bytes)
        conn.on_failure(handle_tls_failure)
        conn.connect()
    """

    def __init__(self, host: Host, server: Endpoint, server_name: str,
                 trust_store: TrustStore, rng: random.Random) -> None:
        self._host = host
        self._server = server
        self._server_name = server_name
        self._trust_store = trust_store
        self._keypair = KeyPair.generate(rng)
        self._session_id = next(_session_counter)
        self._key: Optional[bytes] = None
        self._send_seq = 0
        self._recv_seq = 0
        self._established = False
        self._failed: Optional[str] = None
        self._socket: Optional[UdpSocket] = None
        self._on_established: Optional[Callable[[], None]] = None
        self._on_data: Optional[Callable[[bytes], None]] = None
        self._on_failure: Optional[Callable[[str], None]] = None
        self._records_rejected = 0

    # ------------------------------------------------------------------
    # Callbacks.
    # ------------------------------------------------------------------

    def on_established(self, callback: Callable[[], None]) -> None:
        self._on_established = callback

    def on_data(self, callback: Callable[[bytes], None]) -> None:
        self._on_data = callback

    def on_failure(self, callback: Callable[[str], None]) -> None:
        self._on_failure = callback

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------

    @property
    def established(self) -> bool:
        return self._established

    @property
    def failed(self) -> Optional[str]:
        return self._failed

    @property
    def session_id(self) -> int:
        return self._session_id

    @property
    def records_rejected(self) -> int:
        return self._records_rejected

    @property
    def server(self) -> Endpoint:
        return self._server

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Send the ClientHello; completion arrives via callbacks."""
        self._socket = self._host.ephemeral_socket(self._handle_datagram)
        hello = (struct.pack("!BQ", _RECORD_CLIENT_HELLO, self._session_id)
                 + self._keypair.public.to_bytes(_KEY_BYTES, "big"))
        self._socket.sendto(self._server, hello)

    def send(self, data: bytes) -> None:
        """Encrypt and send one application record."""
        if not self._established or self._key is None:
            raise TlsError("connection not established")
        sealed = _seal(self._key, _DIR_CLIENT_TO_SERVER, self._session_id,
                       self._send_seq, data)
        self._send_seq += 1
        record = struct.pack("!BQ", _RECORD_DATA, self._session_id) + sealed
        assert self._socket is not None
        self._socket.sendto(self._server, record)

    def close(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    # ------------------------------------------------------------------
    # Inbound records.
    # ------------------------------------------------------------------

    def _handle_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if len(payload) < 9:
            return
        record_type = payload[0]
        session_id = struct.unpack("!Q", payload[1:9])[0]
        if session_id != self._session_id:
            self._records_rejected += 1
            return
        body = payload[9:]
        if record_type == _RECORD_SERVER_HELLO and not self._established:
            self._handle_server_hello(body)
        elif record_type == _RECORD_DATA and self._established:
            self._handle_data(body)

    def _handle_server_hello(self, body: bytes) -> None:
        try:
            certificate, consumed = Certificate.decode(body)
        except TlsError:
            self._fail("malformed certificate")
            return
        confirmation = body[consumed:]
        if not self._trust_store.verify(certificate, self._server_name):
            self._fail(f"certificate verification failed for "
                       f"{certificate.subject!r} (expected "
                       f"{self._server_name!r})")
            return
        try:
            key = self._keypair.shared_secret(certificate.public_key)
        except TlsError:
            self._fail("bad server public key")
            return
        expected = hmac.new(key, b"server-finished"
                            + struct.pack("!Q", self._session_id),
                            hashlib.sha256).digest()
        if not hmac.compare_digest(confirmation, expected):
            # Whoever answered does not hold the certified private key
            # (e.g. an on-path attacker replaying a genuine certificate).
            self._fail("server failed key confirmation")
            return
        self._key = key
        self._established = True
        if self._on_established is not None:
            self._on_established()

    def _handle_data(self, body: bytes) -> None:
        assert self._key is not None
        plaintext = _open(self._key, _DIR_SERVER_TO_CLIENT, self._session_id,
                          self._recv_seq, body)
        if plaintext is None:
            self._records_rejected += 1
            return
        self._recv_seq += 1
        if self._on_data is not None:
            self._on_data(plaintext)

    def _fail(self, reason: str) -> None:
        if self._failed is not None:
            return
        self._failed = reason
        self.close()
        if self._on_failure is not None:
            self._on_failure(reason)
