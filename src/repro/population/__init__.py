"""Population-scale client fleets over the simulated internet.

Where :mod:`repro.ntp.pool` deploys the *server* side of pool.ntp.org,
this package deploys the *client* side: thousands of resolve→sync
clients with arrival processes and churn, measured through the
streaming telemetry registry. See :mod:`repro.population.fleet`.
"""

from repro.population.arrivals import (
    ArrivalProcess,
    PeriodicArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.population.fleet import (
    BatchDispatcher,
    ClientFleet,
    FleetConfig,
    PopulationOutcomes,
)

__all__ = [
    "ArrivalProcess",
    "BatchDispatcher",
    "ClientFleet",
    "FleetConfig",
    "PeriodicArrivals",
    "PoissonArrivals",
    "PopulationOutcomes",
    "make_arrivals",
]
