"""Population-scale client fleets over the simulated internet.

Where :mod:`repro.ntp.pool` deploys the *server* side of pool.ntp.org,
this package deploys the *client* side: thousands of resolve→sync
clients with arrival processes and churn, measured through the
streaming telemetry registry. See :mod:`repro.population.fleet` for
the single-world fleet (and the pure round loop it is a shell around)
and :mod:`repro.population.sharding` for the K-world megafleet that
scales the same population past 100k clients.
"""

from repro.population.arrivals import (
    ArrivalProcess,
    PeriodicArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.population.fleet import (
    ANSWERS_COMPLETE,
    ROUND_BEGIN,
    SYNC_COMPLETE,
    BatchDispatcher,
    ClientFleet,
    ClientRoundState,
    FleetConfig,
    PopulationOutcomes,
    RoundRng,
    RoundStep,
    advance_round,
    population_outcomes,
)
from repro.population.sharding import (
    ShardedFleet,
    ShardPlan,
    plan_shards,
    population_invariant,
)

__all__ = [
    "ANSWERS_COMPLETE",
    "ROUND_BEGIN",
    "SYNC_COMPLETE",
    "ArrivalProcess",
    "BatchDispatcher",
    "ClientFleet",
    "ClientRoundState",
    "FleetConfig",
    "PeriodicArrivals",
    "PoissonArrivals",
    "PopulationOutcomes",
    "RoundRng",
    "RoundStep",
    "ShardPlan",
    "ShardedFleet",
    "advance_round",
    "make_arrivals",
    "plan_shards",
    "population_invariant",
    "population_outcomes",
]
