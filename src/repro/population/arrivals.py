"""Arrival processes driving when population clients act.

Each client owns one :class:`ArrivalProcess` fed by a dedicated RNG
stream, so the timing of one client's rounds never perturbs another's
randomness — the property behind the fleet's churn-reproducibility
guarantee.

Two processes cover the paper's population models:

* :class:`PeriodicArrivals` — fixed cadence with a deterministic phase
  (clients spread uniformly over the first period, like a fleet of
  cron-driven SNTP clients);
* :class:`PoissonArrivals` — exponential interarrivals (memoryless
  human-driven or event-driven query load).
"""

from __future__ import annotations

import random
from typing import Optional


class ArrivalProcess:
    """Yields successive gaps (seconds) between a client's rounds."""

    def first_delay(self) -> float:
        """Delay from fleet start to the client's first round."""
        raise NotImplementedError

    def next_delay(self) -> float:
        """Delay from one round to the next."""
        raise NotImplementedError


class PeriodicArrivals(ArrivalProcess):
    """Fixed-period rounds with a per-client phase.

    :param period: seconds between rounds.
    :param phase: offset of the first round inside ``[0, period)``;
        spreading phases over the fleet avoids thundering herds.
    """

    def __init__(self, period: float, phase: float = 0.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if not 0.0 <= phase < period:
            raise ValueError(f"phase must be in [0, {period}), got {phase}")
        self._period = period
        self._phase = phase

    def first_delay(self) -> float:
        return self._phase

    def next_delay(self) -> float:
        return self._period


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrivals with the given mean.

    :param mean_interval: mean seconds between rounds (rate = 1/mean).
    :param rng: the client's dedicated arrival stream.
    """

    def __init__(self, mean_interval: float, rng: random.Random) -> None:
        if mean_interval <= 0:
            raise ValueError(
                f"mean_interval must be > 0, got {mean_interval}")
        self._mean = mean_interval
        self._rng = rng

    def first_delay(self) -> float:
        # The stationary view: the first event is exponentially
        # distributed too (PASTA), which also spreads the fleet out.
        return self._rng.expovariate(1.0 / self._mean)

    def next_delay(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)


def make_arrivals(kind: str, mean_interval: float, index: int, count: int,
                  rng: Optional[random.Random] = None) -> ArrivalProcess:
    """Build client ``index``-of-``count``'s arrival process.

    ``kind`` is ``"periodic"`` (phase ``index/count`` of the period) or
    ``"poisson"`` (needs ``rng``).
    """
    if kind == "periodic":
        return PeriodicArrivals(mean_interval,
                                phase=mean_interval * index / max(count, 1))
    if kind == "poisson":
        if rng is None:
            raise ValueError("poisson arrivals need an rng")
        return PoissonArrivals(mean_interval, rng)
    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"known: ['periodic', 'poisson']")
