"""A population of NTP clients living inside one simulated internet.

The paper's claims are population statements — what fraction of *all*
clients ends up on attacker servers, how availability degrades under the
empty-answer DoS — but the single-client trials re-derive those
aggregates statistically across worlds. :class:`ClientFleet` instead
stands up N client hosts in one world (mirroring the server-side
:func:`repro.ntp.pool.deploy_ntp_fleet`) and measures them through the
telemetry registry, so one simulation yields the population curve
directly.

Each client runs the paper's distributed-resolver lookup as rounds:
query the pool domain through every configured provider, apply
Algorithm 1's truncate-and-combine, pick one pool server, and discipline
its clock with one SNTP exchange. Clients ride the plain-DNS stub
(:class:`repro.dns.client.StubResolver`) rather than per-query TLS —
the provider-corruption threat model lives behind the recursion engine
(see ``RecursiveResolver.serve_engine``), so the DNS-layer outcome is
identical to the DoH path while the hot loop stays cheap enough for
thousands of clients.

Scale machinery:

* **Batched dispatch** — client wake-ups are coalesced into quantized
  virtual-time bins (:class:`BatchDispatcher`); one simulator event
  drains a whole bin, so the event heap carries O(bins), not O(clients),
  round-trigger entries.
* **Dedicated RNG streams** — every client draws arrivals, churn and
  server selection from its own named streams of the scenario's
  :class:`~repro.util.rng.RngRegistry`, so fleet behaviour is
  reproducible from the seed alone and independent of dispatch order.
* **Streaming telemetry** — nothing per-client is accumulated in Python
  lists; every observation folds into the registry's counters,
  histograms and virtual-time series, and population outcomes are read
  back from there.
* **A pure round loop** — every decision a round makes (resolve or
  reuse, combine, pick, victim/shift classification, churn, next
  delay) lives in the module-level :func:`advance_round` function over
  explicit ``(config, state, rng, phase event)`` inputs, returning the
  effects as a :class:`RoundStep`. :class:`ClientFleet` is the thin
  effectful shell (sockets, clocks, telemetry, scheduling); the
  sharded engine (:mod:`repro.population.sharding`) reuses the same
  function, so the round semantics cannot fork between the two.

Fleets can also be a *window* of a larger population: ``first_index``
and ``population`` give each client its **global** identity — RNG
stream names, addresses, node attachment and arrival phase all derive
from the global index over the total population — so K windows
covering ``range(population)`` behave client-for-client exactly like
one fleet of ``population`` clients (the sharded megafleet contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.pool import combine_with_quorum
from repro.dns.client import StubOutcome, StubResolver
from repro.dns.name import Name
from repro.dns.rrtype import RRType
from repro.netsim.address import IPAddress
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.simulator import Simulator
from repro.ntp.client import NtpClient, NtpSample
from repro.ntp.clock import SimClock
from repro.population.arrivals import ArrivalProcess, make_arrivals
from repro.telemetry.registry import MetricsRegistry, use_registry
from repro.telemetry.trace import current_tracer
from repro.util.rng import RngRegistry


def _doh_addresses(outcome) -> Optional[List[IPAddress]]:
    """A DoH query outcome's answer addresses, with the same semantics
    the stub path feeds the combiner: ``None`` for a failed resolver,
    a (possibly empty) address list for an answer."""
    from repro.dns.rcode import RCode
    if not outcome.ok or outcome.message is None:
        return None
    if outcome.message.rcode is not RCode.NOERROR:
        return None
    return [record.rdata.address for record in outcome.message.answers
            if record.rrtype in (RRType.A, RRType.AAAA)]


class BatchDispatcher:
    """Coalesces many wake-ups into one simulator event per time bin.

    ``call_after(delay, fn)`` rounds the target instant *up* to the next
    multiple of ``quantum`` and appends ``fn`` to that bin; the first
    callback into a bin schedules the single simulator event that later
    drains it. Within a bin, callbacks run in registration order —
    deterministic, and cache-friendly because a thousand clients waking
    in the same 50 ms share one heap entry instead of a thousand.
    """

    def __init__(self, simulator: Simulator, quantum: float = 0.05) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self._simulator = simulator
        self._quantum = quantum
        self._bins: Dict[int, List[Callable[[], None]]] = {}
        self._dispatched = 0
        self._batches = 0

    @property
    def dispatched(self) -> int:
        """Callbacks delivered so far."""
        return self._dispatched

    @property
    def batches(self) -> int:
        """Simulator events it took to deliver them."""
        return self._batches

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        target = self._simulator.now + delay
        index = math.ceil(target / self._quantum)
        batch = self._bins.get(index)
        if batch is None:
            self._bins[index] = batch = []
            when = max(index * self._quantum, self._simulator.now)
            self._simulator.schedule_at(when, lambda: self._drain(index),
                                        label="fleet-batch")
        batch.append(fn)

    def _drain(self, index: int) -> None:
        self._batches += 1
        for fn in self._bins.pop(index):
            self._dispatched += 1
            fn()


@dataclass(frozen=True)
class FleetConfig:
    """Shape and behaviour of a client population.

    :param num_clients: fleet size.
    :param rounds: resolve→sync rounds each client performs.
    :param mean_interval: seconds between one client's rounds (the
        period for ``periodic`` arrivals, the mean for ``poisson``).
    :param arrival: ``"periodic"`` or ``"poisson"``.
    :param resolve_every: re-query DNS every k-th round; between
        re-resolutions a client reuses its cached pool (real SNTP
        clients do not hit DNS per packet).
    :param churn_rate: per-round probability that a client leaves after
        the round and rejoins ``rejoin_delay`` seconds later with its
        pool cache dropped (forcing a re-resolve).
    :param min_answers: ``None`` for the paper's strict all-must-answer
        combination; an integer for the E6 quorum extension.
    :param transport: ``"udp"`` — one plain-DNS stub query per provider
        (cheap, spoofable, the default) — or ``"doh"`` — one RFC 8484
        query over a fresh TLS connection per provider per resolve, so
        every client pays the per-query handshake cost the paper's
        distributed lookup implies.  DoH mode needs the fleet to be
        given provider ``endpoints``/``server_names`` and a
        ``trust_store``.
    :param initial_clock_error: clients start with clock errors uniform
        in ±this (seconds).
    :param shift_threshold: |clock error| beyond which a synced client
        counts as successfully time-shifted.
    :param dns_timeout / dns_retries / ntp_timeout: client patience.
    :param time_bin: width (virtual seconds) of the telemetry time bins
        for the population's victim/availability curves.
    :param dispatch_quantum: batching bin for round wake-ups.
    """

    #: Ceiling of the fleet's ``10.120+`` address scheme: 256 hosts per
    #: /24 block times the 10.120-10.255 second-octet range.
    MAX_CLIENTS = 136 * 256 * 200

    num_clients: int = 50
    rounds: int = 3
    mean_interval: float = 16.0
    arrival: str = "periodic"
    resolve_every: int = 1
    churn_rate: float = 0.0
    rejoin_delay: float = 30.0
    min_answers: Optional[int] = None
    transport: str = "udp"
    initial_clock_error: float = 0.050
    shift_threshold: float = 1.0
    dns_timeout: float = 3.0
    dns_retries: int = 1
    ntp_timeout: float = 1.0
    time_bin: float = 10.0
    dispatch_quantum: float = 0.05

    def __post_init__(self) -> None:
        if not 1 <= self.num_clients <= self.MAX_CLIENTS:
            raise ValueError(
                f"num_clients must be in [1, {self.MAX_CLIENTS}] "
                f"(the fleet's 10.120.0.0+ address range)")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.resolve_every < 1:
            raise ValueError("resolve_every must be >= 1")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError("churn_rate must be in [0, 1]")
        if self.min_answers is not None and self.min_answers < 1:
            raise ValueError("min_answers must be >= 1 (or None for the "
                             "strict all-must-answer semantics)")
        if self.transport not in ("udp", "doh"):
            raise ValueError(
                f"transport must be 'udp' or 'doh', got {self.transport!r}")


@dataclass
class PopulationOutcomes:
    """Population-level results, read straight from the registry."""

    clients: int
    rounds: int                    # rounds attempted
    rounds_ok: int                 # rounds that produced a pool
    syncs: int                     # successful NTP exchanges
    victim_rounds: int             # synced against an attacker server
    availability: float            # rounds_ok / rounds
    victim_fraction: float         # victim_rounds / syncs
    shifted_fraction: float        # synced rounds ending |err| > threshold
    mean_abs_clock_error: float
    p90_abs_clock_error: float
    churn_leaves: int
    churn_joins: int
    victim_curve: List[Tuple[float, float]] = field(default_factory=list)
    availability_curve: List[Tuple[float, float]] = field(default_factory=list)


# ----------------------------------------------------------------------
# The round loop, as a pure function.
# ----------------------------------------------------------------------

#: Phase events fed to :func:`advance_round` — one per effect boundary
#: of a client round (the shell performs I/O between them).
ROUND_BEGIN = "round-begin"
ANSWERS_COMPLETE = "answers-complete"
SYNC_COMPLETE = "sync-complete"


@dataclass
class ClientRoundState:
    """Everything the round loop reads or advances for one client —
    and nothing effectful (hosts, sockets, clocks and telemetry stay in
    the shell)."""

    pool: Optional[List[IPAddress]] = None
    rounds_done: int = 0


@dataclass(frozen=True)
class RoundRng:
    """The per-client randomness :func:`advance_round` draws from:
    explicit inputs, so identical streams replay identical rounds."""

    select: Any        # random.Random — pool-server selection
    churn: Any         # random.Random — leave/stay decisions
    arrivals: ArrivalProcess


@dataclass(frozen=True)
class RoundStep:
    """What the shell must do next, as plain data.

    ``action`` is one of:

    * ``"resolve"`` — fan out one query per provider, then feed the
      answers back as an :data:`ANSWERS_COMPLETE` event;
    * ``"sync"`` — the round has a ``pool`` and a ``pick``; run one
      SNTP exchange against the pick and feed the sample back as a
      :data:`SYNC_COMPLETE` event;
    * ``"stop"`` / ``"leave"`` / ``"reschedule"`` — the round
      concluded; the flags say how (``failed`` resolve, ``synced``
      exchange with its ``victim``/``shifted``/``clock_error``
      classification, or a ``timed_out`` exchange) and ``delay`` says
      when the client acts again (rejoin after churn, or the next
      arrival).
    """

    action: str
    pool: Optional[List[IPAddress]] = None
    pick: Optional[IPAddress] = None
    delay: float = 0.0
    failed: bool = False
    synced: bool = False
    timed_out: bool = False
    victim: bool = False
    shifted: bool = False
    clock_error: float = 0.0


def advance_round(config: FleetConfig, state: ClientRoundState,
                  rng: RoundRng, phase: str,
                  answers: Optional[Dict[int, Optional[List[IPAddress]]]] = None,
                  synced: bool = False, attacker: bool = False,
                  clock_error: float = 0.0) -> RoundStep:
    """Advance one client's round by one phase event.

    This is the *entire* round-loop logic — resolve cadence,
    truncate-and-combine, server selection, victim/shift
    classification, churn and next-arrival scheduling — over explicit
    inputs: the fleet ``config``, the client's ``state`` (advanced in
    place), its ``rng`` streams and the phase payload. It touches no
    simulator, no sockets, no telemetry; every effect comes back as a
    :class:`RoundStep` for the shell to perform. Identical inputs
    (including stream states) produce identical steps, which is what
    makes shard execution mode irrelevant to fleet behaviour.

    Phase payloads: :data:`ANSWERS_COMPLETE` takes ``answers`` (per
    provider index, ``None`` for a failed resolver);
    :data:`SYNC_COMPLETE` takes ``synced``, ``attacker`` (was the pick
    attacker-controlled) and ``clock_error`` (|error| after stepping
    the clock, when synced).
    """
    if phase == ROUND_BEGIN:
        needs_resolve = (state.pool is None
                         or state.rounds_done % config.resolve_every == 0)
        if needs_resolve:
            return RoundStep("resolve")
        return RoundStep("sync", pool=state.pool,
                         pick=rng.select.choice(state.pool))
    if phase == ANSWERS_COMPLETE:
        # Truncate-and-combine under strict or quorum semantics —
        # delegated to combine_with_quorum so the population can never
        # drift from the single-client trials.
        pool = combine_with_quorum(
            {str(index): addresses
             for index, addresses in sorted(answers.items())},
            min_answers=config.min_answers)
        state.pool = pool if pool else None
        if not pool:
            return _conclude(config, state, rng, failed=True)
        return RoundStep("sync", pool=pool, pick=rng.select.choice(pool))
    if phase == SYNC_COMPLETE:
        # A victim is a client that actually *synced* against an
        # attacker server; a timed-out exchange shifts nothing.
        return _conclude(
            config, state, rng, synced=synced, timed_out=not synced,
            victim=synced and attacker,
            shifted=synced and clock_error > config.shift_threshold,
            clock_error=clock_error if synced else 0.0)
    raise ValueError(f"unknown round phase {phase!r}")


def _conclude(config: FleetConfig, state: ClientRoundState, rng: RoundRng,
              **flags) -> RoundStep:
    """Close the round: count it, then decide stop / churn-leave /
    reschedule (drawing churn and arrival randomness in that order)."""
    state.rounds_done += 1
    if state.rounds_done >= config.rounds:
        return RoundStep("stop", **flags)
    if config.churn_rate and rng.churn.random() < config.churn_rate:
        # Leave now, rejoin later with the pool cache dropped (the
        # rejoin is a fresh resolve — "churn forces re-resolution").
        state.pool = None
        return RoundStep("leave", delay=config.rejoin_delay, **flags)
    return RoundStep("reschedule", delay=rng.arrivals.next_delay(), **flags)


def population_outcomes(registry: MetricsRegistry,
                        clients: int) -> PopulationOutcomes:
    """Read :class:`PopulationOutcomes` back from a registry.

    Works on a live fleet's registry and equally on a registry folded
    from per-shard snapshots (:func:`repro.telemetry.fold_snapshots`) —
    the sharded engine's way of reporting one population from K worlds.
    """
    rounds = int(registry.value("pop.rounds"))
    rounds_ok = int(registry.value("pop.rounds_ok"))
    syncs = int(registry.value("pop.syncs"))
    victims = int(registry.value("pop.victim_rounds"))
    shifted = registry.get("pop.shifted")
    histogram = registry.get("pop.clock_abs_error")
    ts_victim = registry.get("pop.victim_fraction")
    ts_avail = registry.get("pop.availability")
    return PopulationOutcomes(
        clients=clients,
        rounds=rounds,
        rounds_ok=rounds_ok,
        syncs=syncs,
        victim_rounds=victims,
        availability=rounds_ok / rounds if rounds else 0.0,
        victim_fraction=victims / syncs if syncs else 0.0,
        shifted_fraction=shifted.mean() if shifted is not None else 0.0,
        mean_abs_clock_error=histogram.mean if histogram is not None else 0.0,
        p90_abs_clock_error=(histogram.quantile(0.90)
                             if histogram is not None else 0.0),
        churn_leaves=int(registry.value("pop.churn_leaves")),
        churn_joins=int(registry.value("pop.churn_joins")),
        victim_curve=ts_victim.series() if ts_victim is not None else [],
        availability_curve=ts_avail.series() if ts_avail is not None else [],
    )


class _FleetClient:
    """One population member: host + clock + stubs (or DoH) + SNTP."""

    __slots__ = ("fleet", "index", "host", "clock", "stubs", "doh", "ntp",
                 "rng", "state", "span")

    def __init__(self, fleet: "ClientFleet", index: int, host: Host,
                 clock: SimClock, stubs: List[StubResolver],
                 ntp: NtpClient, rng: RoundRng, doh=None) -> None:
        self.fleet = fleet
        self.index = index            # global index over the population
        self.host = host
        self.clock = clock
        self.stubs = stubs
        self.doh = doh                # DoHClient in transport="doh" mode
        self.ntp = ntp
        self.rng = rng
        self.state = ClientRoundState()
        self.span = None              # live "client.round" trace span


class ClientFleet:
    """N resolve→sync clients deployed on an existing topology.

    :param internet: the scenario's packet fabric.
    :param providers: resolver addresses clients query (all of them,
        per Algorithm 1's distributed lookup).
    :param pool_domain: the name whose answers form each client's pool.
    :param rng: the scenario's seed universe; the fleet draws every
        client stream from it under the ``("population", ...)`` names.
    :param nodes: topology nodes clients attach to, round-robin
        (default: every node). Scenario builders pass dedicated access
        edges here so link faults reach the whole population.
    :param config: fleet shape and behaviour.
    :param attacker_addresses: addresses that count a synced client as
        a victim (forged answers and attacker-enrolled pool members).
    :param registry: telemetry sink; a private one is created when not
        supplied. All client-side instruments (protocol counters
        included) are captured against it.
    :param endpoints: the providers' DoH endpoints (required in
        ``transport="doh"`` mode, parallel to ``providers``).
    :param server_names: the providers' TLS names (DoH mode).
    :param trust_store: CAs the clients trust (DoH mode).
    :param first_index: global index of this fleet's first client —
        non-zero when the fleet is one shard's window of a larger
        population (see the module docstring).
    :param population: total population size across every window
        (default: ``num_clients``, i.e. this fleet is the whole
        population). Drives arrival phasing and the active-clients
        gauge so per-shard telemetry is window-position-independent.
    """

    def __init__(self, internet: Internet, providers: Sequence[IPAddress],
                 pool_domain: "Name | str", rng: RngRegistry,
                 nodes: Optional[Sequence[str]] = None,
                 config: Optional[FleetConfig] = None,
                 attacker_addresses: Sequence["IPAddress | str"] = (),
                 registry: Optional[MetricsRegistry] = None,
                 endpoints: Optional[Sequence] = None,
                 server_names: Optional[Sequence[str]] = None,
                 trust_store=None, first_index: int = 0,
                 population: Optional[int] = None) -> None:
        if not providers:
            raise ValueError("fleet needs at least one provider")
        self._internet = internet
        self._simulator = internet.simulator
        self._providers = [IPAddress(p) for p in providers]
        self._pool_domain = Name(pool_domain)
        self._nodes = list(nodes) if nodes else internet.topology.nodes
        self._rng = rng
        self._config = config or FleetConfig()
        if self._config.transport == "doh":
            if endpoints is None or server_names is None or trust_store is None:
                raise ValueError(
                    "transport='doh' needs endpoints, server_names and "
                    "a trust_store")
            if not len(endpoints) == len(server_names) == len(self._providers):
                raise ValueError(
                    "endpoints/server_names must parallel providers")
        self._endpoints = list(endpoints) if endpoints is not None else None
        self._server_names = (list(server_names)
                              if server_names is not None else None)
        self._trust_store = trust_store
        self._attackers: Set[IPAddress] = {
            IPAddress(a) for a in attacker_addresses}
        self._first_index = int(first_index)
        self._population = (int(population) if population is not None
                            else self._config.num_clients)
        if self._first_index < 0:
            raise ValueError(f"first_index must be >= 0, got {first_index}")
        if not (self._first_index + self._config.num_clients
                <= self._population <= FleetConfig.MAX_CLIENTS):
            raise ValueError(
                f"window [{self._first_index}, "
                f"{self._first_index + self._config.num_clients}) must fit "
                f"inside the population "
                f"(got population={self._population}, max "
                f"{FleetConfig.MAX_CLIENTS})")
        self.registry = registry or MetricsRegistry()
        # Same zero-cost contract as the registry: capture the ambient
        # tracer once; with none installed the round loop allocates
        # nothing trace-related.
        self._tracer = current_tracer()
        self._dispatcher = BatchDispatcher(
            self._simulator, self._config.dispatch_quantum)
        self._started = False
        self._build_instruments()
        self._clients = [self._build_client(index)
                         for index in range(self._config.num_clients)]
        # The gauge reports the *global* population: every window of the
        # same population publishes the same value at the same virtual
        # times (under churn each shard tracks only its own leavers, so
        # the gauge stays exact only for churn_rate == 0 splits).
        self._active_count = self._population

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_instruments(self) -> None:
        reg = self.registry
        bin_width = self._config.time_bin
        self._m_rounds = reg.counter("pop.rounds")
        self._m_rounds_ok = reg.counter("pop.rounds_ok")
        self._m_rounds_failed = reg.counter("pop.rounds_failed")
        self._m_victims = reg.counter("pop.victim_rounds")
        self._m_syncs = reg.counter("pop.syncs")
        self._m_sync_timeouts = reg.counter("pop.sync_timeouts")
        self._m_leaves = reg.counter("pop.churn_leaves")
        self._m_joins = reg.counter("pop.churn_joins")
        self._m_active = reg.gauge("pop.active_clients")
        self._ts_victim = reg.timeseries("pop.victim_fraction", bin_width)
        self._ts_avail = reg.timeseries("pop.availability", bin_width)
        self._ts_shifted = reg.timeseries("pop.shifted", bin_width)
        self._h_abs_error = reg.histogram("pop.clock_abs_error")
        # Pin the NTP client series' binning before any client exists.
        reg.timeseries("ntp.offset", bin_width)

    def _build_client(self, index: int) -> _FleetClient:
        config = self._config
        # Everything about a client keys off its *global* index, so a
        # window build is client-for-client identical to the same
        # client inside one whole-population fleet.
        g = self._first_index + index
        tag = str(g)
        # One pre-hashed ("population", tag) prefix per client: each of
        # the client's streams derives from a digest copy instead of
        # re-hashing the shared path (the construction is bit-identical
        # to the direct derive_seed path — see StreamPrefix).
        streams = self._rng.prefixed("population", tag)
        # 200 clients per /24, 256 blocks per second octet, octets
        # 10.120-10.255: room for FleetConfig.MAX_CLIENTS addresses
        # clear of every infrastructure range.
        block, slot = divmod(g, 200)
        address = IPAddress(
            f"10.{120 + block // 256}.{block % 256}.{slot + 1}")
        host = self._internet.add_host(Host(
            f"pop-{g}", self._nodes[g % len(self._nodes)], [address],
            rng=streams.stream("ports")))
        client_rng = streams.stream("client")
        clock = SimClock(
            lambda: self._simulator.now,
            offset=client_rng.uniform(-config.initial_clock_error,
                                      config.initial_clock_error))
        # Protocol objects capture the fleet's registry, so transport
        # and stub/NTP counters land next to the population metrics.
        doh = None
        with use_registry(self.registry):
            if config.transport == "doh":
                from repro.doh.client import DoHClient
                stubs: List[StubResolver] = []
                doh = DoHClient(host, self._simulator, self._trust_store,
                                rng=streams.stream("doh"),
                                timeout=config.dns_timeout,
                                retries=config.dns_retries)
            else:
                stubs = [StubResolver(host, self._simulator, provider,
                                      timeout=config.dns_timeout,
                                      retries=config.dns_retries,
                                      rng=streams.stream("txid", str(pi)))
                         for pi, provider in enumerate(self._providers)]
            ntp = NtpClient(host, self._simulator, clock,
                            timeout=config.ntp_timeout)
        arrivals = make_arrivals(
            config.arrival, config.mean_interval, g, self._population,
            rng=streams.stream("arrival"))
        rng = RoundRng(select=streams.stream("select"),
                       churn=streams.stream("churn"),
                       arrivals=arrivals)
        return _FleetClient(self, g, host, clock, stubs, ntp, rng, doh=doh)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def config(self) -> FleetConfig:
        return self._config

    @property
    def clients(self) -> int:
        return len(self._clients)

    @property
    def first_index(self) -> int:
        """Global index of this fleet's first client."""
        return self._first_index

    @property
    def population(self) -> int:
        """Total population this fleet is a window of."""
        return self._population

    @property
    def dispatcher(self) -> BatchDispatcher:
        return self._dispatcher

    def client_clock_errors(self) -> List[float]:
        """Current per-client clock errors (diagnostics/tests)."""
        return [client.clock.error() for client in self._clients]

    # ------------------------------------------------------------------
    # Driving.
    # ------------------------------------------------------------------

    def start(self) -> "ClientFleet":
        """Schedule every client's first round; returns self."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self._m_active.set(self._active_count, at=self._simulator.now)
        for client in self._clients:
            self._dispatcher.call_after(client.rng.arrivals.first_delay(),
                                        lambda c=client: self._round(c))
        return self

    def run(self, max_events: int = 5_000_000) -> PopulationOutcomes:
        """Start (if needed), drain the simulation, report outcomes."""
        if not self._started:
            self.start()
        self._simulator.run_until_idle(max_events=max_events)
        return self.outcomes()

    # ------------------------------------------------------------------
    # One client round — the effectful shell around advance_round.
    # ------------------------------------------------------------------

    def _round(self, client: _FleetClient) -> None:
        self._m_rounds.inc()
        tracer = self._tracer
        step = advance_round(self._config, client.state, client.rng,
                             ROUND_BEGIN)
        if tracer is None:
            self._apply(client, step)
            return
        # The round span lives on the client until the round concludes
        # (which happens through later simulator callbacks); scoping it
        # here parents the resolve fan-out / cached-pool sync under it.
        client.span = tracer.begin(
            "client.round",
            attrs={"client": client.index,
                   "round": client.state.rounds_done})
        with tracer.scope(client.span):
            self._apply(client, step)

    def _apply(self, client: _FleetClient, step: RoundStep) -> None:
        """Perform one :class:`RoundStep`: the I/O, telemetry and
        scheduling half of the round loop."""
        if step.action == "resolve":
            self._resolve(client)
            return
        if step.action == "sync":
            self._ts_avail.record(self._simulator.now, 1.0)
            self._m_rounds_ok.inc()
            pick = step.pick
            if client.span is not None:
                # Which pool member this round disciplines against —
                # the pivot of the victim classification.
                client.span.set(pick=str(pick))
            client.ntp.sample(
                pick,
                lambda sample: self._after_sync(
                    client, sample, attacker=pick in self._attackers))
            return
        # Concluding steps: record how the round ended...
        now = self._simulator.now
        if step.failed:
            self._ts_avail.record(now, 0.0)
            self._m_rounds_failed.inc()
        if step.synced:
            self._m_syncs.inc()
            self._ts_victim.record(now, 1.0 if step.victim else 0.0)
            if step.victim:
                self._m_victims.inc()
            self._h_abs_error.observe(step.clock_error)
            self._ts_shifted.record(now, 1.0 if step.shifted else 0.0)
        if step.timed_out:
            self._m_sync_timeouts.inc()
        if client.span is not None:
            tracer = self._tracer
            span = client.span
            client.span = None
            span.set(outcome=step.action, synced=step.synced,
                     victim=step.victim, shifted=step.shifted)
            if step.failed:
                span.set(failed=True)
            if step.timed_out:
                span.set(timed_out=True)
            if step.synced:
                span.set(clock_error=step.clock_error)
            tracer.finish(span)
        # ...then schedule what comes next.
        if step.action == "stop":
            return
        if step.action == "leave":
            self._m_leaves.inc()
            self._active_count -= 1
            self._m_active.set(self._active_count, at=now)

            def rejoin() -> None:
                self._m_joins.inc()
                self._active_count += 1
                self._m_active.set(self._active_count,
                                   at=self._simulator.now)
                self._round(client)

            self._dispatcher.call_after(step.delay, rejoin)
            return
        self._dispatcher.call_after(step.delay,
                                    lambda: self._round(client))

    def _resolve(self, client: _FleetClient) -> None:
        """Algorithm 1's fan-out: one query per provider (plain stub or
        TLS-wrapped DoH, per the configured transport), then feed the
        completed answer set back into the round loop."""
        answers: Dict[int, Optional[List[IPAddress]]] = {}
        expected = len(self._providers)
        tracer = self._tracer
        query_spans: Dict[int, Any] = {}

        def on_answer(provider_index: int,
                      addresses: Optional[List[IPAddress]]) -> None:
            answers[provider_index] = addresses
            if tracer is not None:
                span = query_spans.pop(provider_index, None)
                if span is not None:
                    if addresses is None:
                        span.set(failed=True)
                    else:
                        span.set(answers=[str(a) for a in addresses])
                    tracer.finish(span)
            if len(answers) < expected:
                return
            step = advance_round(self._config, client.state, client.rng,
                                 ANSWERS_COMPLETE, answers=answers)
            if tracer is None or client.span is None:
                self._apply(client, step)
                return
            # The last answer arrives through a delivery callback whose
            # active span is the inbound flight; re-activate the round
            # span so the combine record (and any follow-on sync
            # exchange) parent under the round, not the wire.
            with tracer.scope(client.span):
                tracer.event(
                    "client.combine",
                    attrs={"client": client.index,
                           "pool": [str(a) for a in (step.pool or [])],
                           "ok": step.action == "sync"})
                self._apply(client, step)

        def issue(provider_index: int, send: Callable[[], None]) -> None:
            if tracer is None:
                send()
                return
            span = query_spans[provider_index] = tracer.begin(
                "client.query", parent=client.span,
                attrs={"provider": provider_index})
            with tracer.scope(span):
                send()

        if client.doh is not None:
            for provider_index, (endpoint, name) in enumerate(
                    zip(self._endpoints, self._server_names)):
                issue(provider_index,
                      lambda e=endpoint, n=name, pi=provider_index:
                      client.doh.query(e, n, self._pool_domain, RRType.A,
                                       lambda outcome, pi=pi:
                                       on_answer(pi, _doh_addresses(outcome))))
        else:
            for provider_index, stub in enumerate(client.stubs):
                issue(provider_index,
                      lambda s=stub, pi=provider_index:
                      s.query(self._pool_domain, RRType.A,
                              lambda outcome, pi=pi:
                              on_answer(pi, outcome.addresses
                                        if outcome.ok else None)))

    def _after_sync(self, client: _FleetClient, sample: NtpSample,
                    attacker: bool) -> None:
        clock_error = 0.0
        if sample.ok:
            # Stepping the clock is an effect of the *exchange*, not a
            # round decision; the loop only classifies the result.
            client.clock.step(sample.offset)
            clock_error = abs(client.clock.error())
        step = advance_round(
            self._config, client.state, client.rng, SYNC_COMPLETE,
            synced=sample.ok, attacker=attacker, clock_error=clock_error)
        tracer = self._tracer
        if tracer is not None and client.span is not None:
            # Sync completion also arrives through a callback hop —
            # conclude the round under its own span.
            with tracer.scope(client.span):
                self._apply(client, step)
            return
        self._apply(client, step)

    # ------------------------------------------------------------------
    # Outcomes (read back from the registry).
    # ------------------------------------------------------------------

    def outcomes(self) -> PopulationOutcomes:
        return population_outcomes(self.registry, len(self._clients))
