"""Sharded megafleet execution: one population, K worlds.

A 100k-client population does not fit comfortably in one simulator —
not because the event loop is slow (it is O(bins) thanks to the batch
dispatcher) but because one world holds every client's host, sockets,
RNG streams and protocol objects at once. The megafleet path instead
splits the population into K contiguous *windows* and materializes each
window as its own complete world from the same :class:`ScenarioSpec`
and seed: same backbone, same DNS tree, same providers, same pool
directory — only the resident client window differs. Shards execute
through the campaign executor layer (serial, threads or fork pool,
chosen adaptively exactly like a campaign) and their telemetry
snapshots fold back, in shard order, into one registry.

Why this is exact, not approximate:

* Every client keys its RNG streams, address, node attachment and
  arrival phase off its **global** index over the **global** population
  (see :class:`~repro.population.fleet.ClientFleet`'s window
  parameters), so client ``i`` behaves identically whether it lives in
  a ``shards=1`` world or in window ``k``.
* The round loop is the pure :func:`~repro.population.fleet.advance_round`
  function; execution mode cannot leak into round decisions.
* Shard results are JSON registry snapshots; the round trip is exact
  and :func:`~repro.telemetry.fold_snapshots` folds them in shard
  order, so serial, threaded and forked execution of the *same* shard
  split produce byte-identical folded snapshots.

What is and is not invariant across different K: infrastructure
metrics (``dns.*``, ``net.*``, ``ntp.*``) replicate per world — K
shards run K recursions' worth of infrastructure — and float
accumulations (histogram totals) depend on how observations group into
shards. The population's *integer-valued* instruments, however, are
window-exact: :func:`population_invariant` selects that subset, and
folding it must agree byte-for-byte between ``shards=1`` and
``shards=K`` runs of a shard-invariant spec (single region, uniform
zero-jitter links, no churn — see ``tests/population/test_sharding.py``
and ``benchmarks/bench_p3_megafleet.py`` for the pinned check).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.population.fleet import PopulationOutcomes, population_outcomes
from repro.telemetry.registry import MetricsRegistry, fold_snapshots
from repro.telemetry.trace import current_tracer, fold_trace_snapshots


@dataclass(frozen=True)
class ShardPlan:
    """One shard's window of the population."""

    shard: int
    first_index: int
    size: int


def plan_shards(population: int, shards: int) -> List[ShardPlan]:
    """Split ``population`` clients into contiguous windows.

    The remainder spreads over the first shards (sizes differ by at
    most one); ``shards`` is capped at ``population`` so no shard is
    empty. The split is a pure function of the two integers — the same
    ``(population, shards)`` always yields the same windows, which the
    shard seeds and tests rely on.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, population)
    base, remainder = divmod(population, shards)
    plans = []
    first = 0
    for shard in range(shards):
        size = base + (1 if shard < remainder else 0)
        plans.append(ShardPlan(shard=shard, first_index=first, size=size))
        first += size
    return plans


def population_invariant(kind: str, name: str,
                         labels: Mapping[str, str]) -> bool:
    """Selects the instruments that are exact across shard counts.

    ``pop.*`` instruments accumulate integers (counts, 0/1 indicator
    sums) or K-invariant gauge values, so any shard split folds to the
    same bytes. The one exception is ``pop.clock_abs_error``: its
    histogram ``total`` is a float sum whose grouping follows the shard
    boundaries, so it is fold-order-exact at fixed K but not across
    different K.
    """
    return name.startswith("pop.") and name != "pop.clock_abs_error"


def _shard_trial(params: Mapping[str, Any], seed: int):
    """Build and run one shard's world; executor-layer trial function.

    Module-level and driven by plain JSON-able ``params`` so fork-pool
    workers can pickle and run it. Every shard receives the *same*
    seed: infrastructure streams replicate identically across shards
    (same pool rotation, same provider behaviour) while client streams
    differ per global client tag.
    """
    from repro.scenarios.spec import ScenarioSpec, _materialize_population

    spec = ScenarioSpec.from_json(params["spec"])
    window = (int(params["first_index"]), int(params["size"]),
              int(params["population"]))
    metrics = {"shard": float(params["shard"])}
    if params.get("trace"):
        # The parent's tracer cannot cross the process boundary; each
        # shard records into its own and ships the snapshot back with
        # its metrics snapshot, to be folded in shard order.
        from repro.telemetry.trace import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            world = _materialize_population(spec, seed, None, window=window)
            world.run(max_events=int(params["max_events"]))
        return (metrics, world.telemetry.snapshot_json(),
                tracer.snapshot_json())
    world = _materialize_population(spec, seed, None, window=window)
    world.run(max_events=int(params["max_events"]))
    return (metrics, world.telemetry.snapshot_json())


class ShardedFleet:
    """K windows of one population, executed as shard trials and folded.

    Duck-types the surface the campaign and bench layers use on a
    :class:`~repro.scenarios.builders.PopulationScenario`: ``run()``,
    ``outcomes()``, ``telemetry``. :func:`repro.scenarios.spec.materialize`
    returns one of these whenever ``spec.fleet.shards > 1``.

    :param spec: the scenario; ``spec.fleet`` must be set. The shard
        count comes from ``spec.fleet.shards`` unless overridden.
    :param seed: the scenario seed, shared by every shard world.
    :param registry: fold target (a private one is created when
        omitted).
    :param shards: override ``spec.fleet.shards`` (tests use this to
        shard a spec without rewriting it).
    :param workers: executor worker cap (default: ``os.cpu_count()``).

    The ``executor`` attribute ("adaptive", "serial", "threads" or
    "processes") may be set before :meth:`run` to force a mode; the
    determinism tests run the same split under different modes and
    assert byte-identical folds.
    """

    def __init__(self, spec, seed: int,
                 registry: Optional[MetricsRegistry] = None,
                 shards: Optional[int] = None,
                 workers: Optional[int] = None) -> None:
        if spec.fleet is None:
            raise ValueError("ShardedFleet needs a population spec "
                             "(spec.fleet is None)")
        self.spec = spec
        self.seed = int(seed)
        self.population = spec.fleet.size
        self.plans = plan_shards(self.population,
                                 shards if shards is not None
                                 else spec.fleet.shards)
        self.telemetry = registry if registry is not None else MetricsRegistry()
        # Ambient tracer at construction (materialize runs under the
        # trial's use_tracer scope); shards trace themselves and the
        # folded result grafts back under the current span after run().
        self._tracer = current_tracer()
        self.workers = workers
        self.executor = "adaptive"
        #: Per-shard snapshot_json strings, in shard order (after run).
        self.shard_snapshots: List[str] = []
        #: Per-shard trace snapshot_json strings, in shard order (after
        #: a traced run; empty otherwise).
        self.shard_traces: List[str] = []
        #: The executor mode the run actually used (after run).
        self.executed_mode: Optional[str] = None
        self._ran = False

    @property
    def shards(self) -> int:
        return len(self.plans)

    @property
    def clients(self) -> int:
        return self.population

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _specs(self, max_events: int) -> List[tuple]:
        spec_json = self.spec.to_json()
        return [
            (_shard_trial, plan.shard, f"shard={plan.shard}",
             {"spec": spec_json, "shard": plan.shard,
              "first_index": plan.first_index, "size": plan.size,
              "population": self.population, "max_events": max_events,
              "trace": self._tracer is not None},
             0, self.seed)
            for plan in self.plans
        ]

    def run(self, max_events: int = 5_000_000) -> PopulationOutcomes:
        """Execute every shard, fold telemetry in shard order, report.

        ``max_events`` caps each shard's own simulator (a shard runs a
        strict subset of the whole population's events, so any cap that
        suffices for ``shards=1`` suffices per shard).
        """
        if self._ran:
            raise RuntimeError("sharded fleet already ran")
        self._ran = True
        from repro.campaign.executors import (
            choose_executor,
            execute_spec,
            run_processes,
            run_serial,
            run_threads,
        )

        specs = self._specs(max_events)
        records: Dict[int, Any] = {}

        def emit(record) -> None:
            records[record.point_index] = record

        mode = self.executor
        if mode == "adaptive":
            # Probe shard 0 in-parent (it doubles as the calibration
            # measurement), then pick the executor for the rest exactly
            # the way a campaign would.
            started = time.perf_counter()
            emit(execute_spec(specs[0]))
            per_spec_s = time.perf_counter() - started
            rest = specs[1:]
            if not rest:
                mode, workers = "serial", 1
            else:
                choice = choose_executor(
                    per_spec_s, len(rest),
                    self.workers if self.workers is not None
                    else (os.cpu_count() or 1))
                mode, workers = choice.kind, choice.workers
            specs = rest
        else:
            workers = (self.workers if self.workers is not None
                       else (os.cpu_count() or 1))
        if mode == "processes" and _in_daemon_process():
            # Fork-pool workers are daemonic and may not spawn their
            # own children; the serial path is bit-identical.
            mode = "serial"
        if specs:
            if mode == "threads":
                run_threads(specs, workers, None, emit)
            elif mode == "processes":
                if run_processes(specs, workers, None, emit) is None:
                    mode = "serial"
                    run_serial(specs, emit)
            else:
                mode = "serial"
                run_serial(specs, emit)
        self.executed_mode = mode
        missing = [plan.shard for plan in self.plans
                   if plan.shard not in records]
        if missing:
            raise RuntimeError(f"shards {missing} produced no record")
        self.shard_snapshots = [records[plan.shard].telemetry
                                for plan in self.plans]
        self.telemetry.merge(fold_snapshots(self.shard_snapshots))
        if self._tracer is not None:
            self.shard_traces = [records[plan.shard].trace
                                 for plan in self.plans]
            self._tracer.absorb(fold_trace_snapshots(self.shard_traces))
        return self.outcomes()

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    def outcomes(self) -> PopulationOutcomes:
        """Population outcomes read from the folded registry."""
        return population_outcomes(self.telemetry, self.population)

    def invariant_snapshot_json(self) -> str:
        """Canonical JSON of the shard-count-invariant telemetry subset
        (see :func:`population_invariant`) — the bytes compared between
        ``shards=1`` and ``shards=K`` runs."""
        if not self.shard_snapshots:
            raise RuntimeError("run() the fleet before snapshotting")
        return fold_snapshots(self.shard_snapshots,
                              select=population_invariant).snapshot_json()


def invariant_snapshot_json(registry: MetricsRegistry) -> str:
    """The shard-count-invariant subset of any registry's snapshot —
    apply to a ``shards=1`` world's registry to get the reference bytes
    a :meth:`ShardedFleet.invariant_snapshot_json` must reproduce."""
    return fold_snapshots([registry.snapshot_json()],
                          select=population_invariant).snapshot_json()


def shard_invariant_spec(population: int, rounds: int = 2,
                         corrupted: int = 1, shards: int = 1):
    """A population spec whose invariant telemetry subset is *provably*
    byte-identical across shard counts — the harness behind the
    K=1 == K=N determinism checks.

    Cross-K equality needs every per-world stochastic draw to be either
    client-keyed (global index streams — always invariant) or identical
    in every world regardless of which client window is resident. The
    spec arranges the latter:

    * one population region, so every client shares one attach node and
      one deterministic path to everything;
    * zero jitter on the access link and (via the ``backbone``
      override) on every backbone hop, so packet latencies carry no
      per-world draw positions;
    * a pool TTL covering the whole run and arrival spacing wider than
      one recursion, so exactly one recursion per provider fills every
      world's cache with the same rotation draws;
    * no churn, so the active-clients gauge stays at the global
      population in every shard.
    """
    from repro.scenarios.spec import (
        FleetSpec,
        LinkSpec,
        NetworkSpec,
        PoolSpec,
        ProviderSpec,
        RegionSpec,
        ScenarioSpec,
        TelemetrySpec,
    )

    # >= 2 virtual seconds between consecutive client arrivals: far
    # longer than one zero-jitter recursion, so only the first client
    # ever races the provider caches.
    interval = max(2.0 * population, 16.0)
    horizon = interval * (rounds + 1)
    return ScenarioSpec(
        network=NetworkSpec(
            regions=(RegionSpec(name="mono", attach="eu-central",
                                link=LinkSpec(latency=0.003, jitter=0.0)),),
            backbone=LinkSpec(latency=0.02, jitter=0.0)),
        provider=ProviderSpec(count=3, corrupted=corrupted),
        pool=PoolSpec(ttl=int(horizon) + 60),
        fleet=FleetSpec(size=population, rounds=rounds,
                        mean_interval=interval, shards=shards),
        telemetry=TelemetrySpec(time_bin=10.0))


def _in_daemon_process() -> bool:
    try:
        import multiprocessing
        return multiprocessing.current_process().daemon
    except Exception:
        return False
