"""Executes a :class:`~repro.chaos.spec.ChaosSpec` timeline against a
compiled world.

The controller is built by ``materialize`` when (and only when) the
scenario spec carries chaos events: a chaos-free spec builds no
controller, schedules nothing, draws nothing, and stays byte-identical
to the golden fixtures. Every event schedules an apply callback at its
``at`` (and, for windowed events, a revert at ``at + duration``) on the
world's existing :class:`~repro.netsim.simulator.Simulator`, so chaos
interleaves deterministically with client traffic in virtual time.

Mutation discipline: host crash/restart switches
(``Internet.set_host_down`` / ``set_host_up``) and partition topology
edits are confined to this module — a CI grep bans them elsewhere — so
every infrastructure failure in a run is attributable to a declared,
sweepable chaos event.

Telemetry (all lazily created, so worlds without chaos leave the
registry untouched): a ``chaos.events{kind=...}`` counter per applied
event, a ``chaos.active`` time series marking degraded windows, and one
``chaos.event`` trace span per windowed event.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.capacity import ServerCapacity
from repro.chaos.spec import (
    CacheWipe,
    ChaosSpec,
    LinkFlap,
    Overload,
    Partition,
    ServerOutage,
)
from repro.core.errors import ConfigurationError
from repro.netsim.link import FaultModel
from repro.telemetry.trace import current_tracer

#: Bin width (virtual seconds) of the ``chaos.active`` series.
ACTIVE_BIN = 1.0


class ChaosController:
    """Schedules and executes one world's chaos timeline.

    :param spec: the timeline to execute.
    :param pool: the compiled :class:`~repro.scenarios.builders.PoolScenario`
        (carries the simulator, internet, providers, DNS servers and
        RNG registry).
    :param ntp_fleet: the deployed :class:`~repro.ntp.pool.NtpFleet`
        for ``scope="pool"`` targets (``None`` in single-client worlds
        without a deployed fleet).
    :param registry: metrics registry for the ``chaos.*`` / ``srv.*``
        instruments (``None`` disables chaos telemetry).
    """

    def __init__(self, spec: ChaosSpec, pool, *, ntp_fleet=None,
                 registry=None) -> None:
        self._spec = spec
        self._pool = pool
        self._ntp_fleet = ntp_fleet
        self._simulator = pool.simulator
        self._internet = pool.internet
        self._topology = pool.internet.topology
        self._rng = pool.rng
        self._registry = registry
        self._tracer = current_tracer()
        #: Applied windows, for introspection/tests:
        #: ``(kind, at, end, targets)`` in schedule order.
        self.windows: List[Tuple[str, float, float, Tuple[str, ...]]] = []
        self._partition_saved: Dict[int, List] = {}
        self._flap_saved: Dict[int, List] = {}
        self._overloaded: Dict[int, List] = {}
        self._ts_active = (registry.timeseries("chaos.active", ACTIVE_BIN)
                          if registry is not None else None)

    @property
    def spec(self) -> ChaosSpec:
        return self._spec

    # ------------------------------------------------------------------
    # Installation.
    # ------------------------------------------------------------------

    def install(self) -> "ChaosController":
        """Schedule every event on the simulator; returns self."""
        for index, event in enumerate(self._spec.events):
            if isinstance(event, ServerOutage):
                targets = self._outage_targets(event, index)
                self._schedule_window(
                    index, event, targets,
                    lambda t=targets: self._crash(t),
                    lambda t=targets: self._restart(t))
            elif isinstance(event, LinkFlap):
                self._schedule_window(
                    index, event, tuple(event.links),
                    lambda i=index, e=event: self._flap(i, e),
                    lambda i=index: self._unflap(i))
            elif isinstance(event, Partition):
                self._schedule_window(
                    index, event, tuple(event.isolate),
                    lambda i=index, e=event: self._partition(i, e),
                    lambda i=index: self._heal(i))
            elif isinstance(event, Overload):
                targets = self._overload_targets(event)
                self._schedule_window(
                    index, event, tuple(label for label, _ in targets),
                    lambda i=index, e=event, t=targets:
                        self._overload(i, e, t),
                    lambda i=index: self._relax(i))
            elif isinstance(event, CacheWipe):
                self._simulator.schedule_at(
                    event.at,
                    lambda e=event: self._wipe(e),
                    label="chaos:cache-wipe")
            else:  # pragma: no cover - ChaosSpec validates kinds
                raise ConfigurationError(
                    f"unhandled chaos event {type(event).__name__}")
        return self

    def _schedule_window(self, index: int, event, targets: Tuple[str, ...],
                         apply, revert) -> None:
        kind = type(event).KIND
        end = event.at + event.duration

        def do_apply() -> None:
            self._mark(kind, event.at, end, targets)
            apply()

        def do_revert() -> None:
            if self._ts_active is not None:
                self._ts_active.record(self._simulator.now, 0.0)
            revert()

        self._simulator.schedule_at(event.at, do_apply,
                                    label=f"chaos:{kind}")
        self._simulator.schedule_at(end, do_revert,
                                    label=f"chaos:{kind}:revert")

    def _mark(self, kind: str, at: float, end: float,
              targets: Tuple[str, ...]) -> None:
        self.windows.append((kind, at, end, targets))
        if self._registry is not None:
            self._registry.counter("chaos.events", kind=kind).inc()
            if self._ts_active is not None:
                self._ts_active.record(at, 1.0)
        if self._tracer is not None:
            self._tracer.span_at(
                "chaos.event", at, max(at, end),
                attrs={"kind": kind, "targets": ",".join(targets)})

    # ------------------------------------------------------------------
    # Target resolution.
    # ------------------------------------------------------------------

    def _scope_hosts(self, scope: str) -> List[str]:
        """Host names a scope addresses, in a deterministic order."""
        if scope == "providers":
            return [deployment.host.name
                    for deployment in self._pool.providers]
        if scope == "dns":
            return [server.host.name for _, server in
                    sorted(self._pool.dns_servers.items())]
        if scope == "pool":
            if self._ntp_fleet is None:
                return []
            return [server.host.name for _, server in
                    sorted(self._ntp_fleet.servers.items(),
                           key=lambda item: str(item[0]))]
        raise ConfigurationError(f"unknown chaos scope {scope!r}")

    def _outage_targets(self, event: ServerOutage,
                        index: int) -> Tuple[str, ...]:
        if event.hosts:
            known = {host.name for host in self._internet.hosts}
            unknown = [name for name in event.hosts if name not in known]
            if unknown:
                raise ConfigurationError(
                    f"chaos outage names unknown hosts {unknown}")
            return tuple(event.hosts)
        names = self._scope_hosts(event.scope)
        if event.fraction <= 0.0 or not names:
            return ()
        count = min(len(names), math.ceil(event.fraction * len(names)))
        # The chaos layer's only randomness: which scope members the
        # fractional outage hits, from a dedicated ("chaos", ...)
        # stream so chaos-free runs draw nothing anywhere.
        rng = self._rng.stream("chaos", "outage", str(index))
        return tuple(sorted(rng.sample(names, count)))

    def _overload_targets(self, event: Overload) -> List[Tuple[str, Any]]:
        """(label, serve engine) pairs the overload window gates."""
        targets: List[Tuple[str, Any]] = []
        if event.scope == "providers":
            for deployment in self._pool.providers:
                engine = (deployment.doh_server
                          if deployment.doh_server is not None
                          else deployment.resolver)
                targets.append((deployment.name, engine))
        elif event.scope == "dns":
            for name, server in sorted(self._pool.dns_servers.items()):
                targets.append((name, server))
        elif event.scope == "pool" and self._ntp_fleet is not None:
            for address, server in sorted(self._ntp_fleet.servers.items(),
                                          key=lambda item: str(item[0])):
                targets.append((server.host.name, server))
        if event.servers:
            wanted = set(event.servers)
            targets = [(label, engine) for label, engine in targets
                       if label in wanted]
        return targets

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------

    def _crash(self, targets: Tuple[str, ...]) -> None:
        for name in targets:
            self._internet.set_host_down(name)

    def _restart(self, targets: Tuple[str, ...]) -> None:
        for name in targets:
            self._internet.set_host_up(name)

    def _flap(self, index: int, event: LinkFlap) -> None:
        saved = []
        flap = FaultModel(loss_rate=event.loss_rate)
        for name in event.links:
            link = self._link_by_name(name)
            previous = link.fault
            saved.append((link.ends, previous))
            model = previous.compose(flap) if previous is not None else flap
            self._topology.set_fault_model(*link.ends, model)
        self._flap_saved[index] = saved

    def _unflap(self, index: int) -> None:
        for (a, b), previous in self._flap_saved.pop(index, ()):
            self._topology.set_fault_model(a, b, previous)

    def _link_by_name(self, name: str):
        for link in self._topology.links:
            if link.name == name:
                return link
        raise ConfigurationError(
            f"chaos link-flap names unknown link {name!r}; known: "
            f"{[link.name for link in self._topology.links]}")

    def _partition(self, index: int, event: Partition) -> None:
        isolate = set(event.isolate)
        saved = []
        for link in list(self._topology.links):
            a, b = link.ends
            if (a in isolate) != (b in isolate):
                saved.append((a, b, link.profile, link.fault))
                self._topology.remove_link(a, b)
        self._partition_saved[index] = saved

    def _heal(self, index: int) -> None:
        for a, b, profile, fault in self._partition_saved.pop(index, ()):
            self._topology.add_link(a, b, profile)
            if fault is not None:
                self._topology.set_fault_model(a, b, fault)

    def _wipe(self, event: CacheWipe) -> None:
        wanted = set(event.resolvers)
        targets = []
        for deployment in self._pool.providers:
            if not wanted or deployment.name in wanted:
                deployment.resolver.cache.flush()
                targets.append(deployment.name)
        now = self._simulator.now
        self.windows.append((CacheWipe.KIND, now, now, tuple(targets)))
        if self._registry is not None:
            self._registry.counter("chaos.events",
                                   kind=CacheWipe.KIND).inc()
        if self._tracer is not None:
            self._tracer.event("chaos.event", at=now,
                               attrs={"kind": CacheWipe.KIND,
                                      "targets": ",".join(targets)})

    def _overload(self, index: int, event: Overload,
                  targets: List[Tuple[str, Any]]) -> None:
        attached = []
        for label, engine in targets:
            engine.capacity = ServerCapacity(
                self._simulator, qps=event.qps,
                queue_depth=event.queue_depth,
                service_time=event.service_time,
                overflow=event.overflow, label=label,
                registry=self._registry)
            attached.append(engine)
        self._overloaded[index] = attached

    def _relax(self, index: int) -> None:
        for engine in self._overloaded.pop(index, ()):
            engine.capacity = None


def install_chaos(spec, pool, *, ntp_fleet=None,
                  registry=None) -> Optional[ChaosController]:
    """Build and install a controller for ``spec.chaos``; ``None`` when
    the spec has no chaos (the zero-cost steady state)."""
    chaos = getattr(spec, "chaos", None)
    if chaos is None or not chaos.events:
        return None
    controller = ChaosController(chaos, pool, ntp_fleet=ntp_fleet,
                                 registry=registry)
    return controller.install()


__all__ = ["ACTIVE_BIN", "ChaosController", "install_chaos"]
