"""Deterministic chaos engineering for compiled scenario worlds.

Declare a failure timeline with :class:`ChaosSpec` (outages, link
flaps, partitions, cache wipes, overload windows), attach it to a
:class:`repro.scenarios.spec.ScenarioSpec` via its ``chaos=`` field,
and ``materialize`` installs a :class:`ChaosController` that executes
the timeline in virtual time. See the README's "Chaos engineering"
section for the schema and the telemetry it produces.
"""

from repro.chaos.capacity import QUEUE_DEPTH_BIN, ServerCapacity
from repro.chaos.controller import ACTIVE_BIN, ChaosController, install_chaos
from repro.chaos.spec import (
    EVENT_KINDS,
    CacheWipe,
    ChaosSpec,
    LinkFlap,
    Overload,
    Partition,
    ServerOutage,
    decode_event,
    encode_event,
)

__all__ = [
    "ACTIVE_BIN",
    "CacheWipe",
    "ChaosController",
    "ChaosSpec",
    "EVENT_KINDS",
    "LinkFlap",
    "Overload",
    "Partition",
    "QUEUE_DEPTH_BIN",
    "ServerCapacity",
    "ServerOutage",
    "decode_event",
    "encode_event",
    "install_chaos",
]
