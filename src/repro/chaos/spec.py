"""Declarative chaos timelines: frozen, JSON-round-tripping failure
schedules.

A :class:`ChaosSpec` is a virtual-time *timeline* of failure events the
:class:`~repro.chaos.controller.ChaosController` executes against a
compiled world: crash/restart outages, link flaps, region partitions,
resolver cache wipes and server overload windows. Events are plain
frozen dataclasses on :class:`repro.util.specbase.SpecBase`, so they
sweep like every other spec axis (``chaos.events[0].duration``) and
serialize into the scenario JSON that shards and campaign workers
rebuild worlds from.

Serialization uses a tagged union: every encoded event carries a
``"kind"`` discriminator (see :data:`EVENT_KINDS`), because a timeline
freely mixes event types and ``SpecBase._NESTED`` only expresses
homogeneous nesting.

Determinism contract: the only randomness any event may consume is the
fractional :class:`ServerOutage` victim sample, drawn from a dedicated
``("chaos", ...)`` stream — a world whose spec has no chaos events
builds no controller and draws nothing, staying byte-identical to the
golden fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Mapping, Tuple

from repro.core.errors import ConfigurationError
from repro.util.specbase import SpecBase
from repro.util.validation import check_non_negative, check_probability

#: Valid targets for scope-addressed events: the DoH/DNS providers, the
#: authoritative DNS servers, or the NTP pool hosts.
SCOPES = ("providers", "dns", "pool")

#: Overload overflow policies: silently drop excess queries, or answer
#: them with SERVFAIL (HTTP 503 on the DoH engine).
OVERFLOW_POLICIES = ("drop", "servfail")


def _check_choice(value: str, name: str, choices: Tuple[str, ...]) -> None:
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}")


@dataclass(frozen=True)
class ServerOutage(SpecBase):
    """Crash the named (or sampled) servers at ``at``; restart them
    ``duration`` seconds later.

    Targets resolve against ``scope``: explicit ``hosts`` name hosts
    directly, otherwise ``fraction`` of the scope's hosts are sampled
    from the world's ``("chaos", "outage", <index>)`` stream — the one
    place the chaos layer consumes randomness.
    """

    KIND: ClassVar[str] = "outage"
    _NESTED = {"hosts": ("scalars", None)}

    hosts: Tuple[str, ...] = ()
    scope: str = "providers"
    fraction: float = 0.0
    at: float = 0.0
    duration: float = 30.0

    def __post_init__(self) -> None:
        _check_choice(self.scope, "scope", SCOPES)
        check_probability(self.fraction, "fraction")
        check_non_negative(self.at, "at")
        check_non_negative(self.duration, "duration")


@dataclass(frozen=True)
class LinkFlap(SpecBase):
    """Degrade the named links (canonical ``"a--b"`` names) with an
    extra ``loss_rate`` for ``duration`` seconds; the default 1.0 is a
    hard flap. Composes with (and restores) any fault model the
    scenario already installed."""

    KIND: ClassVar[str] = "link-flap"
    _NESTED = {"links": ("scalars", None)}

    links: Tuple[str, ...] = ()
    at: float = 0.0
    duration: float = 30.0
    loss_rate: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.at, "at")
        check_non_negative(self.duration, "duration")
        check_probability(self.loss_rate, "loss_rate")


@dataclass(frozen=True)
class Partition(SpecBase):
    """Split the topology: every link with exactly one endpoint in
    ``isolate`` (topology node names) is removed at ``at`` and restored
    — profile and fault model included — ``duration`` seconds later.
    Both edits bump ``Topology.version`` so cached flight plans
    invalidate."""

    KIND: ClassVar[str] = "partition"
    _NESTED = {"isolate": ("scalars", None)}

    isolate: Tuple[str, ...] = ()
    at: float = 0.0
    duration: float = 30.0

    def __post_init__(self) -> None:
        check_non_negative(self.at, "at")
        check_non_negative(self.duration, "duration")


@dataclass(frozen=True)
class CacheWipe(SpecBase):
    """Flush the named providers' recursive-resolver caches at ``at``
    (empty ``resolvers`` wipes every provider) — the restart-without-
    state event that forces full re-resolution storms."""

    KIND: ClassVar[str] = "cache-wipe"
    _NESTED = {"resolvers": ("scalars", None)}

    resolvers: Tuple[str, ...] = ()
    at: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.at, "at")


@dataclass(frozen=True)
class Overload(SpecBase):
    """Impose a bounded-queue capacity model on the scope's serve
    engines for ``duration`` seconds: requests are serviced at most
    ``qps`` per second (each taking ``service_time``), at most
    ``queue_depth`` may wait, and overflow is dropped or answered with
    SERVFAIL per ``overflow``. Queue state lands in the
    ``srv.queue_depth`` / ``srv.rejected`` telemetry."""

    KIND: ClassVar[str] = "overload"
    _NESTED = {"servers": ("scalars", None)}

    servers: Tuple[str, ...] = ()
    scope: str = "providers"
    at: float = 0.0
    duration: float = 30.0
    qps: float = 50.0
    queue_depth: int = 8
    service_time: float = 0.002
    overflow: str = "drop"

    def __post_init__(self) -> None:
        _check_choice(self.scope, "scope", SCOPES)
        _check_choice(self.overflow, "overflow", OVERFLOW_POLICIES)
        check_non_negative(self.at, "at")
        check_non_negative(self.duration, "duration")
        check_non_negative(self.service_time, "service_time")
        if self.qps <= 0.0:
            raise ConfigurationError(f"qps must be > 0, got {self.qps}")
        if self.queue_depth < 0:
            raise ConfigurationError(
                f"queue_depth must be >= 0, got {self.queue_depth}")


#: The tagged-union registry: discriminator value -> event class.
EVENT_KINDS: Dict[str, type] = {
    cls.KIND: cls
    for cls in (ServerOutage, LinkFlap, Partition, CacheWipe, Overload)
}


def encode_event(event: SpecBase) -> Dict[str, Any]:
    """One event as a JSON-ready dict carrying its ``kind`` tag."""
    kind = getattr(type(event), "KIND", None)
    if kind not in EVENT_KINDS:
        raise ConfigurationError(
            f"not a chaos event: {type(event).__name__}")
    data = event.to_dict()
    data["kind"] = kind
    return data


def decode_event(data: Mapping[str, Any]) -> SpecBase:
    """Inverse of :func:`encode_event` (unknown kinds fail loudly)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown chaos event kind {kind!r}; "
            f"known: {sorted(EVENT_KINDS)}")
    return cls.from_dict(payload)


@dataclass(frozen=True)
class ChaosSpec(SpecBase):
    """A timeline of failure events, executed in virtual time.

    Events need not be sorted; the controller schedules each at its own
    ``at``. An empty timeline is equivalent to no chaos at all (no
    controller is built, nothing is drawn or recorded).
    """

    events: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if getattr(type(event), "KIND", None) not in EVENT_KINDS:
                raise ConfigurationError(
                    f"not a chaos event: {type(event).__name__}")

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [encode_event(event) for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        unknown = set(data) - {"events"}
        if unknown:
            raise ConfigurationError(
                f"ChaosSpec.from_dict: unknown fields {sorted(unknown)}; "
                f"known: ['events']")
        return cls(events=tuple(decode_event(item)
                                for item in data.get("events", ())))


__all__ = [
    "CacheWipe",
    "ChaosSpec",
    "EVENT_KINDS",
    "LinkFlap",
    "Overload",
    "Partition",
    "ServerOutage",
    "decode_event",
    "encode_event",
]
