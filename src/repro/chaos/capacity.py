"""Bounded-queue capacity model for the DNS/DoH/NTP serve engines.

In steady state every serve engine answers inline (infinite capacity —
the pre-chaos behaviour, byte-identical when no capacity is attached).
During an :class:`~repro.chaos.spec.Overload` window the controller
attaches a :class:`ServerCapacity` to the engine: requests are admitted
into a virtual queue drained at ``max(service_time, 1/qps)`` seconds
per request, at most ``queue_depth`` requests may wait, and overflow is
either silently dropped or bounced with SERVFAIL/503.

The model is *deterministic*: queue state is a single ``next_free``
timestamp, so it consumes no randomness and sharded/parallel executions
replay it bit-identically.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Bin width (virtual seconds) of the ``srv.queue_depth`` series.
QUEUE_DEPTH_BIN = 1.0


class ServerCapacity:
    """One serve engine's bounded queue during an overload window.

    :param simulator: the virtual-time engine completions schedule on.
    :param qps: maximum sustained service rate (requests/second).
    :param queue_depth: how many requests may wait for service; a
        request arriving to a full queue overflows.
    :param service_time: seconds of service per request (the drain
        interval is ``max(service_time, 1/qps)``).
    :param overflow: ``"drop"`` (overflow vanishes) or ``"servfail"``
        (the engine's reject callback answers it).
    :param label: server name for the ``srv.*`` telemetry labels.
    :param registry: metrics registry, or ``None`` for no telemetry.
    """

    __slots__ = ("_simulator", "_interval", "_queue_depth", "_overflow",
                 "_next_free", "_m_admitted", "_m_rejected", "_ts_depth")

    def __init__(self, simulator, *, qps: float, queue_depth: int,
                 service_time: float, overflow: str, label: str,
                 registry=None) -> None:
        self._simulator = simulator
        self._interval = max(service_time, 1.0 / qps)
        self._queue_depth = queue_depth
        self._overflow = overflow
        self._next_free = 0.0
        if registry is not None:
            self._m_admitted = registry.counter("srv.admitted", server=label)
            self._m_rejected = registry.counter("srv.rejected", server=label)
            self._ts_depth = registry.timeseries(
                "srv.queue_depth", QUEUE_DEPTH_BIN, server=label)
        else:
            self._m_admitted = None
            self._m_rejected = None
            self._ts_depth = None

    @property
    def interval(self) -> float:
        """Seconds between successive service completions at capacity."""
        return self._interval

    def depth(self, now: float) -> float:
        """Requests currently waiting (fractional: backlog/interval)."""
        return max(0.0, self._next_free - now) / self._interval

    def admit(self, serve: Callable[[], None],
              reject: Optional[Callable[[], None]] = None) -> bool:
        """Queue one request.

        Admitted requests run ``serve`` when they reach the head of the
        queue (after queueing delay plus service time). Overflow bumps
        ``srv.rejected`` and, under the ``"servfail"`` policy, runs
        ``reject`` immediately so the engine can bounce the query.
        Returns whether the request was admitted.
        """
        now = self._simulator.now
        depth = self.depth(now)
        if self._ts_depth is not None:
            self._ts_depth.record(now, depth)
        if depth >= self._queue_depth:
            if self._m_rejected is not None:
                self._m_rejected.inc()
            if self._overflow == "servfail" and reject is not None:
                reject()
            return False
        start = now if self._next_free < now else self._next_free
        self._next_free = start + self._interval
        if self._m_admitted is not None:
            self._m_admitted.inc()
        self._simulator.schedule_at(self._next_free, serve,
                                    label="srv-capacity")
        return True


__all__ = ["QUEUE_DEPTH_BIN", "ServerCapacity"]
