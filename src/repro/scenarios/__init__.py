"""Scenario layer: declarative specs, their compiler, and presets.

A *scenario* wires together the substrates — topology, DNS tree, DoH
providers, NTP pool, client fleet — into the system of the paper's
Figure 1.  The construction surface is spec-first: describe a world as
a :class:`ScenarioSpec` (typed, frozen, JSON-round-tripping dataclasses)
and compile it with :func:`materialize`; campaign grids sweep dotted
spec paths directly (``ParameterGrid.over_spec``).  The legacy keyword
builders remain as deprecated shims.
"""

from repro.scenarios.builders import (
    PoolScenario,
    PopulationScenario,
    build_pool_scenario,
    build_population_scenario,
)
from repro.scenarios.presets import (
    SPEC_PRESETS,
    degraded_network_scenario,
    e2_grid_base_spec,
    figure1_scenario,
    get_spec_preset,
    hierarchy_population_spec,
    hierarchy_scenario,
    hierarchy_spec,
    large_scale_scenario,
    lossy_network_scenario,
)
from repro.scenarios.spec import (
    RESOLVER_MODES,
    AttackSpec,
    FaultSpec,
    FleetSpec,
    HierarchySpec,
    LinkSpec,
    NetworkSpec,
    PoolSpec,
    ProfileSpec,
    ProviderSpec,
    RegionSpec,
    ResolverSpec,
    ScenarioSpec,
    TelemetrySpec,
    World,
    get_path,
    materialize,
    pool_spec,
    population_spec,
    set_path,
)
from repro.scenarios.workload import PoolDirectory

__all__ = [
    "AttackSpec",
    "FaultSpec",
    "FleetSpec",
    "HierarchySpec",
    "LinkSpec",
    "NetworkSpec",
    "PoolDirectory",
    "PoolScenario",
    "PoolSpec",
    "PopulationScenario",
    "ProfileSpec",
    "ProviderSpec",
    "RESOLVER_MODES",
    "RegionSpec",
    "ResolverSpec",
    "SPEC_PRESETS",
    "ScenarioSpec",
    "TelemetrySpec",
    "World",
    "build_pool_scenario",
    "build_population_scenario",
    "degraded_network_scenario",
    "e2_grid_base_spec",
    "figure1_scenario",
    "get_path",
    "get_spec_preset",
    "hierarchy_population_spec",
    "hierarchy_scenario",
    "hierarchy_spec",
    "large_scale_scenario",
    "lossy_network_scenario",
    "materialize",
    "pool_spec",
    "population_spec",
    "set_path",
]
