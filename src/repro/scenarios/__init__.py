"""Scenario builders: assembled simulated worlds for experiments.

A *scenario* wires together the substrates — topology, DNS tree, DoH
providers, NTP pool, client — into the system of the paper's Figure 1,
parameterised by provider count, pool size, attacker placement, and so
on. Tests, examples and benchmarks all build their worlds here so that
experiment code stays declarative.
"""

from repro.scenarios.builders import PoolScenario, build_pool_scenario
from repro.scenarios.workload import PoolDirectory
from repro.scenarios.presets import (
    degraded_network_scenario,
    figure1_scenario,
    large_scale_scenario,
    lossy_network_scenario,
)

__all__ = [
    "PoolScenario",
    "build_pool_scenario",
    "PoolDirectory",
    "degraded_network_scenario",
    "figure1_scenario",
    "large_scale_scenario",
    "lossy_network_scenario",
]
