"""Workload definitions: the NTP server pool behind the DNS name.

:class:`PoolDirectory` models pool.ntp.org's behaviour: a large
population of volunteer servers from which each DNS query draws a small
rotating sample. The directory tracks which members are benign and which
were enrolled by an attacker (§IV of the paper: "attackers can try to
join the NTP pool themselves"), so experiments can measure the benign
fraction of any generated pool.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.dns.rdata import Rdata, address_rdata
from repro.netsim.address import IPAddress
from repro.util.validation import check_positive


class PoolDirectory:
    """The population of pool servers behind one DNS name.

    :param benign: addresses of honestly operated servers.
    :param malicious: addresses of attacker-enrolled servers (often
        empty; the paper's DNS-layer guarantee is about resolver-side
        poisoning, but §IV's pool-joining attack needs these).
    :param answers_per_query: how many addresses one DNS answer carries
        (pool.ntp.org returns 4 by default).
    :param rng: drives the per-query rotation.
    """

    def __init__(self, benign: Sequence["IPAddress | str"],
                 malicious: Sequence["IPAddress | str"] = (),
                 answers_per_query: int = 4,
                 rng: "random.Random | None" = None) -> None:
        check_positive(answers_per_query, "answers_per_query")
        self._benign = [IPAddress(a) for a in benign]
        self._malicious = [IPAddress(a) for a in malicious]
        if not self._benign and not self._malicious:
            raise ValueError("pool directory cannot be empty")
        self._answers_per_query = answers_per_query
        self._rng = rng or random.Random(0)
        self._queries_answered = 0

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------

    @property
    def benign(self) -> List[IPAddress]:
        return list(self._benign)

    @property
    def malicious(self) -> List[IPAddress]:
        return list(self._malicious)

    @property
    def members(self) -> List[IPAddress]:
        return self._benign + self._malicious

    @property
    def answers_per_query(self) -> int:
        return self._answers_per_query

    @property
    def queries_answered(self) -> int:
        return self._queries_answered

    def is_benign(self, address: "IPAddress | str") -> bool:
        return IPAddress(address) in self._benign

    def benign_fraction(self, addresses: Sequence["IPAddress | str"]) -> float:
        """Fraction of ``addresses`` that are benign members.

        Duplicates count individually — the paper (§IV) requires the
        application to treat repeated addresses as distinct servers.
        """
        if not addresses:
            raise ValueError("cannot score an empty address pool")
        benign_count = sum(1 for a in addresses if self.is_benign(a))
        return benign_count / len(addresses)

    def enroll_malicious(self, address: "IPAddress | str") -> None:
        """Model §IV's attack: a malicious server joins the pool."""
        self._malicious.append(IPAddress(address))

    # ------------------------------------------------------------------
    # DNS integration.
    # ------------------------------------------------------------------

    def sample(self, family: "int | None" = None) -> List[IPAddress]:
        """One rotation: a uniform sample of the membership.

        :param family: restrict to IPv4 (4) or IPv6 (6) members; None
            samples across both (dual-stack pools keep per-family zones,
            so the DNS integration always passes a family).
        """
        population = self.members
        if family is not None:
            population = [a for a in population if a.family == family]
        if not population:
            return []
        count = min(self._answers_per_query, len(population))
        return self._rng.sample(population, count)

    def record_provider(self, family: int = 4) -> Callable[[], List[Rdata]]:
        """A zone record provider serving one fresh rotation per query."""

        def provide() -> List[Rdata]:
            self._queries_answered += 1
            return [address_rdata(address) for address in self.sample(family)]

        return provide
