"""Named scenario presets used across examples and benchmarks.

Every preset is a thin shim over the spec layer: it builds a
:class:`repro.scenarios.spec.ScenarioSpec` (exposed via the ``*_spec``
companions, so campaigns can sweep a preset's spec directly) and
compiles it with :func:`repro.scenarios.spec.materialize`.
"""

from __future__ import annotations

import inspect
from dataclasses import replace

from typing import Optional

from repro.core.errors import UnknownPresetError
from repro.netsim.link import LinkProfile
from repro.scenarios.builders import PoolScenario
from repro.scenarios.spec import (
    AttackSpec,
    FaultSpec,
    HierarchySpec,
    LinkSpec,
    ResolverSpec,
    ScenarioSpec,
    materialize,
    pool_spec,
    population_spec,
    set_path,
)

#: The patient retry configuration the degraded/lossy presets use.
_PATIENT_RESOLVER = ResolverSpec(query_timeout=1.0,
                                 max_retries_per_server=3)


def figure1_spec() -> ScenarioSpec:
    """Exactly the paper's Figure 1: three named DoH providers,
    pool.ntp.org served by c/d/e.ntpns.org."""
    return pool_spec(num_providers=3, pool_size=20, answers_per_query=4)


def figure1_scenario(seed: int = 1) -> PoolScenario:
    return materialize(figure1_spec(), seed)


def large_scale_spec(num_providers: int, pool_size: int = 100) -> ScenarioSpec:
    """A larger deployment for the N-sweeps of §III."""
    return pool_spec(num_providers=num_providers, pool_size=pool_size,
                     answers_per_query=4)


def large_scale_scenario(num_providers: int, seed: int = 1,
                         pool_size: int = 100) -> PoolScenario:
    return materialize(large_scale_spec(num_providers, pool_size), seed)


def lossy_network_spec(loss: float) -> ScenarioSpec:
    """Figure 1 with a degraded client access link, for robustness and
    DoS-cost experiments (E6)."""
    spec = pool_spec(num_providers=3, pool_size=20,
                     access_link=LinkProfile.lossy(loss))
    return replace(spec, provider=replace(spec.provider,
                                          resolver=_PATIENT_RESOLVER))


def lossy_network_scenario(loss: float, seed: int = 1) -> PoolScenario:
    return materialize(lossy_network_spec(loss), seed)


def degraded_network_spec(loss_rate: float = 0.0, jitter_s: float = 0.0,
                          reorder_window: float = 0.0,
                          duplicate_rate: float = 0.0) -> ScenarioSpec:
    """Figure 1 with a :class:`repro.netsim.link.FaultModel` on the
    client access link. The fault knobs are the campaign grid axes the
    availability experiments sweep (E6's ``loss_rate``, plus jitter,
    reordering and duplication); resolvers keep the patient retry
    configuration of :func:`lossy_network_spec`."""
    spec = pool_spec(num_providers=3, pool_size=20)
    return replace(
        spec,
        network=replace(spec.network,
                        fault=FaultSpec(loss_rate=loss_rate,
                                        jitter_s=jitter_s,
                                        reorder_window=reorder_window,
                                        duplicate_rate=duplicate_rate)),
        provider=replace(spec.provider, resolver=_PATIENT_RESOLVER))


def degraded_network_scenario(loss_rate: float = 0.0, jitter_s: float = 0.0,
                              reorder_window: float = 0.0,
                              duplicate_rate: float = 0.0,
                              seed: int = 1) -> PoolScenario:
    return materialize(
        degraded_network_spec(loss_rate=loss_rate, jitter_s=jitter_s,
                              reorder_window=reorder_window,
                              duplicate_rate=duplicate_rate), seed)


def custom_scenario(seed: int = 1, **kwargs) -> PoolScenario:
    """The fully parameterised single-client world: every keyword of
    :func:`repro.scenarios.spec.pool_spec` is accepted."""
    return materialize(pool_spec(**kwargs), seed)


# Mirror pool_spec's surface so campaign grids can validate their
# parameters against this preset's signature (see
# repro.campaign.trials._reject_unknown_params).
custom_scenario.__signature__ = inspect.Signature(
    [inspect.Parameter("seed", inspect.Parameter.POSITIONAL_OR_KEYWORD,
                       default=1)]
    + list(inspect.signature(pool_spec).parameters.values()))


# ----------------------------------------------------------------------
# Spec-valued presets (the grid/exemplar surface).
#
# Unlike the ``*_scenario`` builders above, these return the *spec*
# itself, so benchmarks, ``--smoke`` grids and examples can share one
# canonical base spec by name instead of re-deriving it inline.
# ----------------------------------------------------------------------

#: Forged answers the documentation block provides, one per answer slot
#: of the E2 base spec (kept in lockstep with ``_default_forged``).
_E2_FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))


def e2_grid_base_spec() -> ScenarioSpec:
    """The base spec of the E2 grid (``bench_e2_required_fraction``):
    a 40-server pool with an explicit :class:`ResolverSpec` and access
    :class:`LinkSpec` so the campaign can sweep ``provider.count`` ×
    ``provider.corrupted`` × ``network.access.latency`` directly."""
    spec = pool_spec(pool_size=40, answers_per_query=4)
    spec = set_path(spec, "provider.resolver", ResolverSpec())
    spec = set_path(spec, "provider.forged", _E2_FORGED)
    return set_path(spec, "network.access", LinkSpec())


def hierarchy_spec(pool_size: int = 20, answers_per_query: int = 4,
                   pool_ttl: int = 60,
                   hierarchy: Optional[HierarchySpec] = None,
                   **kwargs) -> ScenarioSpec:
    """Figure 1 with iterative resolution: the providers' recursors
    walk a real root→TLD→authoritative referral chain (the
    :class:`~repro.dns.hierarchy.HierarchySpec` tree) instead of the
    legacy flat forwarding layout."""
    spec = pool_spec(pool_size=pool_size,
                     answers_per_query=answers_per_query,
                     pool_ttl=pool_ttl, **kwargs)
    return replace(spec, provider=replace(
        spec.provider,
        resolver=ResolverSpec(mode="iterative",
                              hierarchy=hierarchy or HierarchySpec())))


def hierarchy_scenario(seed: int = 1, **kwargs) -> PoolScenario:
    return materialize(hierarchy_spec(**kwargs), seed)


def hierarchy_population_spec(
    num_clients: int = 50,
    rounds: int = 3,
    pool_ttl: int = 60,
    spray_rate: float = 0.0,
    spray_duration: float = 60.0,
    txid_bits: int = 6,
    covered_bits: int = 6,
    port_window: int = 2,
    forged: tuple = ("203.0.113.66",),
    hierarchy: Optional[HierarchySpec] = None,
    **kwargs,
) -> ScenarioSpec:
    """A measured population over the iterative hierarchy with an
    off-path sprayer racing provider 0's upstream queries.

    Providers serve plain DNS (the UDP fleet transport) and run
    deliberately weakened recursors — ``txid_bits``-wide transaction
    IDs, sequential ephemeral ports once the sprayer installs — the
    paper's historical-stack entropy assumptions.  ``pool_ttl`` and
    ``spray_rate`` are the exposure-window axes ``bench_h1`` sweeps
    (as ``pool.ttl`` and ``attacks[0].rate``); ``spray_rate=0`` keeps
    the attacker passive so the same world doubles as the unattacked
    baseline.
    """
    spec = population_spec(num_clients=num_clients, rounds=rounds,
                           pool_ttl=pool_ttl, **kwargs)
    spec = replace(spec, provider=replace(
        spec.provider, serve="dns",
        resolver=ResolverSpec(mode="iterative", txid_bits=txid_bits,
                              hierarchy=hierarchy or HierarchySpec())))
    attack = AttackSpec.of(
        "offpath", rate=spray_rate, duration=spray_duration,
        covered_bits=covered_bits, port_window=port_window,
        forged=tuple(str(a) for a in forged))
    return replace(spec, attacks=(attack,))


#: Spec-valued preset registry: name -> builder returning a
#: :class:`ScenarioSpec` (separate from :data:`PRESETS`, whose builders
#: return compiled worlds).
SPEC_PRESETS = {
    "figure1": figure1_spec,
    "large-scale": large_scale_spec,
    "lossy-network": lossy_network_spec,
    "degraded-network": degraded_network_spec,
    "e2-grid-base": e2_grid_base_spec,
    "hierarchy": hierarchy_spec,
    "hierarchy-population": hierarchy_population_spec,
    "custom": pool_spec,
}


def get_spec_preset(name: str):
    """Look up a *spec* builder by registry name.

    >>> get_spec_preset("hierarchy") is hierarchy_spec
    True

    Raises :class:`repro.core.errors.UnknownPresetError` listing the
    valid names for anything else.
    """
    try:
        return SPEC_PRESETS[name]
    except KeyError:
        raise UnknownPresetError(name, SPEC_PRESETS) from None


# ----------------------------------------------------------------------
# Registry (used by the campaign engine to reference presets by name,
# so grid parameters stay plain picklable strings).
# ----------------------------------------------------------------------

PRESETS = {
    "figure1": figure1_scenario,
    "large-scale": large_scale_scenario,
    "lossy-network": lossy_network_scenario,
    "degraded-network": degraded_network_scenario,
    "custom": custom_scenario,
}


def get_preset(name: str):
    """Look up a scenario builder by registry name.

    >>> get_preset("figure1") is figure1_scenario
    True

    Raises :class:`repro.core.errors.UnknownPresetError` (a
    ``ValueError``) listing the valid names for anything else.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise UnknownPresetError(name, PRESETS) from None
