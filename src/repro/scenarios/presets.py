"""Named scenario presets used across examples and benchmarks.

Every preset is a thin shim over the spec layer: it builds a
:class:`repro.scenarios.spec.ScenarioSpec` (exposed via the ``*_spec``
companions, so campaigns can sweep a preset's spec directly) and
compiles it with :func:`repro.scenarios.spec.materialize`.
"""

from __future__ import annotations

import inspect
from dataclasses import replace

from repro.core.errors import UnknownPresetError
from repro.netsim.link import LinkProfile
from repro.scenarios.builders import PoolScenario
from repro.scenarios.spec import (
    FaultSpec,
    LinkSpec,
    ResolverSpec,
    ScenarioSpec,
    materialize,
    pool_spec,
)

#: The patient retry configuration the degraded/lossy presets use.
_PATIENT_RESOLVER = ResolverSpec(query_timeout=1.0,
                                 max_retries_per_server=3)


def figure1_spec() -> ScenarioSpec:
    """Exactly the paper's Figure 1: three named DoH providers,
    pool.ntp.org served by c/d/e.ntpns.org."""
    return pool_spec(num_providers=3, pool_size=20, answers_per_query=4)


def figure1_scenario(seed: int = 1) -> PoolScenario:
    return materialize(figure1_spec(), seed)


def large_scale_spec(num_providers: int, pool_size: int = 100) -> ScenarioSpec:
    """A larger deployment for the N-sweeps of §III."""
    return pool_spec(num_providers=num_providers, pool_size=pool_size,
                     answers_per_query=4)


def large_scale_scenario(num_providers: int, seed: int = 1,
                         pool_size: int = 100) -> PoolScenario:
    return materialize(large_scale_spec(num_providers, pool_size), seed)


def lossy_network_spec(loss: float) -> ScenarioSpec:
    """Figure 1 with a degraded client access link, for robustness and
    DoS-cost experiments (E6)."""
    spec = pool_spec(num_providers=3, pool_size=20,
                     access_link=LinkProfile.lossy(loss))
    return replace(spec, provider=replace(spec.provider,
                                          resolver=_PATIENT_RESOLVER))


def lossy_network_scenario(loss: float, seed: int = 1) -> PoolScenario:
    return materialize(lossy_network_spec(loss), seed)


def degraded_network_spec(loss_rate: float = 0.0, jitter_s: float = 0.0,
                          reorder_window: float = 0.0,
                          duplicate_rate: float = 0.0) -> ScenarioSpec:
    """Figure 1 with a :class:`repro.netsim.link.FaultModel` on the
    client access link. The fault knobs are the campaign grid axes the
    availability experiments sweep (E6's ``loss_rate``, plus jitter,
    reordering and duplication); resolvers keep the patient retry
    configuration of :func:`lossy_network_spec`."""
    spec = pool_spec(num_providers=3, pool_size=20)
    return replace(
        spec,
        network=replace(spec.network,
                        fault=FaultSpec(loss_rate=loss_rate,
                                        jitter_s=jitter_s,
                                        reorder_window=reorder_window,
                                        duplicate_rate=duplicate_rate)),
        provider=replace(spec.provider, resolver=_PATIENT_RESOLVER))


def degraded_network_scenario(loss_rate: float = 0.0, jitter_s: float = 0.0,
                              reorder_window: float = 0.0,
                              duplicate_rate: float = 0.0,
                              seed: int = 1) -> PoolScenario:
    return materialize(
        degraded_network_spec(loss_rate=loss_rate, jitter_s=jitter_s,
                              reorder_window=reorder_window,
                              duplicate_rate=duplicate_rate), seed)


def custom_scenario(seed: int = 1, **kwargs) -> PoolScenario:
    """The fully parameterised single-client world: every keyword of
    :func:`repro.scenarios.spec.pool_spec` is accepted."""
    return materialize(pool_spec(**kwargs), seed)


# Mirror pool_spec's surface so campaign grids can validate their
# parameters against this preset's signature (see
# repro.campaign.trials._reject_unknown_params).
custom_scenario.__signature__ = inspect.Signature(
    [inspect.Parameter("seed", inspect.Parameter.POSITIONAL_OR_KEYWORD,
                       default=1)]
    + list(inspect.signature(pool_spec).parameters.values()))


# ----------------------------------------------------------------------
# Registry (used by the campaign engine to reference presets by name,
# so grid parameters stay plain picklable strings).
# ----------------------------------------------------------------------

PRESETS = {
    "figure1": figure1_scenario,
    "large-scale": large_scale_scenario,
    "lossy-network": lossy_network_scenario,
    "degraded-network": degraded_network_scenario,
    "custom": custom_scenario,
}


def get_preset(name: str):
    """Look up a scenario builder by registry name.

    >>> get_preset("figure1") is figure1_scenario
    True

    Raises :class:`repro.core.errors.UnknownPresetError` (a
    ``ValueError``) listing the valid names for anything else.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise UnknownPresetError(name, PRESETS) from None
