"""Named scenario presets used across examples and benchmarks."""

from __future__ import annotations

from repro.dns.resolver import ResolverConfig
from repro.netsim.link import LinkProfile
from repro.scenarios.builders import PoolScenario, build_pool_scenario


def figure1_scenario(seed: int = 1) -> PoolScenario:
    """Exactly the paper's Figure 1: three named DoH providers,
    pool.ntp.org served by c/d/e.ntpns.org."""
    return build_pool_scenario(seed=seed, num_providers=3, pool_size=20,
                               answers_per_query=4)


def large_scale_scenario(num_providers: int, seed: int = 1,
                         pool_size: int = 100) -> PoolScenario:
    """A larger deployment for the N-sweeps of §III."""
    return build_pool_scenario(seed=seed, num_providers=num_providers,
                               pool_size=pool_size, answers_per_query=4)


def lossy_network_scenario(loss: float, seed: int = 1) -> PoolScenario:
    """Figure 1 with a degraded client access link, for robustness and
    DoS-cost experiments (E6)."""
    return build_pool_scenario(
        seed=seed, num_providers=3, pool_size=20,
        access_link=LinkProfile.lossy(loss),
        resolver_config=ResolverConfig(query_timeout=1.0,
                                       max_retries_per_server=3),
    )


def degraded_network_scenario(loss_rate: float = 0.0, jitter_s: float = 0.0,
                              reorder_window: float = 0.0,
                              duplicate_rate: float = 0.0,
                              seed: int = 1) -> PoolScenario:
    """Figure 1 with a :class:`repro.netsim.link.FaultModel` on the
    client access link. The fault knobs are the campaign grid axes the
    availability experiments sweep (E6's ``loss_rate``, plus jitter,
    reordering and duplication); resolvers keep the patient retry
    configuration of :func:`lossy_network_scenario`."""
    return build_pool_scenario(
        seed=seed, num_providers=3, pool_size=20,
        loss_rate=loss_rate, jitter_s=jitter_s,
        reorder_window=reorder_window, duplicate_rate=duplicate_rate,
        resolver_config=ResolverConfig(query_timeout=1.0,
                                       max_retries_per_server=3),
    )


# ----------------------------------------------------------------------
# Registry (used by the campaign engine to reference presets by name,
# so grid parameters stay plain picklable strings).
# ----------------------------------------------------------------------

PRESETS = {
    "figure1": figure1_scenario,
    "large-scale": large_scale_scenario,
    "lossy-network": lossy_network_scenario,
    "degraded-network": degraded_network_scenario,
    "custom": build_pool_scenario,
}


def get_preset(name: str):
    """Look up a scenario builder by registry name.

    >>> get_preset("figure1") is figure1_scenario
    True
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario preset {name!r}; "
            f"known: {sorted(PRESETS)}") from None
