"""Assembly of the paper's Figure 1 world.

``build_pool_scenario`` constructs, inside one deterministic simulation:

* the global backbone topology;
* the DNS tree: root → org → ntp.org, with the pool zone served by
  three nameservers (``c/d/e.ntpns.org``, as in Figure 1);
* N DoH providers (dns.google / cloudflare-dns.com / dns.quad9.net for
  N ≤ 3, synthetic ones beyond), each a host running a recursive
  resolver plus a DoH front-end with a CA-issued certificate;
* the NTP pool membership (:class:`repro.scenarios.workload.PoolDirectory`)
  behind ``pool.ntp.org`` with per-query rotation;
* a client host with the CA in its trust store.

Everything derives from one root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dns.name import Name
from repro.dns.rdata import ARdata, NSRdata
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.doh.providers import (
    FIGURE1_PROVIDERS,
    DoHProviderProfile,
    ProviderDeployment,
    deploy_provider,
    synthetic_profiles,
)
from repro.doh.tls import CertificateAuthority, TrustStore
from repro.netsim.address import IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import FaultModel, LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.scenarios.workload import PoolDirectory
from repro.util.rng import RngRegistry

POOL_DOMAIN = Name("pool.ntp.org")

# Infrastructure addresses (stable across scenarios for debuggability).
ROOT_NS_ADDRESS = "10.0.0.1"
ORG_NS_ADDRESS = "10.0.0.2"
NTP_NS_ADDRESSES = {
    "c.ntpns.org": "10.0.0.11",
    "d.ntpns.org": "10.0.0.12",
    "e.ntpns.org": "10.0.0.13",
}
CLIENT_ADDRESS = "10.99.0.1"


@dataclass
class PoolScenario:
    """A fully wired Figure 1 world."""

    seed: int
    simulator: Simulator
    internet: Internet
    rng: RngRegistry
    client: Host
    providers: List[ProviderDeployment]
    authority: CertificateAuthority
    trust_store: TrustStore
    directory: PoolDirectory
    pool_domain: Name = POOL_DOMAIN
    pool_zone: Zone = None
    dns_servers: Dict[str, AuthoritativeServer] = field(default_factory=dict)
    root_hints: List = field(default_factory=list)
    access_fault: Optional[FaultModel] = None  # installed on the client edge

    @property
    def provider_endpoints(self) -> List:
        return [deployment.endpoint for deployment in self.providers]

    def run(self, until: Optional[float] = None) -> None:
        """Drain the simulation (convenience passthrough)."""
        self.simulator.run(until=until)

    # ------------------------------------------------------------------
    # Core-layer conveniences (import locally to avoid layering cycles).
    # ------------------------------------------------------------------

    def make_resolver_set(self, assumed_secure_fraction: float = 0.5):
        """A :class:`repro.core.ResolverSet` over this scenario's
        providers."""
        from repro.core.resolverset import ResolverRef, ResolverSet
        refs = [ResolverRef(name=deployment.name,
                            endpoint=deployment.endpoint)
                for deployment in self.providers]
        return ResolverSet(refs, assumed_secure_fraction)

    def make_doh_client(self, stream: str = "doh-client", method: str = "GET",
                        timeout: float = 4.0, retries: int = 2):
        """A :class:`repro.doh.DoHClient` on this scenario's client."""
        from repro.doh.client import DoHClient
        return DoHClient(self.client, self.simulator, self.trust_store,
                         rng=self.rng.stream(stream), method=method,
                         timeout=timeout, retries=retries)

    def make_generator(self, config=None, assumed_secure_fraction: float = 0.5,
                       method: str = "GET", timeout: float = 4.0,
                       retries: int = 2):
        """A ready-to-use :class:`repro.core.SecurePoolGenerator`."""
        from repro.core.pool import SecurePoolGenerator
        return SecurePoolGenerator(
            self.make_doh_client(method=method, timeout=timeout,
                                 retries=retries),
            self.make_resolver_set(assumed_secure_fraction),
            self.simulator, config)

    def generate_pool_sync(self, generator=None, domain: Optional[str] = None):
        """Run one Algorithm 1 generation to completion and return it."""
        engine = generator or self.make_generator()
        results: List = []
        engine.generate(domain or self.pool_domain.to_text(), results.append)
        self.simulator.run()
        if len(results) != 1:
            raise RuntimeError("pool generation did not complete")
        return results[0]


@dataclass
class PopulationScenario:
    """A Figure 1 world plus a measured client population.

    Wraps the :class:`PoolScenario` with the server fleet behind the
    pool name, an optional provider compromise, and a
    :class:`repro.population.ClientFleet` whose outcomes stream into
    ``telemetry``.
    """

    pool: PoolScenario
    fleet: "ClientFleet"            # noqa: F821 - forward ref (see below)
    ntp_fleet: "NtpFleet"           # noqa: F821
    telemetry: "MetricsRegistry"    # noqa: F821
    attacker_addresses: List[IPAddress] = field(default_factory=list)

    @property
    def simulator(self) -> Simulator:
        return self.pool.simulator

    @property
    def internet(self) -> Internet:
        return self.pool.internet

    def run(self, max_events: int = 5_000_000):
        """Drive the whole population to completion; returns the
        :class:`repro.population.PopulationOutcomes`."""
        return self.fleet.run(max_events=max_events)

    def outcomes(self):
        return self.fleet.outcomes()


def build_population_scenario(
    seed: int = 1,
    num_clients: int = 50,
    rounds: int = 3,
    mean_interval: float = 16.0,
    arrival: str = "periodic",
    resolve_every: int = 1,
    churn_rate: float = 0.0,
    rejoin_delay: float = 30.0,
    min_answers: Optional[int] = None,
    corrupted: int = 0,
    behavior: str = "substitute",
    forged: tuple = (),
    lie_offset: float = 10.0,
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    initial_clock_error: float = 0.050,
    shift_threshold: float = 1.0,
    time_bin: float = 10.0,
    registry=None,
) -> PopulationScenario:
    """Build the population world: Figure 1's infrastructure, the NTP
    server fleet behind the pool name (attacker servers included), an
    optional provider compromise, and ``num_clients`` resolve→sync
    clients driven by ``arrival``/``churn_rate`` processes.

    Every component is constructed under one fresh (or caller-supplied)
    :class:`~repro.telemetry.MetricsRegistry`, so transport, network
    and population metrics for this world land in one place and nothing
    leaks across scenarios. All parameters are plain scalars/tuples —
    the signature doubles as the campaign grid surface for
    :func:`repro.campaign.trials.population_trial`.
    """
    # Imported here: scenarios is imported by the attack/population
    # layers themselves, so module-level imports would cycle.
    from repro.attacks.compromise import (
        CompromiseConfig,
        CompromisedResolverBehavior,
        corrupt_first_k,
    )
    from repro.ntp.pool import deploy_ntp_fleet
    from repro.population.fleet import ClientFleet, FleetConfig
    from repro.telemetry.registry import MetricsRegistry, use_registry

    if not 0 <= corrupted <= num_providers:
        raise ValueError(
            f"corrupted must be in [0, {num_providers}], got {corrupted}")
    if min_answers is not None and not 1 <= min_answers <= num_providers:
        raise ValueError(
            f"min_answers must be in [1, {num_providers}] or None, "
            f"got {min_answers}")
    behavior = (behavior if isinstance(behavior, CompromisedResolverBehavior)
                else CompromisedResolverBehavior(behavior))
    forged_list = [IPAddress(a) for a in forged]
    needs_addresses = corrupted > 0 and behavior in (
        CompromisedResolverBehavior.SUBSTITUTE,
        CompromisedResolverBehavior.INFLATE)
    if needs_addresses and not forged_list:
        forged_list = [IPAddress(f"203.0.113.{i + 1}")
                       for i in range(answers_per_query)]

    registry = registry or MetricsRegistry()
    with use_registry(registry):
        pool_scenario = build_pool_scenario(
            seed=seed, num_providers=num_providers, pool_size=pool_size,
            answers_per_query=answers_per_query, pool_ttl=pool_ttl,
            loss_rate=loss_rate, jitter_s=jitter_s,
            reorder_window=reorder_window, duplicate_rate=duplicate_rate)
        # Population access edges: one per backbone region, so the
        # fleet keeps geographic spread while *every* client's traffic
        # crosses a link carrying the scenario's access fault — the
        # fault axes degrade the whole population, not just the single
        # Figure 1 client's edge.
        topology = pool_scenario.internet.topology
        regions = [node for node in topology.nodes
                   if not node.endswith("-edge")]
        access_nodes = []
        for region in regions:
            node = f"pop-edge-{region}"
            topology.add_link(node, region, LinkProfile.metro())
            if pool_scenario.access_fault is not None:
                topology.set_fault_model(node, region,
                                         pool_scenario.access_fault)
            access_nodes.append(node)
        if corrupted:
            corrupt_first_k(
                pool_scenario.providers, corrupted,
                CompromiseConfig(target=pool_scenario.pool_domain,
                                 behavior=behavior,
                                 forged_addresses=forged_list))
        # Servers stay on the backbone regions: a pool server co-located
        # on a population access edge would let its clients sync without
        # ever crossing the faulted access link.
        ntp_fleet = deploy_ntp_fleet(
            pool_scenario.internet, pool_scenario.directory,
            pool_scenario.rng, regions=regions,
            malicious_lie_offset=lie_offset,
            extra_addresses=forged_list)
        attackers = forged_list + pool_scenario.directory.malicious
        fleet = ClientFleet(
            pool_scenario.internet,
            [deployment.address for deployment in pool_scenario.providers],
            pool_scenario.pool_domain, pool_scenario.rng,
            nodes=access_nodes,
            config=FleetConfig(
                num_clients=num_clients, rounds=rounds,
                mean_interval=mean_interval, arrival=arrival,
                resolve_every=resolve_every, churn_rate=churn_rate,
                rejoin_delay=rejoin_delay, min_answers=min_answers,
                initial_clock_error=initial_clock_error,
                shift_threshold=shift_threshold, time_bin=time_bin),
            attacker_addresses=attackers, registry=registry)
    return PopulationScenario(pool=pool_scenario, fleet=fleet,
                              ntp_fleet=ntp_fleet, telemetry=registry,
                              attacker_addresses=attackers)


def _make_benign_pool(pool_size: int, dual_stack: bool) -> List[str]:
    addresses = [f"172.16.{index // 250}.{index % 250 + 1}"
                 for index in range(pool_size)]
    if dual_stack:
        addresses += [f"fd00:a17e::{index + 1:x}" for index in range(pool_size)]
    return addresses


def build_pool_scenario(
    seed: int = 1,
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    dual_stack: bool = False,
    profiles: Optional[List[DoHProviderProfile]] = None,
    resolver_config: Optional[ResolverConfig] = None,
    access_link: Optional[LinkProfile] = None,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    fault_model: Optional[FaultModel] = None,
) -> PoolScenario:
    """Build the Figure 1 world. See module docstring for contents.

    The ``loss_rate`` / ``jitter_s`` / ``reorder_window`` /
    ``duplicate_rate`` knobs (or a whole ``fault_model``, composed with
    them) degrade the *client access link* — the hop every DoH exchange
    crosses — and exist primarily as campaign grid axes for the paper's
    availability experiments (E6). A fault-free build draws nothing
    from the fault streams, so default scenarios stay bit-identical.
    """
    if num_providers < 1:
        raise ValueError("need at least one provider")
    registry = RngRegistry(seed)
    simulator = Simulator()
    topology = Topology.global_backbone(rng_registry=registry)

    # Attach infrastructure edges.
    edge = access_link or LinkProfile.metro()
    topology.add_link("client-edge", "eu-central", edge)
    topology.add_link("dns-root-edge", "us-east", LinkProfile.metro())
    topology.add_link("dns-org-edge", "eu-west", LinkProfile.metro())
    topology.add_link("ntpns-edge", "us-west", LinkProfile.metro())
    access_fault = FaultModel(loss_rate=loss_rate, jitter_s=jitter_s,
                              reorder_window=reorder_window,
                              duplicate_rate=duplicate_rate)
    if fault_model is not None:
        access_fault = access_fault.compose(fault_model)
    if access_fault.active:
        topology.set_fault_model("client-edge", "eu-central", access_fault)
    else:
        access_fault = None
    internet = Internet(simulator, topology, registry)

    # --- DNS tree -----------------------------------------------------
    root_host = internet.add_host(
        Host("a.root-servers.net", "dns-root-edge", [ip(ROOT_NS_ADDRESS)]))
    org_host = internet.add_host(
        Host("a0.org.afilias-nst.info", "dns-org-edge", [ip(ORG_NS_ADDRESS)]))

    root_zone = Zone(".", soa_mname="a.root-servers.net")
    root_zone.add_delegation("org", "a0.org.afilias-nst.info")
    # Out-of-zone NS target needs glue at the root (it lives under
    # .info in reality; here the root carries the A record directly).
    root_zone.add_record("a0.org.afilias-nst.info", ARdata(ORG_NS_ADDRESS))

    org_zone = Zone("org", soa_mname="a0.org.afilias-nst.info")
    ntpns_hosts = {}
    for ns_name, address in NTP_NS_ADDRESSES.items():
        org_zone.add_delegation("ntp.org", ns_name, glue=[ARdata(address)])
        ntpns_hosts[ns_name] = internet.add_host(
            Host(ns_name, "ntpns-edge", [ip(address)]))
    # ntpns.org itself is a real zone too (its servers' names live there).
    org_zone.add_delegation("ntpns.org", "c.ntpns.org",
                            glue=[ARdata(NTP_NS_ADDRESSES["c.ntpns.org"])])

    directory = PoolDirectory(
        benign=_make_benign_pool(pool_size, dual_stack=dual_stack),
        answers_per_query=answers_per_query,
        rng=registry.stream("pool-rotation"),
    )
    pool_zone = Zone("ntp.org", soa_mname="c.ntpns.org", default_ttl=pool_ttl)
    for ns_name in NTP_NS_ADDRESSES:
        pool_zone.add_record("ntp.org", NSRdata(Name(ns_name)))
    pool_zone.add_provider(POOL_DOMAIN, RRType.A,
                           directory.record_provider(family=4), ttl=pool_ttl)
    if dual_stack:
        pool_zone.add_provider(POOL_DOMAIN, RRType.AAAA,
                               directory.record_provider(family=6),
                               ttl=pool_ttl)

    ntpns_zone = Zone("ntpns.org", soa_mname="c.ntpns.org")
    for ns_name, address in NTP_NS_ADDRESSES.items():
        ntpns_zone.add_record(ns_name, ARdata(address))

    dns_servers = {
        "root": AuthoritativeServer(root_host, [root_zone]),
        "org": AuthoritativeServer(org_host, [org_zone]),
    }
    for ns_name, host in ntpns_hosts.items():
        dns_servers[ns_name] = AuthoritativeServer(host, [pool_zone, ntpns_zone])

    root_hints = [(Name("a.root-servers.net"), IPAddress(ROOT_NS_ADDRESS))]

    # --- DoH providers -------------------------------------------------
    authority = CertificateAuthority("SimRoot CA", registry.stream("ca"))
    if profiles is None:
        if num_providers <= len(FIGURE1_PROVIDERS):
            profiles = FIGURE1_PROVIDERS[:num_providers]
        else:
            profiles = list(FIGURE1_PROVIDERS) + synthetic_profiles(
                num_providers - len(FIGURE1_PROVIDERS),
                regions=["us-west", "us-east", "eu-west", "eu-central",
                         "asia-east", "asia-south"])
    elif len(profiles) != num_providers:
        raise ValueError("profiles length must equal num_providers")
    providers = [
        deploy_provider(internet, profile, authority, root_hints, registry,
                        resolver_config=resolver_config)
        for profile in profiles
    ]

    trust_store = TrustStore([authority])
    client = internet.add_host(
        Host("client", "client-edge", [ip(CLIENT_ADDRESS)],
             rng=registry.stream("client-ports")))

    return PoolScenario(
        seed=seed, simulator=simulator, internet=internet, rng=registry,
        client=client, providers=providers, authority=authority,
        trust_store=trust_store, directory=directory, pool_zone=pool_zone,
        dns_servers=dns_servers, root_hints=root_hints,
        access_fault=access_fault,
    )
