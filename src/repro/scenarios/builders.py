"""The Figure 1 world objects and the legacy builder shims.

The world types live here — :class:`PoolScenario` (one client, the DNS
tree, N DoH providers, the pool directory) and
:class:`PopulationScenario` (the same world plus a measured client
fleet).  Construction moved to the declarative spec layer: describe a
world with :class:`repro.scenarios.spec.ScenarioSpec` and compile it
with :func:`repro.scenarios.spec.materialize`.

``build_pool_scenario`` / ``build_population_scenario`` remain as
deprecated keyword shims: they convert their kwargs into a spec via
:func:`repro.scenarios.spec.pool_spec` /
:func:`~repro.scenarios.spec.population_spec` and materialize it, which
produces bit-identical worlds to the pre-spec builders for the same
seed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dns.name import Name
from repro.dns.resolver import ResolverConfig
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.doh.providers import DoHProviderProfile, ProviderDeployment
from repro.doh.tls import CertificateAuthority, TrustStore
from repro.netsim.address import IPAddress
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import FaultModel, LinkProfile
from repro.netsim.simulator import Simulator
from repro.scenarios.workload import PoolDirectory
from repro.util.rng import RngRegistry

POOL_DOMAIN = Name("pool.ntp.org")

# Infrastructure addresses (stable across scenarios for debuggability).
ROOT_NS_ADDRESS = "10.0.0.1"
ORG_NS_ADDRESS = "10.0.0.2"
NTP_NS_ADDRESSES = {
    "c.ntpns.org": "10.0.0.11",
    "d.ntpns.org": "10.0.0.12",
    "e.ntpns.org": "10.0.0.13",
}
CLIENT_ADDRESS = "10.99.0.1"


@dataclass
class PoolScenario:
    """A fully wired Figure 1 world."""

    seed: int
    simulator: Simulator
    internet: Internet
    rng: RngRegistry
    client: Host
    providers: List[ProviderDeployment]
    authority: CertificateAuthority
    trust_store: TrustStore
    directory: PoolDirectory
    pool_domain: Name = POOL_DOMAIN
    pool_zone: Zone = None
    dns_servers: Dict[str, AuthoritativeServer] = field(default_factory=dict)
    root_hints: List = field(default_factory=list)
    access_fault: Optional[FaultModel] = None  # installed on the client edge
    telemetry: Optional["MetricsRegistry"] = None    # noqa: F821
    attacks: List[Tuple[str, Any]] = field(default_factory=list)
    #: The compiled referral chain for ``mode="iterative"`` worlds (a
    #: :class:`repro.dns.hierarchy.HierarchyDeployment`); None on the
    #: legacy flat tree.
    hierarchy: Optional[Any] = None
    #: The installed :class:`repro.chaos.ChaosController` when the
    #: scenario spec declared a failure timeline; None otherwise.
    chaos: Optional[Any] = None

    @property
    def provider_endpoints(self) -> List:
        return [deployment.endpoint for deployment in self.providers]

    def run(self, until: Optional[float] = None) -> None:
        """Drain the simulation (convenience passthrough)."""
        self.simulator.run(until=until)

    # ------------------------------------------------------------------
    # Core-layer conveniences (import locally to avoid layering cycles).
    # ------------------------------------------------------------------

    def make_resolver_set(self, assumed_secure_fraction: float = 0.5):
        """A :class:`repro.core.ResolverSet` over this scenario's
        providers."""
        from repro.core.resolverset import ResolverRef, ResolverSet
        refs = [ResolverRef(name=deployment.name,
                            endpoint=deployment.endpoint)
                for deployment in self.providers]
        return ResolverSet(refs, assumed_secure_fraction)

    def make_doh_client(self, stream: str = "doh-client", method: str = "GET",
                        timeout: float = 4.0, retries: int = 2):
        """A :class:`repro.doh.DoHClient` on this scenario's client."""
        from repro.doh.client import DoHClient
        return DoHClient(self.client, self.simulator, self.trust_store,
                         rng=self.rng.stream(stream), method=method,
                         timeout=timeout, retries=retries)

    def make_generator(self, config=None, assumed_secure_fraction: float = 0.5,
                       method: str = "GET", timeout: float = 4.0,
                       retries: int = 2):
        """A ready-to-use :class:`repro.core.SecurePoolGenerator`."""
        from repro.core.pool import SecurePoolGenerator
        return SecurePoolGenerator(
            self.make_doh_client(method=method, timeout=timeout,
                                 retries=retries),
            self.make_resolver_set(assumed_secure_fraction),
            self.simulator, config)

    def generate_pool_sync(self, generator=None, domain: Optional[str] = None):
        """Run one Algorithm 1 generation to completion and return it."""
        engine = generator or self.make_generator()
        results: List = []
        engine.generate(domain or self.pool_domain.to_text(), results.append)
        self.simulator.run()
        if len(results) != 1:
            raise RuntimeError("pool generation did not complete")
        return results[0]


@dataclass
class PopulationScenario:
    """A Figure 1 world plus a measured client population.

    Wraps the :class:`PoolScenario` with the server fleet behind the
    pool name, an optional provider compromise, and a
    :class:`repro.population.ClientFleet` whose outcomes stream into
    ``telemetry``.
    """

    pool: PoolScenario
    fleet: "ClientFleet"            # noqa: F821 - forward ref (see below)
    ntp_fleet: "NtpFleet"           # noqa: F821
    telemetry: "MetricsRegistry"    # noqa: F821
    attacker_addresses: List[IPAddress] = field(default_factory=list)
    attacks: List[Tuple[str, Any]] = field(default_factory=list)
    #: The installed :class:`repro.chaos.ChaosController` when the
    #: scenario spec declared a failure timeline; None otherwise.
    chaos: Optional[Any] = None

    @property
    def simulator(self) -> Simulator:
        return self.pool.simulator

    @property
    def internet(self) -> Internet:
        return self.pool.internet

    @property
    def hierarchy(self):
        """The compiled referral chain (iterative worlds), else None."""
        return self.pool.hierarchy

    def run(self, max_events: int = 5_000_000):
        """Drive the whole population to completion; returns the
        :class:`repro.population.PopulationOutcomes`."""
        return self.fleet.run(max_events=max_events)

    def outcomes(self):
        return self.fleet.outcomes()


def _make_benign_pool(pool_size: int, dual_stack: bool) -> List[str]:
    addresses = [f"172.16.{index // 250}.{index % 250 + 1}"
                 for index in range(pool_size)]
    if dual_stack:
        addresses += [f"fd00:a17e::{index + 1:x}" for index in range(pool_size)]
    return addresses


# ----------------------------------------------------------------------
# Deprecated keyword shims over the spec layer.
# ----------------------------------------------------------------------

def build_pool_scenario(
    seed: int = 1,
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    dual_stack: bool = False,
    profiles: Optional[List[DoHProviderProfile]] = None,
    resolver_config: Optional[ResolverConfig] = None,
    access_link: Optional[LinkProfile] = None,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    fault_model: Optional[FaultModel] = None,
) -> PoolScenario:
    """Deprecated: build the Figure 1 world from flat keywords.

    Thin shim over ``materialize(pool_spec(...), seed)`` — construct a
    :class:`repro.scenarios.spec.ScenarioSpec` instead; the compiled
    world is bit-identical for the same seed.
    """
    warnings.warn(
        "build_pool_scenario is deprecated; build a ScenarioSpec with "
        "repro.scenarios.spec.pool_spec(...) and compile it with "
        "materialize(spec, seed)", DeprecationWarning, stacklevel=2)
    from repro.scenarios.spec import materialize, pool_spec
    return materialize(pool_spec(
        num_providers=num_providers, pool_size=pool_size,
        answers_per_query=answers_per_query, dual_stack=dual_stack,
        profiles=profiles, resolver_config=resolver_config,
        access_link=access_link, pool_ttl=pool_ttl, loss_rate=loss_rate,
        jitter_s=jitter_s, reorder_window=reorder_window,
        duplicate_rate=duplicate_rate, fault_model=fault_model), seed)


def build_population_scenario(
    seed: int = 1,
    num_clients: int = 50,
    rounds: int = 3,
    mean_interval: float = 16.0,
    arrival: str = "periodic",
    resolve_every: int = 1,
    churn_rate: float = 0.0,
    rejoin_delay: float = 30.0,
    min_answers: Optional[int] = None,
    corrupted: int = 0,
    behavior: str = "substitute",
    forged: tuple = (),
    lie_offset: float = 10.0,
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    initial_clock_error: float = 0.050,
    shift_threshold: float = 1.0,
    time_bin: float = 10.0,
    registry=None,
) -> PopulationScenario:
    """Deprecated: build the population world from flat keywords.

    Thin shim over ``materialize(population_spec(...), seed)`` — the
    compiled world is bit-identical for the same seed.
    """
    warnings.warn(
        "build_population_scenario is deprecated; build a ScenarioSpec "
        "with repro.scenarios.spec.population_spec(...) and compile it "
        "with materialize(spec, seed)", DeprecationWarning, stacklevel=2)
    from repro.scenarios.spec import materialize, population_spec
    return materialize(population_spec(
        num_clients=num_clients, rounds=rounds, mean_interval=mean_interval,
        arrival=arrival, resolve_every=resolve_every, churn_rate=churn_rate,
        rejoin_delay=rejoin_delay, min_answers=min_answers,
        corrupted=corrupted, behavior=behavior, forged=forged,
        lie_offset=lie_offset, num_providers=num_providers,
        pool_size=pool_size, answers_per_query=answers_per_query,
        pool_ttl=pool_ttl, loss_rate=loss_rate, jitter_s=jitter_s,
        reorder_window=reorder_window, duplicate_rate=duplicate_rate,
        initial_clock_error=initial_clock_error,
        shift_threshold=shift_threshold, time_bin=time_bin),
        seed, registry=registry)
