"""Declarative scenario specifications and their compiler.

The paper's experiments are all variations of one world — DNS resolution
paths feeding NTP pool selection under provider corruption and network
degradation.  A :class:`ScenarioSpec` describes one such world as *data*:
typed, frozen, composable dataclasses with exact JSON round-tripping, so
scenario diversity becomes something the campaign engine can sweep,
cache, and record verbatim in its result files.

The spec tree::

    ScenarioSpec
    ├── network: NetworkSpec          # access link, faults, RegionSpecs
    │     └── regions: (RegionSpec,)  # per-region fleet access edges
    ├── provider: ProviderSpec        # resolver chain, serving, corruption
    ├── pool: PoolSpec                # directory size/ttl, combine policy
    ├── fleet: FleetSpec | None       # population (None = single client)
    ├── attacks: (AttackSpec, ...)    # named installers from repro.attacks
    ├── telemetry: TelemetrySpec      # registry scoping + binning
    └── chaos: ChaosSpec | None       # scheduled failure timeline

Three operations close the loop:

* ``to_dict()`` / ``from_dict()`` / ``to_json()`` — exact, stable
  serialization (``from_dict(to_dict(s)) == s`` for every spec);
* :func:`set_path` / :func:`get_path` — dotted-path access
  (``"fleet.size"``, ``"network.regions[0].link.loss"``) used by
  :meth:`repro.campaign.ParameterGrid.over_spec` to sweep specs;
* :func:`materialize` — the single compiler from a spec (plus a seed)
  to a wired world.  It subsumes the legacy ``build_pool_scenario`` /
  ``build_population_scenario`` builders: a spec produced by
  :func:`pool_spec` / :func:`population_spec` materializes into a
  bit-identical world for the same seed.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.chaos.spec import ChaosSpec
from repro.core.errors import ConfigurationError
from repro.dns.resolver import ResolverConfig
from repro.netsim.link import FaultModel, LinkProfile


# ----------------------------------------------------------------------
# Serialization base (moved to repro.util.specbase so lower layers can
# define specs too; re-exported here for compatibility).
# ----------------------------------------------------------------------

from repro.dns.hierarchy import HierarchySpec  # noqa: E402
from repro.util.specbase import SpecBase, _encode  # noqa: E402, F401


# ----------------------------------------------------------------------
# Network layer.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkSpec(SpecBase):
    """Serializable mirror of :class:`repro.netsim.link.LinkProfile`.

    Defaults match ``LinkProfile.metro()`` — the access-edge profile the
    legacy builders used.
    """

    latency: float = 0.003
    jitter: float = 0.001
    loss: float = 0.0

    def to_profile(self) -> LinkProfile:
        return LinkProfile(latency=self.latency, jitter=self.jitter,
                           loss=self.loss)

    @classmethod
    def from_profile(cls, profile: LinkProfile) -> "LinkSpec":
        return cls(latency=profile.latency, jitter=profile.jitter,
                   loss=profile.loss)


@dataclass(frozen=True)
class FaultSpec(SpecBase):
    """Serializable mirror of :class:`repro.netsim.link.FaultModel`."""

    loss_rate: float = 0.0
    jitter_s: float = 0.0
    reorder_window: float = 0.0
    reorder_rate: float = 0.25
    duplicate_rate: float = 0.0
    duplicate_gap_s: float = 0.002

    @property
    def active(self) -> bool:
        return self.to_model().active

    def to_model(self) -> FaultModel:
        return FaultModel(
            loss_rate=self.loss_rate, jitter_s=self.jitter_s,
            reorder_window=self.reorder_window,
            reorder_rate=self.reorder_rate,
            duplicate_rate=self.duplicate_rate,
            duplicate_gap_s=self.duplicate_gap_s)

    @classmethod
    def from_model(cls, model: FaultModel) -> "FaultSpec":
        return cls(loss_rate=model.loss_rate, jitter_s=model.jitter_s,
                   reorder_window=model.reorder_window,
                   reorder_rate=model.reorder_rate,
                   duplicate_rate=model.duplicate_rate,
                   duplicate_gap_s=model.duplicate_gap_s)


@dataclass(frozen=True)
class RegionSpec(SpecBase):
    """One population access region: a dedicated edge node joined to a
    backbone attachment point by its own (possibly degraded) link."""

    name: str
    attach: str = "eu-central"
    link: LinkSpec = LinkSpec()
    fault: Optional[FaultSpec] = None

    _NESTED = {"link": ("spec", LinkSpec), "fault": ("opt", FaultSpec)}

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("RegionSpec.name must be non-empty")

    @property
    def node(self) -> str:
        """The topology node this region's clients attach to."""
        return f"pop-edge-{self.name}"

    @property
    def link_name(self) -> str:
        """Canonical name of the region's access link."""
        return "--".join(sorted((self.node, self.attach)))


@dataclass(frozen=True)
class NetworkSpec(SpecBase):
    """The world's network shape beyond the fixed global backbone.

    :param access: client access-link profile (``None`` = metro).
        Applies to the single client's edge *and*, in population
        worlds without explicit regions, to every ``pop-edge-*`` link.
    :param fault: imposed degradation on the client access link (the
        E6/R1 sweep axes); inactive by default.
    :param extra_fault: an additional whole :class:`FaultSpec` composed
        on top (mirrors the legacy ``fault_model=`` kwarg).
    :param regions: population access regions.  Empty means the legacy
        layout — one ``pop-edge-<region>`` link per backbone region
        (``access`` profile, metro by default), all carrying the
        access fault.  Non-empty regions get their own heterogeneous
        links/faults instead.
    :param backbone: ``None`` keeps the realistic continental/oceanic
        backbone mix; a :class:`LinkSpec` replaces *every* backbone hop
        with that uniform link (determinism harnesses use a zero-jitter
        profile here so transit draws are shard-invariant).
    """

    access: Optional[LinkSpec] = None
    fault: FaultSpec = FaultSpec()
    extra_fault: Optional[FaultSpec] = None
    regions: Tuple[RegionSpec, ...] = ()
    backbone: Optional[LinkSpec] = None

    _NESTED = {"access": ("opt", LinkSpec), "fault": ("spec", FaultSpec),
               "extra_fault": ("opt", FaultSpec),
               "regions": ("tuple", RegionSpec),
               "backbone": ("opt", LinkSpec)}

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"region names must be unique, got {names}")

    def access_fault_model(self) -> Optional[FaultModel]:
        """The composed client-edge fault, or ``None`` when inactive."""
        model = self.fault.to_model()
        if self.extra_fault is not None:
            model = model.compose(self.extra_fault.to_model())
        return model if model.active else None


# ----------------------------------------------------------------------
# Provider / pool layers.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProfileSpec(SpecBase):
    """Serializable mirror of
    :class:`repro.doh.providers.DoHProviderProfile`."""

    name: str
    region: str
    address: str

    def to_profile(self):
        from repro.doh.providers import DoHProviderProfile
        return DoHProviderProfile(name=self.name, region=self.region,
                                  address=self.address)

    @classmethod
    def from_profile(cls, profile) -> "ProfileSpec":
        return cls(name=profile.name, region=profile.region,
                   address=profile.address)


#: ResolverSpec modes: ``"forwarding"`` (the legacy flat tree — the
#: providers' recursors resolve against the fixed root/org/ntpns
#: layout) or ``"iterative"`` (a :class:`HierarchySpec`-compiled
#: root→TLD→zone tree with instrumented caching recursion).
RESOLVER_MODES = ("forwarding", "iterative")

#: ResolverSpec fields that shape the *world*, not the per-resolver
#: ResolverConfig; excluded from the config mirror round-trip.
_RESOLVER_WORLD_FIELDS = ("mode", "hierarchy")


@dataclass(frozen=True)
class ResolverSpec(SpecBase):
    """Serializable mirror of
    :class:`repro.dns.resolver.ResolverConfig` (same defaults), plus
    the world-level resolution axis: ``mode``/``hierarchy`` pick the
    DNS tree the providers' recursors walk (they never reach the
    per-resolver config).  Both serialize only when non-default, so
    pre-hierarchy spec JSON stays byte-identical.
    """

    query_timeout: float = 2.0
    max_retries_per_server: int = 1
    retry_backoff: float = 1.5
    retry_max_timeout: Optional[float] = 8.0
    max_referral_depth: int = 16
    max_cname_chain: int = 8
    max_ns_resolution_depth: int = 4
    txid_bits: int = 16
    randomize_txid: bool = True
    cache_max_entries: int = 10_000
    negative_ttl_cap: int = 900
    serve_port: int = 53
    mode: str = "forwarding"
    hierarchy: Optional[HierarchySpec] = None

    _NESTED = {"hierarchy": ("opt", HierarchySpec)}

    def __post_init__(self) -> None:
        if self.mode not in RESOLVER_MODES:
            raise ConfigurationError(
                f"resolver mode must be one of {RESOLVER_MODES}, "
                f"got {self.mode!r}")
        if self.hierarchy is not None and self.mode != "iterative":
            raise ConfigurationError(
                "ResolverSpec.hierarchy needs mode='iterative'")

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        if self.mode == "forwarding":
            del data["mode"]
        if self.hierarchy is None:
            del data["hierarchy"]
        return data

    def to_config(self) -> ResolverConfig:
        return ResolverConfig(**{f.name: getattr(self, f.name)
                                 for f in fields(self)
                                 if f.name not in _RESOLVER_WORLD_FIELDS})

    @classmethod
    def from_config(cls, config: ResolverConfig) -> "ResolverSpec":
        return cls(**{f.name: getattr(config, f.name)
                      for f in fields(cls)
                      if f.name not in _RESOLVER_WORLD_FIELDS})


#: ProviderSpec serving modes: full DoH front-end (the default, what
#: ``deploy_provider`` stands up) or recursion engine + plain :53 only.
PROVIDER_SERVE_MODES = ("doh", "dns")

_BEHAVIORS = ("substitute", "inflate", "empty", "truthful")


@dataclass(frozen=True)
class ProviderSpec(SpecBase):
    """The trusted-resolver side: how many providers, what they serve,
    and how many of them the adversary has corrupted.

    :param count: number of providers (Figure 1 names the first three).
    :param profiles: explicit deployments; ``None`` uses Figure 1's
        providers plus synthetic ones beyond three.
    :param resolver: recursion-engine tunables shared by all providers.
    :param serve: ``"doh"`` (TLS identity + DoH front-end + plain :53,
        the legacy deployment) or ``"dns"`` (plain-DNS serving only —
        no certificate, no front-end; cheaper for UDP fleets).
    :param corrupted: how many providers answer pool queries with
        attacker-chosen records (always the first ``corrupted``).
    :param behavior: one of ``substitute``/``inflate``/``empty``/
        ``truthful`` (see :class:`repro.attacks.compromise`).
    :param forged: the attacker's addresses; synthesised from the
        ``203.0.113.0/24`` block at materialization when needed and
        empty.
    :param inflate_to: answer inflation for the ``inflate`` behaviour.
    """

    count: int = 3
    profiles: Optional[Tuple[ProfileSpec, ...]] = None
    resolver: Optional[ResolverSpec] = None
    serve: str = "doh"
    corrupted: int = 0
    behavior: str = "substitute"
    forged: Tuple[str, ...] = ()
    inflate_to: int = 20

    _NESTED = {"profiles": ("opt_tuple", ProfileSpec),
               "resolver": ("opt", ResolverSpec),
               "forged": ("scalars", None)}

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("need at least one provider")
        if self.profiles is not None:
            object.__setattr__(self, "profiles", tuple(self.profiles))
            if len(self.profiles) != self.count:
                raise ValueError("profiles length must equal num_providers")
        object.__setattr__(self, "forged", tuple(self.forged))
        if self.serve not in PROVIDER_SERVE_MODES:
            raise ConfigurationError(
                f"serve must be one of {PROVIDER_SERVE_MODES}, "
                f"got {self.serve!r}")
        if self.behavior not in _BEHAVIORS:
            raise ValueError(
                f"{self.behavior!r} is not a valid "
                f"CompromisedResolverBehavior")
        if not 0 <= self.corrupted <= self.count:
            raise ValueError(
                f"corrupted must be in [0, {self.count}], "
                f"got {self.corrupted}")

_TRUNCATIONS = ("shortest", "median", "none")
_DUAL_STACK_POLICIES = (None, "union", "per-family")


@dataclass(frozen=True)
class PoolSpec(SpecBase):
    """The NTP pool directory behind ``pool.ntp.org`` and the client's
    combination policy over the providers' answers.

    ``min_answers`` / ``truncation`` / ``dual_stack_policy`` govern the
    *single-client* Algorithm 1 generator (population fleets carry
    their quorum on :attr:`FleetSpec.min_answers`).
    """

    size: int = 20
    answers_per_query: int = 4
    ttl: int = 60
    dual_stack: bool = False
    lie_offset: float = 10.0
    truncation: str = "shortest"
    dual_stack_policy: Optional[str] = None
    min_answers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError("pool size must be >= 1")
        if self.answers_per_query < 1:
            raise ConfigurationError("answers_per_query must be >= 1")
        if self.truncation not in _TRUNCATIONS:
            raise ConfigurationError(
                f"truncation must be one of {_TRUNCATIONS}, "
                f"got {self.truncation!r}")
        if self.dual_stack_policy not in _DUAL_STACK_POLICIES:
            raise ConfigurationError(
                f"dual_stack_policy must be one of "
                f"{_DUAL_STACK_POLICIES}, got {self.dual_stack_policy!r}")


# ----------------------------------------------------------------------
# Fleet / telemetry layers.
# ----------------------------------------------------------------------

#: FleetSpec transports: plain-DNS stub queries (cheap, the legacy
#: population path) or per-query DoH with full TLS cost.
FLEET_TRANSPORTS = ("udp", "doh")


@dataclass(frozen=True)
class FleetSpec(SpecBase):
    """A measured client population (see
    :class:`repro.population.ClientFleet`).

    :param size: number of clients.
    :param transport: ``"udp"`` (plain-DNS stub per provider) or
        ``"doh"`` (one TLS-wrapped DoH query per provider per round —
        clients pay the per-query handshake the paper's Table couples
        to the distributed lookup).  ``"doh"`` requires
        ``ProviderSpec.serve == "doh"``.
    :param shards: 1 (the default) runs the whole population in one
        world; K > 1 materializes a
        :class:`repro.population.sharding.ShardedFleet` — K windows of
        the population, each in its own world, executed through the
        campaign executor layer and folded back into one telemetry
        registry (the megafleet path; see the sharding module).
    """

    size: int = 50
    rounds: int = 3
    mean_interval: float = 16.0
    arrival: str = "periodic"
    resolve_every: int = 1
    churn_rate: float = 0.0
    rejoin_delay: float = 30.0
    min_answers: Optional[int] = None
    transport: str = "udp"
    initial_clock_error: float = 0.050
    shift_threshold: float = 1.0
    shards: int = 1

    def __post_init__(self) -> None:
        if self.arrival not in ("periodic", "poisson"):
            raise ConfigurationError(
                f"arrival must be 'periodic' or 'poisson', "
                f"got {self.arrival!r}")
        if self.transport not in FLEET_TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {FLEET_TRANSPORTS}, "
                f"got {self.transport!r}")
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")


@dataclass(frozen=True)
class TelemetrySpec(SpecBase):
    """Registry scoping for the materialized world.

    :param enabled: ``True`` forces a registry, ``False`` forbids one,
        ``None`` (default) follows the legacy rule — population worlds
        get one, single-client worlds do not.
    :param time_bin: bin width (virtual seconds) of the population's
        victim/availability time series.
    """

    enabled: Optional[bool] = None
    time_bin: float = 10.0

    def __post_init__(self) -> None:
        if self.time_bin <= 0:
            raise ConfigurationError("time_bin must be > 0")


# ----------------------------------------------------------------------
# Attacks.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AttackSpec(SpecBase):
    """One named attack from the :data:`ATTACK_INSTALLERS` registry.

    Parameters are a canonical (sorted) tuple of ``(name, value)``
    pairs so specs stay frozen/hashable; build them with
    :meth:`AttackSpec.of` and read them with :meth:`param`.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_INSTALLERS:
            raise ConfigurationError(
                f"unknown attack kind {self.kind!r}; "
                f"known: {sorted(ATTACK_INSTALLERS)}")
        canonical = tuple(sorted(
            (str(name), tuple(value) if isinstance(value, list) else value)
            for name, value in self.params))
        object.__setattr__(self, "params", canonical)

    @classmethod
    def of(cls, kind: str, **params: Any) -> "AttackSpec":
        return cls(kind=kind, params=tuple(params.items()))

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def has_param(self, name: str) -> bool:
        return any(key == name for key, _ in self.params)

    def with_param(self, name: str, value: Any) -> "AttackSpec":
        """A copy with one parameter replaced (or added) — the
        :func:`set_path` surface for sweeping attack knobs."""
        kept = tuple((k, v) for k, v in self.params if k != name)
        return AttackSpec(kind=self.kind, params=kept + ((name, value),))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "params": {name: _encode(value)
                           for name, value in self.params}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSpec":
        params = data.get("params", {})
        return cls(kind=data["kind"], params=tuple(params.items()))


@dataclass
class AttackContext:
    """What an attack installer gets to work with (one built world)."""

    internet: Any
    rng: Any
    pool_domain: Any
    providers: List[Any]
    directory: Any
    access_links: List[str]
    region_links: Dict[str, str] = field(default_factory=dict)
    ntp_fleet: Any = None
    root_hints: List[Any] = field(default_factory=list)

    @property
    def simulator(self):
        return self.internet.simulator

    def links_for(self, attack: AttackSpec) -> List[str]:
        """Resolve an attack's target links: explicit ``links``, one
        region's access link (``at="region:<name>"``), or every access
        link (``at="access"``, the default)."""
        explicit = attack.param("links", ())
        if explicit:
            return list(explicit)
        at = attack.param("at", "access")
        if at == "access":
            return list(self.access_links)
        if isinstance(at, str) and at.startswith("region:"):
            name = at[len("region:"):]
            if name not in self.region_links:
                raise ConfigurationError(
                    f"attack targets unknown region {name!r}; "
                    f"known: {sorted(self.region_links)}")
            return [self.region_links[name]]
        raise ConfigurationError(
            f"attack 'at' must be 'access' or 'region:<name>', got {at!r}")


def _install_compromise(attack: AttackSpec, ctx: AttackContext):
    from repro.attacks.compromise import (
        CompromiseConfig,
        CompromisedResolverBehavior,
        corrupt_first_k,
    )
    forged = [str(a) for a in attack.param("forged", ())]
    behavior = CompromisedResolverBehavior(
        attack.param("behavior", "substitute"))
    return corrupt_first_k(
        ctx.providers, int(attack.param("count", 1)),
        CompromiseConfig(target=ctx.pool_domain, behavior=behavior,
                         forged_addresses=forged,
                         inflate_to=int(attack.param("inflate_to", 20))))


def _install_mitm(attack: AttackSpec, ctx: AttackContext):
    from repro.attacks.mitm import OnPathAttacker
    attacker = OnPathAttacker(ctx.internet, ctx.links_for(attack))
    mode = attack.param("mode", "poison")
    if mode == "poison":
        forged = attack.param("forged", ())
        if not forged:
            raise ConfigurationError("mitm poison mode needs forged=")
        attacker.poison_a_records(ctx.pool_domain, list(forged),
                                  inflate_to=attack.param("inflate_to"))
    elif mode == "empty":
        attacker.empty_a_answers(ctx.pool_domain)
    elif mode == "block-tls":
        attacker.block_tls()
    elif mode == "delay-tls":
        attacker.delay_tls(float(attack.param("delay", 0.5)))
    elif mode == "blackhole":
        attacker.block_everything()
    else:
        raise ConfigurationError(f"unknown mitm mode {mode!r}")
    return attacker


def _install_offpath(attack: AttackSpec, ctx: AttackContext):
    """The off-path poisoner, driven entirely by :class:`AttackSpec`
    data.  With no ``rate`` the installer returns a passive
    :class:`~repro.attacks.offpath.OffPathPoisoner` (the legacy
    behaviour — trial code sprays by hand).  With ``rate > 0`` it
    schedules a :class:`~repro.attacks.offpath.PeriodicSprayer` that
    bursts forged responses at one victim resolver for the run's
    duration; every knob (spray rate, port/TXID entropy assumptions,
    spoofed server, forged addresses) is a sweepable spec field.
    """
    from repro.attacks.offpath import OffPathPoisoner, PeriodicSprayer
    from repro.dns.message import Question
    from repro.dns.rrtype import RRType
    from repro.netsim.address import Endpoint, IPAddress

    node = attack.param("node") or ctx.providers[0].host.node
    poisoner = OffPathPoisoner(ctx.internet, injection_node=node)
    rate = float(attack.param("rate", 0.0))
    if rate <= 0.0:
        return poisoner

    victim = ctx.providers[int(attack.param("victim", 0))]
    track_ports = bool(attack.param("track_ports", True))
    if track_ports:
        # The paper's zero-port-entropy assumption: a victim stack
        # allocating ephemeral ports sequentially, so the attacker's
        # oracle (Host.next_sequential_port) predicts the open socket.
        victim.host.randomize_ports = False
    spoof = attack.param("spoof")
    if spoof is not None:
        spoofed_server = Endpoint(IPAddress(str(spoof)), 53)
    else:
        if not ctx.root_hints:
            raise ConfigurationError(
                "offpath rate-mode needs a spoofable server: no root "
                "hints in context and no spoof= param")
        # The resolver's first hop re-asks the root on every cache
        # miss (referrals are not cached), so racing the root wins
        # the whole resolution.
        spoofed_server = Endpoint(ctx.root_hints[0][1], 53)
    forged = [str(a) for a in attack.param("forged", ())]
    if not forged:
        raise ConfigurationError("offpath rate-mode needs forged= "
                                 "addresses to inject")
    sprayer = PeriodicSprayer(
        poisoner, ctx.simulator, victim.host,
        question=Question(ctx.pool_domain, RRType.A),
        spoofed_server=spoofed_server, forged_addresses=forged,
        rate=rate,
        duration=float(attack.param("duration", 60.0)),
        start=float(attack.param("start", 0.0)),
        port_window=int(attack.param("port_window", 2)),
        covered_bits=int(attack.param("covered_bits", 6)),
        track_ports=track_ports,
        ttl=int(attack.param("ttl", 86_400)))
    sprayer.schedule()
    return sprayer


def _install_timeshift(attack: AttackSpec, ctx: AttackContext):
    if ctx.ntp_fleet is None:
        raise ConfigurationError(
            "timeshift attack needs a population world (deployed NTP "
            "fleet); add a FleetSpec to the scenario")
    count = int(attack.param("count", 1))
    lie_offset = float(attack.param("lie_offset", 10.0))
    corrupted = list(ctx.directory.benign[:count])
    for address in corrupted:
        ctx.ntp_fleet.corrupt(address, lie_offset)
    return corrupted


def _attack_server_addresses(attack: AttackSpec, directory) -> List[str]:
    """Addresses an attack implies count as attacker-serving *before*
    the fleet is built: forged answer targets (which get malicious NTP
    servers deployed behind them) and timeshift-corrupted pool members."""
    if attack.kind == "timeshift":
        count = int(attack.param("count", 1))
        return [str(a) for a in directory.benign[:count]]
    return [str(a) for a in attack.param("forged", ())]


#: The attack registry: spec kind -> installer over a built world.
ATTACK_INSTALLERS: Dict[str, Callable[[AttackSpec, AttackContext], Any]] = {
    "compromise": _install_compromise,
    "mitm": _install_mitm,
    "onpath": _install_mitm,
    "offpath": _install_offpath,
    "timeshift": _install_timeshift,
}


# ----------------------------------------------------------------------
# The scenario spec itself.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """A complete, serializable description of one simulated world."""

    network: NetworkSpec = NetworkSpec()
    provider: ProviderSpec = ProviderSpec()
    pool: PoolSpec = PoolSpec()
    fleet: Optional[FleetSpec] = None
    attacks: Tuple[AttackSpec, ...] = ()
    telemetry: TelemetrySpec = TelemetrySpec()
    chaos: Optional[ChaosSpec] = None

    _NESTED = {"network": ("spec", NetworkSpec),
               "provider": ("spec", ProviderSpec),
               "pool": ("spec", PoolSpec),
               "fleet": ("opt", FleetSpec),
               "attacks": ("tuple", AttackSpec),
               "telemetry": ("spec", TelemetrySpec),
               "chaos": ("opt", ChaosSpec)}

    def to_dict(self) -> Dict[str, Any]:
        # ``chaos`` postdates the committed golden spec fixtures; omit
        # it when absent so chaos-free specs serialize byte-identically
        # to their pre-chaos JSON.
        data = super().to_dict()
        if self.chaos is None:
            del data["chaos"]
        return data

    def __post_init__(self) -> None:
        object.__setattr__(self, "attacks", tuple(self.attacks))
        count = self.provider.count
        if self.fleet is not None and self.fleet.min_answers is not None:
            if not 1 <= self.fleet.min_answers <= count:
                raise ValueError(
                    f"min_answers must be in [1, {count}] or None, "
                    f"got {self.fleet.min_answers}")
        if (self.fleet is not None and self.fleet.transport == "doh"
                and self.provider.serve != "doh"):
            raise ConfigurationError(
                "fleet.transport='doh' needs provider.serve='doh'")
        if self.fleet is None and self.provider.serve != "doh":
            raise ConfigurationError(
                "single-client worlds resolve via DoH; "
                "provider.serve='dns' needs a FleetSpec riding the "
                "plain-DNS transport")


#: What :func:`materialize` returns — a single-client world
#: (:class:`repro.scenarios.builders.PoolScenario`) or a population
#: world (:class:`repro.scenarios.builders.PopulationScenario`).
World = Union["PoolScenario", "PopulationScenario"]  # noqa: F821


# ----------------------------------------------------------------------
# Dotted-path access (the campaign sweep surface).
# ----------------------------------------------------------------------

_TOKEN = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)(\[(\d+)\])?$")


def _split_path(path: str) -> List[Tuple[str, Optional[int]]]:
    steps = []
    for token in path.split("."):
        match = _TOKEN.match(token)
        if match is None:
            raise ConfigurationError(f"malformed spec path {path!r} "
                                     f"(at {token!r})")
        index = match.group(3)
        steps.append((match.group(1), None if index is None else int(index)))
    return steps


def get_path(spec: SpecBase, path: str) -> Any:
    """Read a dotted path, e.g. ``get_path(s, "fleet.size")`` or
    ``get_path(s, "network.regions[0].link.loss")``.  On an
    :class:`AttackSpec` node, a name that is not a dataclass field
    falls through to the attack's parameters (``"attacks[0].rate"``) —
    the surface campaign grids sweep attack knobs with."""
    value: Any = spec
    for attr, index in _split_path(path):
        if not hasattr(value, attr):
            if isinstance(value, AttackSpec) and value.has_param(attr):
                if index is not None:
                    raise ConfigurationError(
                        f"spec path {path!r}: attack params are not "
                        f"indexable")
                value = value.param(attr)
                continue
            raise ConfigurationError(
                f"spec path {path!r}: {type(value).__name__} has no "
                f"field {attr!r}")
        value = getattr(value, attr)
        if index is not None:
            value = value[index]
    return value


def set_path(spec: SpecBase, path: str, value: Any) -> SpecBase:
    """A copy of ``spec`` with the dotted ``path`` replaced by
    ``value`` (lists coerce to tuples; every node is rebuilt, so the
    original spec is untouched)."""
    return _set_steps(spec, _split_path(path), value, path)


def _set_steps(node: Any, steps: List[Tuple[str, Optional[int]]],
               value: Any, path: str) -> Any:
    attr, index = steps[0]
    if not dataclasses.is_dataclass(node) or not hasattr(node, attr):
        # Attack knobs live in the params tuple, not as fields; a
        # terminal non-field name on an AttackSpec sets (or adds) the
        # parameter so grids can sweep e.g. "attacks[0].rate".
        if (isinstance(node, AttackSpec) and len(steps) == 1
                and index is None and not hasattr(node, attr)):
            return node.with_param(
                attr, tuple(value) if isinstance(value, list) else value)
        raise ConfigurationError(
            f"spec path {path!r}: {type(node).__name__} has no "
            f"field {attr!r}")
    current = getattr(node, attr)
    if index is not None:
        if not isinstance(current, tuple) or index >= len(current):
            raise ConfigurationError(
                f"spec path {path!r}: {attr}[{index}] out of range")
        if len(steps) == 1:
            item = value
        else:
            item = _set_steps(current[index], steps[1:], value, path)
        new = current[:index] + (item,) + current[index + 1:]
    elif len(steps) == 1:
        new = tuple(value) if isinstance(value, list) else value
    else:
        if current is None:
            raise ConfigurationError(
                f"spec path {path!r}: {attr} is None; set the whole "
                f"sub-spec first")
        new = _set_steps(current, steps[1:], value, path)
    return replace(node, **{attr: new})


def apply_paths(spec: ScenarioSpec,
                assignments: Mapping[str, Any]) -> ScenarioSpec:
    """Apply dotted-path assignments in declaration order."""
    for path, value in assignments.items():
        spec = set_path(spec, path, value)
    return spec


# ----------------------------------------------------------------------
# Legacy kwarg -> spec converters (the shim surface).
# ----------------------------------------------------------------------

def pool_spec(
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    dual_stack: bool = False,
    profiles: Optional[Sequence[Any]] = None,
    resolver_config: Optional[ResolverConfig] = None,
    access_link: Optional[LinkProfile] = None,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    fault_model: Optional[FaultModel] = None,
) -> ScenarioSpec:
    """The single-client Figure 1 spec, from the legacy
    ``build_pool_scenario`` keywords (same defaults)."""
    if num_providers < 1:
        raise ValueError("need at least one provider")
    return ScenarioSpec(
        network=NetworkSpec(
            access=(None if access_link is None
                    else LinkSpec.from_profile(access_link)),
            fault=FaultSpec(loss_rate=loss_rate, jitter_s=jitter_s,
                            reorder_window=reorder_window,
                            duplicate_rate=duplicate_rate),
            extra_fault=(None if fault_model is None
                         else FaultSpec.from_model(fault_model))),
        provider=ProviderSpec(
            count=num_providers,
            profiles=(None if profiles is None else tuple(
                p if isinstance(p, ProfileSpec) else ProfileSpec.from_profile(p)
                for p in profiles)),
            resolver=(None if resolver_config is None
                      else ResolverSpec.from_config(resolver_config))),
        pool=PoolSpec(size=pool_size, answers_per_query=answers_per_query,
                      ttl=pool_ttl, dual_stack=dual_stack))


def population_spec(
    num_clients: int = 50,
    rounds: int = 3,
    mean_interval: float = 16.0,
    arrival: str = "periodic",
    resolve_every: int = 1,
    churn_rate: float = 0.0,
    rejoin_delay: float = 30.0,
    min_answers: Optional[int] = None,
    corrupted: int = 0,
    behavior: Any = "substitute",
    forged: tuple = (),
    lie_offset: float = 10.0,
    num_providers: int = 3,
    pool_size: int = 20,
    answers_per_query: int = 4,
    pool_ttl: int = 60,
    loss_rate: float = 0.0,
    jitter_s: float = 0.0,
    reorder_window: float = 0.0,
    duplicate_rate: float = 0.0,
    initial_clock_error: float = 0.050,
    shift_threshold: float = 1.0,
    time_bin: float = 10.0,
    shards: int = 1,
) -> ScenarioSpec:
    """The population spec, from the legacy
    ``build_population_scenario`` keywords (same defaults), plus the
    ``shards`` megafleet axis."""
    behavior = getattr(behavior, "value", behavior)
    return ScenarioSpec(
        network=NetworkSpec(
            fault=FaultSpec(loss_rate=loss_rate, jitter_s=jitter_s,
                            reorder_window=reorder_window,
                            duplicate_rate=duplicate_rate)),
        provider=ProviderSpec(count=num_providers, corrupted=corrupted,
                              behavior=behavior,
                              forged=tuple(str(a) for a in forged)),
        pool=PoolSpec(size=pool_size, answers_per_query=answers_per_query,
                      ttl=pool_ttl, lie_offset=lie_offset),
        fleet=FleetSpec(size=num_clients, rounds=rounds,
                        mean_interval=mean_interval, arrival=arrival,
                        resolve_every=resolve_every, churn_rate=churn_rate,
                        rejoin_delay=rejoin_delay, min_answers=min_answers,
                        initial_clock_error=initial_clock_error,
                        shift_threshold=shift_threshold, shards=shards),
        telemetry=TelemetrySpec(time_bin=time_bin))


# ----------------------------------------------------------------------
# The compiler.
# ----------------------------------------------------------------------

def materialize(spec: ScenarioSpec, seed: int, registry=None) -> World:
    """Compile a spec (plus a seed) into a wired world.

    Single-client specs (``fleet is None``) produce a
    :class:`~repro.scenarios.builders.PoolScenario`; specs with a
    :class:`FleetSpec` produce a
    :class:`~repro.scenarios.builders.PopulationScenario` — or, when
    ``fleet.shards > 1``, a
    :class:`~repro.population.sharding.ShardedFleet` (same ``run()`` /
    ``outcomes()`` / ``telemetry`` surface, population split across K
    worlds).  Specs built by :func:`pool_spec` / :func:`population_spec`
    materialize bit-identically to the legacy builders for the same
    seed.

    :param registry: telemetry sink for population worlds (a private
        one is created when omitted); ignored for single-client worlds
        unless ``spec.telemetry.enabled`` forces one.
    """
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"materialize needs a ScenarioSpec, got {type(spec).__name__}")
    if spec.fleet is None:
        return _materialize_single(spec, seed, registry)
    if spec.fleet.shards > 1:
        from repro.population.sharding import ShardedFleet
        return ShardedFleet(spec, seed, registry=registry)
    return _materialize_population(spec, seed, registry)


def effective_forged(spec: ScenarioSpec) -> List[str]:
    """The forged addresses the compiled world's corruption actually
    serves — the spec's own plus the legacy synthesis
    (:func:`_default_forged`) when a corruption behaviour needs
    addresses and none were given.  Metric code must score attacker
    shares against *this*, not ``spec.provider.forged`` alone."""
    return _default_forged(spec.provider, spec.pool)


def _default_forged(provider: ProviderSpec, pool: PoolSpec) -> List[str]:
    """The legacy builders' forged-address synthesis: when a corruption
    behaviour needs addresses and none were given, use the documentation
    block (one per answer slot)."""
    if provider.forged or not provider.corrupted:
        return list(provider.forged)
    if provider.behavior in ("substitute", "inflate"):
        return [f"203.0.113.{i + 1}" for i in range(pool.answers_per_query)]
    return []


def _materialize_single(spec: ScenarioSpec, seed: int, registry):
    from repro.attacks.compromise import (
        CompromiseConfig,
        CompromisedResolverBehavior,
        corrupt_first_k,
    )
    from repro.telemetry.registry import MetricsRegistry, use_registry

    if spec.telemetry.enabled:
        registry = registry or MetricsRegistry()
        with use_registry(registry):
            world = _build_pool_world(spec, seed)
    else:
        registry = None
        world = _build_pool_world(spec, seed)
    world.telemetry = registry
    if spec.provider.corrupted:
        corrupt_first_k(
            world.providers, spec.provider.corrupted,
            CompromiseConfig(
                target=world.pool_domain,
                behavior=CompromisedResolverBehavior(spec.provider.behavior),
                forged_addresses=_default_forged(spec.provider, spec.pool),
                inflate_to=spec.provider.inflate_to))
    _install_attacks(spec, world, world, ntp_fleet=None,
                     access_links=["client-edge--eu-central"],
                     region_links={})
    from repro.chaos.controller import install_chaos
    world.chaos = install_chaos(spec, world, ntp_fleet=None,
                                registry=registry)
    return world


def _build_pool_world(spec: ScenarioSpec, seed: int):
    """The Figure 1 world.  ``mode="forwarding"`` deploys the legacy
    flat tree (ported verbatim through
    :func:`repro.dns.hierarchy.compile_legacy_tree` so spec-built
    worlds stay bit-identical); ``mode="iterative"`` compiles the
    scenario's :class:`~repro.dns.hierarchy.HierarchySpec` into a
    root→TLD→zone referral chain and instruments the providers'
    caching resolvers."""
    from repro.dns.hierarchy import (
        HierarchySpec,
        compile_hierarchy,
        compile_legacy_tree,
    )
    from repro.doh.providers import (
        FIGURE1_PROVIDERS,
        deploy_provider,
        synthetic_profiles,
    )
    from repro.doh.tls import CertificateAuthority, TrustStore
    from repro.netsim.address import ip
    from repro.netsim.host import Host
    from repro.netsim.internet import Internet
    from repro.netsim.simulator import Simulator
    from repro.netsim.topology import Topology
    from repro.scenarios.builders import CLIENT_ADDRESS, PoolScenario
    from repro.util.rng import RngRegistry

    provider_spec = spec.provider
    pool = spec.pool
    registry = RngRegistry(seed)
    simulator = Simulator()
    topology = Topology.global_backbone(
        rng_registry=registry,
        profile=(spec.network.backbone.to_profile()
                 if spec.network.backbone is not None else None))

    # Attach infrastructure edges.
    edge = (spec.network.access.to_profile()
            if spec.network.access is not None else LinkProfile.metro())
    topology.add_link("client-edge", "eu-central", edge)
    topology.add_link("dns-root-edge", "us-east", LinkProfile.metro())
    topology.add_link("dns-org-edge", "eu-west", LinkProfile.metro())
    topology.add_link("ntpns-edge", "us-west", LinkProfile.metro())
    access_fault = spec.network.access_fault_model()
    if access_fault is not None:
        topology.set_fault_model("client-edge", "eu-central", access_fault)
    internet = Internet(simulator, topology, registry)

    # --- DNS tree -----------------------------------------------------
    iterative = (provider_spec.resolver is not None
                 and provider_spec.resolver.mode == "iterative")
    if iterative:
        tree = compile_hierarchy(
            internet, registry, pool,
            provider_spec.resolver.hierarchy or HierarchySpec())
    else:
        tree = compile_legacy_tree(internet, registry, pool)
    directory = tree.directory
    pool_zone = tree.pool_zone
    dns_servers = tree.servers
    root_hints = tree.root_hints

    # --- DoH providers -------------------------------------------------
    authority = CertificateAuthority("SimRoot CA", registry.stream("ca"))
    if provider_spec.profiles is None:
        if provider_spec.count <= len(FIGURE1_PROVIDERS):
            profiles = FIGURE1_PROVIDERS[:provider_spec.count]
        else:
            profiles = list(FIGURE1_PROVIDERS) + synthetic_profiles(
                provider_spec.count - len(FIGURE1_PROVIDERS),
                regions=["us-west", "us-east", "eu-west", "eu-central",
                         "asia-east", "asia-south"])
    else:
        profiles = [p.to_profile() for p in provider_spec.profiles]
    resolver_config = (provider_spec.resolver.to_config()
                       if provider_spec.resolver is not None else None)
    if provider_spec.serve == "doh":
        providers = [
            deploy_provider(internet, profile, authority, root_hints,
                            registry, resolver_config=resolver_config,
                            instrument=iterative)
            for profile in profiles
        ]
    else:
        providers = [
            _deploy_plain_provider(internet, profile, root_hints, registry,
                                   resolver_config=resolver_config,
                                   instrument=iterative)
            for profile in profiles
        ]

    trust_store = TrustStore([authority])
    client = internet.add_host(
        Host("client", "client-edge", [ip(CLIENT_ADDRESS)],
             rng=registry.stream("client-ports")))

    return PoolScenario(
        seed=seed, simulator=simulator, internet=internet, rng=registry,
        client=client, providers=providers, authority=authority,
        trust_store=trust_store, directory=directory, pool_zone=pool_zone,
        dns_servers=dns_servers, root_hints=root_hints,
        access_fault=access_fault, pool_domain=tree.pool_domain,
        hierarchy=tree if iterative else None,
    )


def _deploy_plain_provider(internet, profile, root_hints, rng_registry,
                           resolver_config=None, instrument=False):
    """A provider in ``serve="dns"`` mode: recursion engine + plain :53
    only — no TLS identity, no DoH front-end."""
    from repro.dns.resolver import RecursiveResolver, ResolverConfig
    from repro.doh.providers import ProviderDeployment
    from repro.netsim.address import IPAddress
    from repro.netsim.host import Host

    host = internet.add_host(Host(
        profile.name, profile.region, [IPAddress(profile.address)],
        rng=rng_registry.stream("provider-ports", profile.name)))
    resolver = RecursiveResolver(
        host, internet.simulator, root_hints,
        config=resolver_config or ResolverConfig(),
        rng=rng_registry.stream("provider-txid", profile.name),
        instrument=instrument)
    return ProviderDeployment(profile=profile, host=host, resolver=resolver,
                              doh_server=None, certificate=None, keypair=None)


def _materialize_population(spec: ScenarioSpec, seed: int, registry,
                            window: Optional[Tuple[int, int, int]] = None):
    """The population world (ported from the legacy
    ``build_population_scenario``; per-region access edges and the DoH
    fleet transport are the spec-only extensions).

    ``window`` is the sharding hook: ``(first_index, size, population)``
    builds the world with a :class:`~repro.population.ClientFleet`
    covering only that window of the population (``spec.fleet.shards``
    is ignored — the caller, :class:`ShardedFleet`, owns the split).
    """
    from repro.attacks.compromise import (
        CompromiseConfig,
        CompromisedResolverBehavior,
        corrupt_first_k,
    )
    from repro.netsim.address import IPAddress
    from repro.ntp.pool import deploy_ntp_fleet
    from repro.population.fleet import ClientFleet, FleetConfig
    from repro.scenarios.builders import PopulationScenario
    from repro.telemetry.registry import MetricsRegistry, use_registry

    fleet_spec = spec.fleet
    provider_spec = spec.provider
    behavior = CompromisedResolverBehavior(provider_spec.behavior)
    forged_list = [IPAddress(a)
                   for a in _default_forged(provider_spec, spec.pool)]

    if spec.telemetry.enabled is False:
        raise ConfigurationError(
            "population worlds need telemetry; leave "
            "TelemetrySpec.enabled unset or True")
    registry = registry or MetricsRegistry()
    with use_registry(registry):
        pool_scenario = _build_pool_world(spec, seed)
        pool_scenario.telemetry = registry
        # Population access edges.  With no RegionSpecs: one per
        # backbone region (metro profile, the scenario's access fault),
        # so the fault axes degrade the whole population — the legacy
        # layout.  With RegionSpecs: exactly the declared regions, each
        # with its own link profile and fault.
        topology = pool_scenario.internet.topology
        regions = [node for node in topology.nodes
                   if not node.endswith("-edge")]
        access_nodes = []
        region_links: Dict[str, str] = {}
        if spec.network.regions:
            for region in spec.network.regions:
                if not topology.has_node(region.attach):
                    raise ConfigurationError(
                        f"region {region.name!r} attaches to unknown "
                        f"node {region.attach!r}")
                topology.add_link(region.node, region.attach,
                                  region.link.to_profile())
                if region.fault is not None and region.fault.active:
                    topology.set_fault_model(region.node, region.attach,
                                             region.fault.to_model())
                access_nodes.append(region.node)
                region_links[region.name] = region.link_name
        else:
            pop_edge = (spec.network.access.to_profile()
                        if spec.network.access is not None
                        else LinkProfile.metro())
            for region in regions:
                node = f"pop-edge-{region}"
                topology.add_link(node, region, pop_edge)
                if pool_scenario.access_fault is not None:
                    topology.set_fault_model(node, region,
                                             pool_scenario.access_fault)
                access_nodes.append(node)
        if provider_spec.corrupted:
            corrupt_first_k(
                pool_scenario.providers, provider_spec.corrupted,
                CompromiseConfig(target=pool_scenario.pool_domain,
                                 behavior=behavior,
                                 forged_addresses=forged_list,
                                 inflate_to=provider_spec.inflate_to))
        # Attack-implied attacker servers (forged answer targets,
        # timeshift victims) must exist before the fleet deploys and
        # count as attackers from the first sync.
        attack_addresses: List[IPAddress] = []
        for attack in spec.attacks:
            for address in _attack_server_addresses(attack,
                                                    pool_scenario.directory):
                address = IPAddress(address)
                if address not in attack_addresses:
                    attack_addresses.append(address)
        extra_servers = forged_list + [
            a for a in attack_addresses
            if a not in forged_list
            and a not in pool_scenario.directory.benign
            and a not in pool_scenario.directory.malicious]
        # Servers stay on the backbone regions: a pool server co-located
        # on a population access edge would let its clients sync without
        # ever crossing the access link.
        ntp_fleet = deploy_ntp_fleet(
            pool_scenario.internet, pool_scenario.directory,
            pool_scenario.rng, regions=regions,
            malicious_lie_offset=spec.pool.lie_offset,
            extra_addresses=extra_servers)
        attackers = forged_list + pool_scenario.directory.malicious + [
            a for a in attack_addresses
            if a not in forged_list
            and a not in pool_scenario.directory.malicious]
        first_index, size, population = (
            window if window is not None
            else (0, fleet_spec.size, fleet_spec.size))
        fleet = ClientFleet(
            pool_scenario.internet,
            [deployment.address for deployment in pool_scenario.providers],
            pool_scenario.pool_domain, pool_scenario.rng,
            nodes=access_nodes, first_index=first_index,
            population=population,
            config=FleetConfig(
                num_clients=size, rounds=fleet_spec.rounds,
                mean_interval=fleet_spec.mean_interval,
                arrival=fleet_spec.arrival,
                resolve_every=fleet_spec.resolve_every,
                churn_rate=fleet_spec.churn_rate,
                rejoin_delay=fleet_spec.rejoin_delay,
                min_answers=fleet_spec.min_answers,
                initial_clock_error=fleet_spec.initial_clock_error,
                shift_threshold=fleet_spec.shift_threshold,
                time_bin=spec.telemetry.time_bin,
                transport=fleet_spec.transport),
            attacker_addresses=attackers, registry=registry,
            endpoints=[d.endpoint for d in pool_scenario.providers]
            if fleet_spec.transport == "doh" else None,
            server_names=[d.name for d in pool_scenario.providers]
            if fleet_spec.transport == "doh" else None,
            trust_store=pool_scenario.trust_store
            if fleet_spec.transport == "doh" else None)
    world = PopulationScenario(pool=pool_scenario, fleet=fleet,
                               ntp_fleet=ntp_fleet, telemetry=registry,
                               attacker_addresses=attackers)
    _install_attacks(spec, world, pool_scenario, ntp_fleet=ntp_fleet,
                     access_links=[
                         "--".join(sorted((node, attach)))
                         for node, attach in zip(
                             access_nodes,
                             [r.attach for r in spec.network.regions]
                             or regions)],
                     region_links=region_links)
    from repro.chaos.controller import install_chaos
    world.chaos = install_chaos(spec, pool_scenario, ntp_fleet=ntp_fleet,
                                registry=registry)
    return world


def _install_attacks(spec: ScenarioSpec, world, pool_scenario,
                     ntp_fleet, access_links, region_links) -> None:
    context = AttackContext(
        internet=pool_scenario.internet, rng=pool_scenario.rng,
        pool_domain=pool_scenario.pool_domain,
        providers=pool_scenario.providers,
        directory=pool_scenario.directory,
        access_links=access_links, region_links=region_links,
        ntp_fleet=ntp_fleet, root_hints=list(pool_scenario.root_hints))
    for attack in spec.attacks:
        world.attacks.append((attack.kind,
                              ATTACK_INSTALLERS[attack.kind](attack,
                                                             context)))


__all__ = [
    "ATTACK_INSTALLERS",
    "AttackContext",
    "AttackSpec",
    "ChaosSpec",
    "FaultSpec",
    "FleetSpec",
    "HierarchySpec",
    "LinkSpec",
    "NetworkSpec",
    "PoolSpec",
    "ProfileSpec",
    "ProviderSpec",
    "RESOLVER_MODES",
    "RegionSpec",
    "ResolverSpec",
    "ScenarioSpec",
    "SpecBase",
    "TelemetrySpec",
    "World",
    "apply_paths",
    "effective_forged",
    "get_path",
    "materialize",
    "pool_spec",
    "population_spec",
    "set_path",
]
