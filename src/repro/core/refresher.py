"""Periodic pool refresh — the deployment glue the paper implies.

pool.ntp.org rotates its answers and servers churn, so a long-running
consumer (a Chronos daemon, a cryptocurrency node) must regenerate its
pool periodically. :class:`PoolRefresher` runs Algorithm 1 on a timer,
hands every fresh pool to a consumer callback, and — because §II fn. 2's
strict semantics can fail closed under an empty-answer DoS — keeps
serving the *last good pool* during outages, tracking its staleness so
the consumer can decide when stale is too stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.pool import GeneratedPool, SecurePoolGenerator
from repro.netsim.simulator import Simulator, Timer
from repro.util.validation import check_positive

# Consumer receives (pool, is_fresh): is_fresh=False means the refresher
# is re-serving the last good pool after a failed generation.
PoolConsumer = Callable[[GeneratedPool, bool], None]


@dataclass
class RefresherStats:
    refreshes_attempted: int = 0
    refreshes_succeeded: int = 0
    refreshes_failed: int = 0
    served_stale: int = 0


class PoolRefresher:
    """Regenerates the pool every ``interval`` virtual seconds.

    :param generator: the Algorithm 1 engine.
    :param simulator: virtual-time engine driving the schedule.
    :param domain: pool domain to refresh.
    :param interval: seconds between refresh attempts.
    :param consumer: callback invoked after every attempt.
    :param max_staleness: if the last good pool is older than this when a
        refresh fails, the refresher stops serving it (consumer gets the
        failed pool so it can fail closed).
    """

    def __init__(self, generator: SecurePoolGenerator, simulator: Simulator,
                 domain: str, interval: float, consumer: PoolConsumer,
                 max_staleness: Optional[float] = None) -> None:
        check_positive(interval, "interval")
        if max_staleness is not None:
            check_positive(max_staleness, "max_staleness")
        self._generator = generator
        self._simulator = simulator
        self._domain = domain
        self._interval = interval
        self._consumer = consumer
        self._max_staleness = max_staleness
        self._stats = RefresherStats()
        self._last_good: Optional[GeneratedPool] = None
        self._last_good_at: Optional[float] = None
        self._timer = Timer(simulator, self._refresh, label="pool-refresh")
        self._running = False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def stats(self) -> RefresherStats:
        return self._stats

    @property
    def running(self) -> bool:
        return self._running

    @property
    def last_good_pool(self) -> Optional[GeneratedPool]:
        return self._last_good

    def staleness(self) -> Optional[float]:
        """Age of the last good pool, or None if there is none yet."""
        if self._last_good_at is None:
            return None
        return self._simulator.now - self._last_good_at

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self, immediate: bool = True) -> None:
        """Begin the refresh schedule."""
        if self._running:
            raise RuntimeError("refresher already running")
        self._running = True
        if immediate:
            self._refresh()
        else:
            self._timer.start(self._interval)

    def stop(self) -> None:
        """Halt the schedule (the in-flight refresh, if any, completes)."""
        self._running = False
        self._timer.cancel()

    # ------------------------------------------------------------------
    # Refresh cycle.
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        if not self._running:
            return
        self._stats.refreshes_attempted += 1
        self._generator.generate(self._domain, self._on_pool)

    def _on_pool(self, pool: GeneratedPool) -> None:
        if pool.ok:
            self._stats.refreshes_succeeded += 1
            self._last_good = pool
            self._last_good_at = self._simulator.now
            self._consumer(pool, True)
        else:
            self._stats.refreshes_failed += 1
            stale_ok = (self._last_good is not None
                        and (self._max_staleness is None
                             or self.staleness() <= self._max_staleness))
            if stale_ok:
                self._stats.served_stale += 1
                self._consumer(self._last_good, False)
            else:
                self._consumer(pool, False)
        if self._running:
            self._timer.start(self._interval)
