"""The configured set of trusted DoH resolvers.

A :class:`ResolverSet` is the operator-supplied list the paper calls
"a list of trusted DNS-over-HTTPS resolvers", together with the assumed
fraction ``x`` of them that an attacker cannot corrupt. The set knows
how many corrupted members the assumption tolerates and exposes the
bound the security analysis (§III) needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.core.errors import ConfigurationError
from repro.netsim.address import Endpoint
from repro.util.validation import check_fraction


@dataclass(frozen=True)
class ResolverRef:
    """One trusted DoH resolver: where to reach it and what name its
    certificate must present."""

    name: str
    endpoint: Endpoint

    def __str__(self) -> str:
        return f"{self.name} ({self.endpoint})"


class ResolverSet:
    """An ordered, duplicate-free set of trusted resolvers.

    :param resolvers: the trusted resolver references.
    :param assumed_secure_fraction: the paper's ``x`` — the fraction of
        resolvers assumed *not* attacker-controlled (e.g. ``1/2``).
    """

    def __init__(self, resolvers: Sequence[ResolverRef],
                 assumed_secure_fraction: float = 0.5) -> None:
        if not resolvers:
            raise ConfigurationError("resolver set cannot be empty")
        names = [ref.name for ref in resolvers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate resolver names in {names}")
        self._resolvers = list(resolvers)
        self._x = check_fraction(assumed_secure_fraction,
                                 "assumed_secure_fraction")

    # ------------------------------------------------------------------
    # Contents.
    # ------------------------------------------------------------------

    @property
    def resolvers(self) -> List[ResolverRef]:
        return list(self._resolvers)

    @property
    def assumed_secure_fraction(self) -> float:
        return self._x

    def __len__(self) -> int:
        return len(self._resolvers)

    def __iter__(self) -> Iterator[ResolverRef]:
        return iter(self._resolvers)

    def __getitem__(self, index: int) -> ResolverRef:
        return self._resolvers[index]

    # ------------------------------------------------------------------
    # Security bounds (§III).
    # ------------------------------------------------------------------

    @property
    def max_tolerable_corrupted(self) -> int:
        """Largest number of corrupted resolvers within the assumption.

        With fraction ``x`` assumed secure, up to ``floor((1-x)·N)``
        resolvers may be corrupted without voiding the guarantee.
        """
        return math.floor((1.0 - self._x) * len(self._resolvers) + 1e-9)

    def attacker_must_corrupt(self, target_fraction: float) -> int:
        """§III-a: resolvers an attacker must corrupt to control a
        fraction ``y = target_fraction`` of the generated pool.

        Because every resolver contributes exactly K of the N·K pool
        addresses, owning fraction ``y`` needs at least ``⌈y·N⌉``
        resolvers.
        """
        check_fraction(target_fraction, "target_fraction")
        return math.ceil(target_fraction * len(self._resolvers) - 1e-9)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(ref.name for ref in self._resolvers)
        return f"ResolverSet([{names}], x={self._x})"
