"""Truncation and dual-stack policies (§II of the paper).

The paper prescribes SHORTEST truncation: every resolver's answer list
is cut to the length of the shortest list, so no single resolver can
contribute more than 1/N of the final pool. Footnote 2 explains the
trade-off: this blocks the over-population attack from [1] at the cost
of allowing a DoS when a corrupted resolver answers with an empty list.
The alternatives (NONE, MEDIAN) exist for the E5 ablation.

Footnote 1 concerns dual-stack lookups: the honest-majority property can
be required on the *union* of A and AAAA pools or on each family
*individually*; which is right depends on the application, so both are
implemented.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


class TruncationPolicy(enum.Enum):
    """How per-resolver answer lists are cut before combination."""

    SHORTEST = "shortest"   # the paper's Algorithm 1
    MEDIAN = "median"       # ablation: cut to the median list length
    NONE = "none"           # ablation: no cut (vulnerable to [1])

    def truncate_length(self, lengths: Sequence[int]) -> int:
        """The per-resolver contribution bound for the given lengths."""
        if not lengths:
            raise ValueError("no answer lists to truncate")
        if self is TruncationPolicy.SHORTEST:
            return min(lengths)
        if self is TruncationPolicy.MEDIAN:
            ordered = sorted(lengths)
            return ordered[(len(ordered) - 1) // 2]
        return max(lengths)

    def apply(self, lists: Dict[str, List[T]]) -> Dict[str, List[T]]:
        """Truncate every list to the policy's bound."""
        limit = self.truncate_length([len(v) for v in lists.values()])
        return {key: list(values[:limit]) for key, values in lists.items()}


class DualStackPolicy(enum.Enum):
    """Where the honest-majority property must hold for dual-stack
    lookups (§II footnote 1)."""

    # Combine A and AAAA answers into one list per resolver, then run
    # Algorithm 1 once: the guarantee holds on the union.
    UNION = "union"
    # Run Algorithm 1 per address family and concatenate the resulting
    # pools: the guarantee holds for each family individually.
    PER_FAMILY = "per-family"
