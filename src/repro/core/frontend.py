"""Backward-compatible plain-DNS front-end.

The paper's deployment story (§II): "We propose to deploy our mechanism
without changing the DNS infrastructure, offering a standard-compatible
DNS-resolver interface." This module is that interface — a UDP :53
listener that unmodified stub resolvers can point at. Queries for the
configured pool domains are answered with Algorithm 1's combined pool
(optionally majority-voted); every other query is transparently proxied
to the first trusted DoH resolver so the host's ordinary name resolution
keeps working.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.majority import MajorityVoteCombiner
from repro.core.pool import GeneratedPool, SecurePoolGenerator
from repro.dns.message import Message, ResourceRecord, make_response
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import address_rdata
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.doh.client import DoHClient, DoHQueryOutcome
from repro.netsim.host import Host
from repro.netsim.packet import Datagram

DNS_PORT = 53
POOL_ANSWER_TTL = 30  # combined answers are short-lived by design


class MajorityDnsFrontend:
    """Plain-DNS server backed by distributed-DoH pool generation.

    :param host: machine to bind :53 on (typically the client's own
        loopback gateway; here a simulated host).
    :param generator: the Algorithm 1 engine.
    :param doh_client: transport reused for proxying non-pool queries.
    :param pool_domains: names that get the secure-pool treatment.
    :param majority: optional per-address vote applied on top of
        Algorithm 1's combination before answering.
    """

    def __init__(self, host: Host, generator: SecurePoolGenerator,
                 doh_client: DoHClient,
                 pool_domains: Iterable["Name | str"],
                 majority: Optional[MajorityVoteCombiner] = None,
                 port: int = DNS_PORT) -> None:
        self._host = host
        self._generator = generator
        self._doh = doh_client
        self._pool_domains: Set[Name] = {Name(d) for d in pool_domains}
        self._majority = majority
        self._socket = host.bind(port, self._handle_datagram)
        self._pool_queries = 0
        self._proxied_queries = 0
        self._failures = 0

    @property
    def pool_queries(self) -> int:
        return self._pool_queries

    @property
    def proxied_queries(self) -> int:
        return self._proxied_queries

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def endpoint(self):
        return self._socket.endpoint

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def _handle_datagram(self, datagram: Datagram) -> None:
        try:
            query = Message.decode(datagram.payload)
        except WireFormatError:
            return
        if query.is_response or len(query.questions) != 1:
            return
        question = query.question
        if (question.qname in self._pool_domains
                and question.qtype in (RRType.A, RRType.AAAA)):
            self._answer_pool_query(datagram, query)
        else:
            self._proxy_query(datagram, query)

    # ------------------------------------------------------------------
    # Pool-domain path: Algorithm 1.
    # ------------------------------------------------------------------

    def _answer_pool_query(self, datagram: Datagram, query: Message) -> None:
        self._pool_queries += 1
        question = query.question

        def respond(pool: GeneratedPool) -> None:
            if not pool.ok:
                self._failures += 1
                self._socket.reply(datagram, make_response(
                    query, rcode=RCode.SERVFAIL,
                    recursion_available=True).encode())
                return
            addresses = pool.addresses
            if self._majority is not None:
                addresses = self._majority.combine(pool.contributions)
                if not addresses:
                    self._failures += 1
                    self._socket.reply(datagram, make_response(
                        query, rcode=RCode.SERVFAIL,
                        recursion_available=True).encode())
                    return
            wanted_family = 4 if question.qtype is RRType.A else 6
            records = [
                ResourceRecord(question.qname, question.qtype,
                               POOL_ANSWER_TTL, address_rdata(address))
                for address in addresses
                if address.family == wanted_family
            ]
            self._socket.reply(datagram, make_response(
                query, answers=records, recursion_available=True).encode())

        self._generator.generate(question.qname.to_text(), respond)

    # ------------------------------------------------------------------
    # Everything else: proxy through one trusted DoH resolver.
    # ------------------------------------------------------------------

    def _proxy_query(self, datagram: Datagram, query: Message) -> None:
        self._proxied_queries += 1
        upstream = self._generator.resolver_set[0]
        question = query.question

        def respond(outcome: DoHQueryOutcome) -> None:
            if not outcome.ok or outcome.message is None:
                self._failures += 1
                self._socket.reply(datagram, make_response(
                    query, rcode=RCode.SERVFAIL,
                    recursion_available=True).encode())
                return
            upstream_message = outcome.message
            response = make_response(
                query, rcode=upstream_message.rcode,
                answers=upstream_message.answers,
                authority=upstream_message.authority,
                recursion_available=True)
            self._socket.reply(datagram, response.encode())

        self._doh.query(upstream.endpoint, upstream.name,
                        question.qname, question.qtype, respond)
