"""Errors raised by the secure pool-generation core."""

from __future__ import annotations


class PoolGenerationError(RuntimeError):
    """Pool generation could not satisfy its security requirements.

    Raised (or reported through outcome objects) when, e.g., fewer
    resolvers answered than the configured minimum, or truncation
    collapsed the pool to zero (the DoS case of §II footnote 2).
    """


class ConfigurationError(ValueError):
    """Invalid generator/resolver-set configuration."""


class UnknownPresetError(ConfigurationError):
    """A scenario preset name not present in the registry.

    Carries the valid names so a typo'd campaign axis fails with an
    actionable message instead of a bare ``KeyError``.
    """

    def __init__(self, name: str, known) -> None:
        self.name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown scenario preset {name!r}; known: {self.known}")
