"""Errors raised by the secure pool-generation core."""

from __future__ import annotations


class PoolGenerationError(RuntimeError):
    """Pool generation could not satisfy its security requirements.

    Raised (or reported through outcome objects) when, e.g., fewer
    resolvers answered than the configured minimum, or truncation
    collapsed the pool to zero (the DoS case of §II footnote 2).
    """


class ConfigurationError(ValueError):
    """Invalid generator/resolver-set configuration."""
