"""Algorithm 1: secure server-pool generation (the paper's core).

The lookup queries the pool domain through every resolver in the
configured :class:`~repro.core.resolverset.ResolverSet` in parallel,
truncates every answer list to the length of the shortest, and returns
the multiset combination::

    results = [], lengths = [], addresspool = []
    for res in resolvers:
        r = query(res, domain)
        results.append(r); lengths.append(len(r))
    truncatelength = min(lengths)
    for r in results:
        addresspool.add(truncate(r, truncatelength))
    return addresspool

Duplicates are preserved deliberately (§IV: the application must treat
repeated addresses as individual servers, otherwise an attacker
controlling a majority of resolvers could not be out-voted by honest
duplicates).

``combine_answer_lists`` is the pure-function heart of the algorithm,
used directly by property tests; :class:`SecurePoolGenerator` is the
network-facing orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.policy import DualStackPolicy, TruncationPolicy
from repro.core.resolverset import ResolverRef, ResolverSet
from repro.dns.rrtype import RRType
from repro.doh.client import DoHClient, DoHQueryOutcome
from repro.netsim.address import IPAddress
from repro.netsim.simulator import Simulator
from repro.telemetry.trace import current_tracer


# ----------------------------------------------------------------------
# Pure combination logic.
# ----------------------------------------------------------------------


def combine_answer_lists(
    answer_lists: Dict[str, Sequence[IPAddress]],
    policy: TruncationPolicy = TruncationPolicy.SHORTEST,
) -> Tuple[List[IPAddress], int, Dict[str, List[IPAddress]]]:
    """Apply Algorithm 1's truncate-and-combine step.

    :param answer_lists: per-resolver address lists (resolver name →
        addresses, in answer order).
    :param policy: truncation policy (SHORTEST is the paper's).
    :returns: ``(pool, truncate_length, per_resolver_contributions)``.
        The pool is a multiset: duplicates across resolvers are kept.
    :raises ConfigurationError: on empty input.
    """
    if not answer_lists:
        raise ConfigurationError("no answer lists to combine")
    truncate_length = policy.truncate_length(
        [len(addresses) for addresses in answer_lists.values()])
    contributions = {
        name: list(addresses[:truncate_length])
        for name, addresses in answer_lists.items()
    }
    pool: List[IPAddress] = []
    for name in answer_lists:  # preserve resolver order
        pool.extend(contributions[name])
    return pool, truncate_length, contributions


def combine_with_quorum(
    answer_lists: Dict[str, Optional[Sequence[IPAddress]]],
    min_answers: Optional[int] = None,
    policy: TruncationPolicy = TruncationPolicy.SHORTEST,
) -> Optional[List[IPAddress]]:
    """Algorithm 1's availability gate plus truncate-and-combine.

    The single authoritative statement of the strict-vs-quorum
    semantics :class:`SecurePoolGenerator` implements (and E6
    measures), shared with the population layer so fleet clients can
    never drift from the single-client trials:

    * ``answer_lists`` maps resolver name → its answer, with ``None``
      for a resolver that failed to answer at all;
    * strict (``min_answers=None``): every resolver must have answered,
      and one empty answer truncates the pool to nothing — §II fn.2's
      documented DoS;
    * quorum: zero-record answers are discarded like failures
      (``ignore_empty_answers`` pairing) and at least ``min_answers``
      usable answers are required.

    Returns the combined pool, or ``None`` when no usable pool exists.
    """
    usable = {
        name: addresses for name, addresses in answer_lists.items()
        if addresses is not None and (min_answers is None or addresses)
    }
    required = len(answer_lists) if min_answers is None else min_answers
    if len(usable) < required:
        return None
    pool, truncate_length, _ = combine_answer_lists(usable, policy)
    if truncate_length == 0:
        return None
    return pool


# ----------------------------------------------------------------------
# Network-facing generator.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolGeneratorConfig:
    """Behavioural knobs for :class:`SecurePoolGenerator`.

    :param truncation: list-truncation policy (§II fn. 2).
    :param dual_stack: None for single-family lookups, or a
        :class:`DualStackPolicy` to query both A and AAAA (§II fn. 1).
    :param min_answers: minimum resolvers that must answer successfully.
        The paper's strict reading requires *all* (an empty or missing
        answer is a DoS); setting this below N is the documented
        availability extension measured in E6.
    :param ignore_empty_answers: treat a zero-record answer as a failed
        resolver instead of letting it truncate the pool to nothing.
        Off by default (the paper's semantics, §II fn. 2); pairs with
        ``min_answers`` for the E6 availability extension. The cost:
        with e of N resolvers excluded as empty, a remaining corrupted
        resolver's share grows from 1/N to 1/(N-e).
    :param qtype: address family for single-family operation.
    """

    truncation: TruncationPolicy = TruncationPolicy.SHORTEST
    dual_stack: Optional[DualStackPolicy] = None
    min_answers: Optional[int] = None
    ignore_empty_answers: bool = False
    qtype: RRType = RRType.A

    def __post_init__(self) -> None:
        if self.qtype not in (RRType.A, RRType.AAAA):
            raise ConfigurationError(
                f"pool lookups are address lookups; got {self.qtype.name}")


@dataclass
class ResolverAnswer:
    """One resolver's contribution to a lookup."""

    resolver: ResolverRef
    outcome: DoHQueryOutcome
    addresses: List[IPAddress] = field(default_factory=list)
    addresses_by_family: Dict[int, List[IPAddress]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.outcome.ok and self.outcome.message is not None


@dataclass
class GeneratedPool:
    """The result of one secure pool generation."""

    addresses: List[IPAddress]
    truncate_length: int
    contributions: Dict[str, List[IPAddress]]
    answers: List[ResolverAnswer]
    failed_resolvers: List[str]
    elapsed: float
    degraded: bool = False   # True when min_answers < N allowed gaps

    @property
    def ok(self) -> bool:
        """Whether a non-empty pool was produced."""
        return bool(self.addresses)

    @property
    def resolver_count(self) -> int:
        return len(self.answers)

    def max_contribution_fraction(self) -> float:
        """Largest share of the pool contributed by any one resolver —
        the quantity Algorithm 1 bounds to 1/(answering resolvers)."""
        if not self.addresses:
            raise ValueError("empty pool has no contributions")
        largest = max(len(part) for part in self.contributions.values())
        return largest / len(self.addresses)


PoolCallback = Callable[[GeneratedPool], None]


class SecurePoolGenerator:
    """Algorithm 1 over live DoH resolvers.

    :param doh_client: transport for the secure per-resolver queries.
    :param resolver_set: the trusted resolvers and assumption ``x``.
    :param simulator: virtual clock for elapsed-time accounting.
    :param config: policy knobs.
    """

    def __init__(self, doh_client: DoHClient, resolver_set: ResolverSet,
                 simulator: Simulator,
                 config: Optional[PoolGeneratorConfig] = None) -> None:
        self._doh = doh_client
        self._resolvers = resolver_set
        self._simulator = simulator
        self._config = config or PoolGeneratorConfig()
        self._tracer = current_tracer()
        min_answers = self._config.min_answers
        if min_answers is not None and not 1 <= min_answers <= len(resolver_set):
            raise ConfigurationError(
                f"min_answers must be in [1, {len(resolver_set)}], "
                f"got {min_answers}")

    @property
    def resolver_set(self) -> ResolverSet:
        return self._resolvers

    @property
    def config(self) -> PoolGeneratorConfig:
        return self._config

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def generate(self, domain: str, callback: PoolCallback) -> None:
        """Run Algorithm 1 for ``domain``; ``callback`` fires once."""
        if self._config.dual_stack is None:
            qtypes = [self._config.qtype]
        else:
            qtypes = [RRType.A, RRType.AAAA]
        _Generation(self, domain, qtypes, callback).start()

    # ------------------------------------------------------------------
    # Combination step (shared with _Generation).
    # ------------------------------------------------------------------

    def _combine(self, answers: List[ResolverAnswer],
                 started_at: float) -> GeneratedPool:
        # The gate below is the rich-metadata (contributions, failed
        # resolvers, dual-stack) form of ``combine_with_quorum``; any
        # change to the strict/quorum semantics must land in both.
        def usable(answer: ResolverAnswer) -> bool:
            if not answer.ok:
                return False
            if self._config.ignore_empty_answers and not answer.addresses:
                return False
            return True

        succeeded = [answer for answer in answers if usable(answer)]
        failed = [answer.resolver.name for answer in answers
                  if not usable(answer)]
        required = (self._config.min_answers
                    if self._config.min_answers is not None
                    else len(self._resolvers))
        elapsed = self._simulator.now - started_at
        if len(succeeded) < required:
            generated = GeneratedPool(addresses=[], truncate_length=0,
                                      contributions={}, answers=answers,
                                      failed_resolvers=failed,
                                      elapsed=elapsed)
            self._trace_combine(generated)
            return generated
        degraded = len(succeeded) < len(self._resolvers)

        if self._config.dual_stack is DualStackPolicy.PER_FAMILY:
            pool: List[IPAddress] = []
            contributions: Dict[str, List[IPAddress]] = {
                answer.resolver.name: [] for answer in succeeded}
            lengths = []
            for family in (4, 6):
                family_lists = {
                    answer.resolver.name:
                        answer.addresses_by_family.get(family, [])
                    for answer in succeeded
                }
                family_pool, family_length, family_parts = combine_answer_lists(
                    family_lists, self._config.truncation)
                pool.extend(family_pool)
                lengths.append(family_length)
                for name, part in family_parts.items():
                    contributions[name].extend(part)
            truncate_length = min(lengths) if lengths else 0
        else:
            # Single family, or dual-stack UNION (per-resolver lists
            # already hold the concatenated A+AAAA answers).
            answer_lists = {answer.resolver.name: answer.addresses
                            for answer in succeeded}
            pool, truncate_length, contributions = combine_answer_lists(
                answer_lists, self._config.truncation)

        generated = GeneratedPool(
            addresses=pool, truncate_length=truncate_length,
            contributions=contributions, answers=answers,
            failed_resolvers=failed, elapsed=elapsed, degraded=degraded)
        self._trace_combine(generated)
        return generated

    def _trace_combine(self, generated: GeneratedPool) -> None:
        """One Algorithm-1 combine as an instantaneous span: which
        resolver contributed what, and what survived truncation — the
        record the tracetool causal-chain analysis pivots on."""
        tracer = self._tracer
        if tracer is None:
            return
        tracer.event("pool.combine", attrs={
            "answers": {answer.resolver.name:
                        [str(address) for address in answer.addresses]
                        for answer in generated.answers},
            "contributions": {name: [str(address) for address in part]
                              for name, part in
                              generated.contributions.items()},
            "result": [str(address) for address in generated.addresses],
            "truncate_length": generated.truncate_length,
            "failed": list(generated.failed_resolvers),
        })


class _Generation:
    """One in-flight pool generation: fan out, join, combine."""

    def __init__(self, generator: SecurePoolGenerator, domain: str,
                 qtypes: List[RRType], callback: PoolCallback) -> None:
        self._generator = generator
        self._domain = domain
        self._qtypes = qtypes
        self._callback = callback
        self._started_at = generator._simulator.now
        self._answers: Dict[str, ResolverAnswer] = {}
        self._pending = 0
        self._span = None

    def start(self) -> None:
        resolvers = self._generator._resolvers.resolvers
        self._pending = len(resolvers) * len(self._qtypes)
        tracer = self._generator._tracer
        if tracer is not None:
            self._span = tracer.begin("pool.generate",
                                      attrs={"domain": self._domain})
            with tracer.scope(self._span):
                self._fan_out(resolvers)
        else:
            self._fan_out(resolvers)

    def _fan_out(self, resolvers) -> None:
        for resolver in resolvers:
            self._answers[resolver.name] = ResolverAnswer(
                resolver=resolver,
                outcome=DoHQueryOutcome(status=None),  # placeholder
            )
            for qtype in self._qtypes:
                self._query_one(resolver, qtype)

    def _query_one(self, resolver: ResolverRef, qtype: RRType) -> None:
        def on_outcome(outcome: DoHQueryOutcome) -> None:
            self._record(resolver, qtype, outcome)

        self._generator._doh.query(resolver.endpoint, resolver.name,
                                   self._domain, qtype, on_outcome)

    def _record(self, resolver: ResolverRef, qtype: RRType,
                outcome: DoHQueryOutcome) -> None:
        answer = self._answers[resolver.name]
        family = 4 if qtype is RRType.A else 6
        if outcome.ok and outcome.message is not None:
            addresses = [
                record.rdata.address  # type: ignore[attr-defined]
                for record in outcome.message.answers
                if record.rrtype is qtype
            ]
            answer.addresses_by_family[family] = addresses
        else:
            answer.addresses_by_family[family] = []
        # Rebuild the flat list in family order so results do not depend
        # on which family's response arrived first.
        answer.addresses = [
            address
            for fam in (4, 6)
            for address in answer.addresses_by_family.get(fam, [])
        ]
        # The per-resolver outcome reflects the *worst* qtype result so
        # a resolver failing either family counts as failed.
        if answer.outcome.status is None or not outcome.ok:
            answer.outcome = outcome
        self._pending -= 1
        if self._pending == 0:
            ordered = [self._answers[ref.name]
                       for ref in self._generator._resolvers]
            tracer = self._generator._tracer
            if tracer is not None and self._span is not None:
                # The join arrives through the last resolver's callback
                # hop; combine under the generation span, then close it.
                with tracer.scope(self._span):
                    generated = self._generator._combine(ordered,
                                                         self._started_at)
                tracer.finish(self._span.set(
                    ok=generated.ok, degraded=generated.degraded,
                    pool_size=len(generated.addresses)))
            else:
                generated = self._generator._combine(ordered,
                                                     self._started_at)
            self._callback(generated)
