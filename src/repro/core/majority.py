"""Per-address majority voting (§II of the paper).

    "Ensuring that all of the servers in a returned DNS query are benign
    can be performed via a classic majority-vote on each of the returned
    addresses, e.g., the majority DNS resolver only includes an address
    in the final response, if it is given by a majority of the DoH
    resolvers."

This is stronger than Algorithm 1's fraction bound — the output contains
*only* addresses vouched for by a quorum — but it requires resolvers to
see overlapping answer sets, so it composes poorly with heavy rotation
(a trade-off exercised by experiment E8). Chronos does not need it; the
backward-compatible front-end can use it for applications that do.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.netsim.address import IPAddress


def majority_vote(answer_lists: Dict[str, Sequence[IPAddress]],
                  quorum: Optional[int] = None) -> List[IPAddress]:
    """Return the addresses included by at least ``quorum`` resolvers.

    :param answer_lists: per-resolver address lists. An address counts
        once per resolver no matter how often that resolver repeated it.
    :param quorum: required vote count; defaults to a strict majority
        ``floor(N/2) + 1`` of the resolvers *consulted* (not of those
        that answered — silent resolvers effectively vote against).
    :returns: addresses sorted by (votes desc, address) for determinism.
    """
    if not answer_lists:
        raise ConfigurationError("no answer lists to vote on")
    n = len(answer_lists)
    if quorum is None:
        quorum = n // 2 + 1
    if not 1 <= quorum <= n:
        raise ConfigurationError(f"quorum must be in [1, {n}], got {quorum}")
    votes: Counter = Counter()
    for addresses in answer_lists.values():
        for address in set(addresses):
            votes[address] += 1
    winners = [(count, address) for address, count in votes.items()
               if count >= quorum]
    winners.sort(key=lambda item: (-item[0], str(item[1])))
    return [address for _, address in winners]


class MajorityVoteCombiner:
    """A reusable combiner with a fixed quorum rule.

    :param quorum_fraction: fraction of consulted resolvers whose vote
        is required (strictly more than 1/2 by default).
    """

    def __init__(self, quorum_fraction: float = 0.5) -> None:
        if not 0.0 < quorum_fraction < 1.0:
            raise ConfigurationError(
                f"quorum_fraction must be in (0, 1), got {quorum_fraction}")
        self._quorum_fraction = quorum_fraction

    @property
    def quorum_fraction(self) -> float:
        return self._quorum_fraction

    def quorum_for(self, resolver_count: int) -> int:
        """Votes required given how many resolvers were consulted."""
        return math.floor(self._quorum_fraction * resolver_count) + 1

    def combine(self, answer_lists: Dict[str, Sequence[IPAddress]]) -> List[IPAddress]:
        """Vote with the configured quorum rule."""
        return majority_vote(answer_lists,
                             quorum=self.quorum_for(len(answer_lists)))
