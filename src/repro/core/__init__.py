"""The paper's contribution: secure server-pool generation over
distributed DoH resolvers.

* :mod:`repro.core.pool` — **Algorithm 1**: query the pool domain
  through every configured DoH resolver, truncate each answer list to
  the length of the shortest, and return the multiset combination;
* :mod:`repro.core.majority` — the per-address majority vote the paper
  describes for applications that need *every* returned server benign
  (not required for Chronos, which tolerates a minority);
* :mod:`repro.core.policy` — truncation and dual-stack policies
  (§II footnotes 1-2), including the ablation alternatives;
* :mod:`repro.core.resolverset` — the configured list of trusted DoH
  resolvers plus the assumed-secure fraction ``x``;
* :mod:`repro.core.frontend` — a standard-compatible plain-DNS front-end
  so unmodified applications (stub resolvers) benefit transparently,
  per the paper's backward-compatibility claim.
"""

from repro.core.errors import PoolGenerationError
from repro.core.majority import MajorityVoteCombiner, majority_vote
from repro.core.policy import DualStackPolicy, TruncationPolicy
from repro.core.pool import (
    GeneratedPool,
    PoolGeneratorConfig,
    ResolverAnswer,
    SecurePoolGenerator,
    combine_answer_lists,
)
from repro.core.refresher import PoolRefresher, RefresherStats
from repro.core.resolverset import ResolverRef, ResolverSet
from repro.core.frontend import MajorityDnsFrontend

__all__ = [
    "PoolGenerationError",
    "MajorityVoteCombiner",
    "majority_vote",
    "DualStackPolicy",
    "TruncationPolicy",
    "GeneratedPool",
    "PoolGeneratorConfig",
    "ResolverAnswer",
    "SecurePoolGenerator",
    "combine_answer_lists",
    "PoolRefresher",
    "RefresherStats",
    "ResolverRef",
    "ResolverSet",
    "MajorityDnsFrontend",
]
