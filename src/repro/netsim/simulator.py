"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of timestamped events and executes them
in ``(time, sequence)`` order, so two events scheduled for the same
virtual instant fire in scheduling order. Virtual time is a float in
seconds and only advances when the queue is drained up to an event.

The engine is intentionally callback-based (no coroutines): callbacks
keep execution order explicit and make attack races reproducible.

Hot-path layout: the heap holds plain ``(time, sequence, event)``
tuples, so ordering is decided by C-level tuple comparison instead of a
generated dataclass ``__lt__``; :class:`Event` itself is a slotted
handle whose only job is carrying the callback and the cancel flag. The
pending-event count is maintained live on schedule/cancel/pop, keeping
:attr:`Simulator.pending_events` O(1) instead of a full heap scan.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.trace import current_tracer

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback, ordered in the queue by ``(time, sequence)``.

    Instances are returned from :meth:`Simulator.schedule_at` as handles;
    call :meth:`cancel` to prevent a pending event from firing.
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled",
                 "_simulator")

    def __init__(self, time: float, sequence: int, callback: Callback,
                 label: str = "",
                 simulator: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call repeatedly —
        including on handles that already fired or were dropped by
        :meth:`Simulator.clear`, which no longer count as pending."""
        if not self.cancelled:
            self.cancelled = True
            simulator = self._simulator
            if simulator is not None:
                self._simulator = None
                simulator._pending -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, #{self.sequence}, {self.label or 'anon'}, {state})"


#: What the heap actually stores.
_QueueEntry = Tuple[float, int, Event]


class Simulator:
    """A single-threaded discrete-event scheduler with virtual time.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule_at(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule_at(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._executed = 0
        self._pending = 0
        self._running = False
        # Wall-clock profiling is off by default: ``_profile`` stays
        # None and run() takes the untimed loop. enable_profiling()
        # switches it on (the only sanctioned wall-clock use in
        # src/repro — see the CI hygiene gate).
        self._profile: Optional[Dict[str, List[float]]] = None
        # Tracing rides the virtual clock: when a tracer is in scope at
        # construction (the same capture-once contract the metrics
        # registry uses), bind it to this simulator's now so spans
        # begun anywhere in the world carry virtual timestamps.
        tracer = current_tracer()
        if tracer is not None:
            tracer.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Count of callbacks executed so far (cancelled ones excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        O(1): the count is maintained on schedule/cancel/pop rather than
        recomputed by scanning the heap.
        """
        return self._pending

    def schedule_at(self, when: float, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        when = float(when)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        sequence = next(self._sequence)
        event = Event(when, sequence, callback, label, self)
        heapq.heappush(self._queue, (when, sequence, event))
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` after a relative ``delay`` in seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    def call_soon(self, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after current event)."""
        return self.schedule_after(0.0, callback, label=label)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        :param until: stop once virtual time would exceed this bound;
            time is left at ``until`` if the queue outlives it.
        :param max_events: safety valve — stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            queue = self._queue
            pop = heapq.heappop
            profile = self._profile
            executed_this_run = 0
            while queue:
                if max_events is not None and executed_this_run >= max_events:
                    break
                head = queue[0]
                event = head[2]
                if event.cancelled:
                    pop(queue)
                    continue
                when = head[0]
                if until is not None and when > until:
                    # Leave it queued; the caller may resume later.
                    if until > self._now:
                        self._now = until
                    return
                pop(queue)
                # Detach before firing: a late cancel() on a fired
                # handle must not touch the live pending counter.
                event._simulator = None
                self._pending -= 1
                self._now = when
                if profile is None:
                    event.callback()
                else:
                    started = perf_counter()
                    event.callback()
                    elapsed = perf_counter() - started
                    cell = profile.get(event.label)
                    if cell is None:
                        cell = profile[event.label] = [0.0, 0.0]
                    cell[0] += 1.0
                    cell[1] += elapsed
                self._executed += 1
                executed_this_run += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False when idle."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event._simulator = None
            self._pending -= 1
            self._now = event.time
            event.callback()
            self._executed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events without running them."""
        for _, _, event in self._queue:
            event._simulator = None
        self._queue.clear()
        self._pending = 0

    # ------------------------------------------------------------------
    # Wall-clock profiling (off by default).
    # ------------------------------------------------------------------

    def enable_profiling(self) -> None:
        """Collect per-event-kind dispatch counts and wall time.

        Off by default — the run() hot loop only pays for the
        ``perf_counter`` pair once this is called. Event kinds are the
        ``label`` strings passed to :meth:`schedule_at` (empty label
        buckets together as ``""``). Wall time measures *host* seconds
        inside callbacks; it never feeds back into virtual time,
        metrics, or traces, so enabling profiling cannot change any
        simulated outcome.
        """
        if self._profile is None:
            self._profile = {}

    def profile_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-label ``{"count": ..., "wall_s": ...}``, label-sorted.

        Counts are deterministic (they mirror event dispatch); wall
        seconds are host-machine measurements and vary run to run.
        """
        if self._profile is None:
            return {}
        return {label: {"count": cell[0], "wall_s": cell[1]}
                for label, cell in sorted(self._profile.items())}


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Commonly used for retransmission/timeout logic in protocol code.
    """

    __slots__ = ("_simulator", "_callback", "_label", "_event")

    def __init__(self, simulator: Simulator, callback: Callback, label: str = "timer") -> None:
        self._simulator = simulator
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire after ``delay`` seconds."""
        self.cancel()
        self._event = self._simulator.schedule_after(
            delay, self._fire, label=self._label
        )

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


def run_all(simulator: Simulator, *, max_events: int = 1_000_000) -> Any:
    """Convenience: drain ``simulator`` and return it (for chaining)."""
    simulator.run_until_idle(max_events=max_events)
    return simulator
