"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of timestamped events and executes them
in ``(time, sequence)`` order, so two events scheduled for the same
virtual instant fire in scheduling order. Virtual time is a float in
seconds and only advances when the queue is drained up to an event.

The engine is intentionally callback-based (no coroutines): callbacks
keep execution order explicit and make attack races reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback. Comparable by ``(time, sequence)``.

    Instances are returned from :meth:`Simulator.schedule` as handles;
    call :meth:`cancel` to prevent a pending event from firing.
    """

    time: float
    sequence: int
    callback: Callback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call repeatedly."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, #{self.sequence}, {self.label or 'anon'}, {state})"


class Simulator:
    """A single-threaded discrete-event scheduler with virtual time.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule_at(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule_at(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Count of callbacks executed so far (cancelled ones excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(self, when: float, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        event = Event(time=float(when), sequence=next(self._sequence),
                      callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` after a relative ``delay`` in seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    def call_soon(self, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after current event)."""
        return self.schedule_after(0.0, callback, label=label)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        :param until: stop once virtual time would exceed this bound;
            time is left at ``until`` if the queue outlives it.
        :param max_events: safety valve — stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            executed_this_run = 0
            while self._queue:
                if max_events is not None and executed_this_run >= max_events:
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    # Put it back; the caller may resume later.
                    heapq.heappush(self._queue, event)
                    self._now = max(self._now, until)
                    return
                self._now = event.time
                event.callback()
                self._executed += 1
                executed_this_run += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._executed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events without running them."""
        self._queue.clear()


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Commonly used for retransmission/timeout logic in protocol code.
    """

    def __init__(self, simulator: Simulator, callback: Callback, label: str = "timer") -> None:
        self._simulator = simulator
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire after ``delay`` seconds."""
        self.cancel()
        self._event = self._simulator.schedule_after(
            delay, self._fire, label=self._label
        )

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


def run_all(simulator: Simulator, *, max_events: int = 1_000_000) -> Any:
    """Convenience: drain ``simulator`` and return it (for chaining)."""
    simulator.run_until_idle(max_events=max_events)
    return simulator
