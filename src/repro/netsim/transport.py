"""Unified request/response transport over the simulated network.

Every client protocol in this repository (stub DNS, DoH, SNTP) is at
heart the same loop: send a request, wait with a timeout, maybe retry,
accept the first matching reply, suppress everything that arrives after
the decision. Before this module each client carried its own copy of
that loop; now :class:`Transport` owns it once.

Two layers are exposed:

* :class:`PendingExchange` — the protocol-agnostic attempt supervisor.
  It owns the retry schedule (per-attempt timeouts with optional
  exponential backoff from a :class:`RetryPolicy`), guarantees the
  completion callback fires exactly once, and records per-exchange
  metrics. Connection-oriented flows (DoH over its TLS channel) use it
  directly via :meth:`Transport.supervise`.
* :meth:`Transport.exchange` — the datagram layer on top: one ephemeral
  :class:`~repro.netsim.socket.UdpSocket` per attempt, RNG-derived
  transaction IDs, byte accounting, and reply classification. Replies
  the classifier rejects (wrong txid, unparsable, spoofed source) leave
  the exchange pending; replies after completion are suppressed and
  counted, never delivered twice — which is what makes link-level
  duplication (:class:`~repro.netsim.link.FaultModel`) safe for every
  protocol riding on the transport.

Determinism: the only randomness is the transaction-ID stream handed in
by the caller, so two runs with the same seeds produce byte-identical
wire traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.netsim.address import Endpoint
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator, Timer
from repro.netsim.socket import UdpSocket
from repro.telemetry.registry import current_registry
from repro.telemetry.trace import Span, Tracer, current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.host import Host


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout/retry schedule for one exchange.

    :param timeout: first attempt's timeout in seconds.
    :param retries: additional attempts after the first.
    :param backoff: multiplier applied to the timeout per retry
        (1.0 = the historical fixed-timeout behaviour of the clients).
    :param max_timeout: optional cap on the backed-off timeout.
    """

    timeout: float = 3.0
    retries: int = 0
    backoff: float = 1.0
    max_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.max_timeout is not None and self.max_timeout < self.timeout:
            raise ValueError("max_timeout must be >= timeout")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def timeout_for(self, attempt: int) -> float:
        """Timeout of the ``attempt``-th attempt (1-based)."""
        if not 1 <= attempt <= self.max_attempts:
            raise ValueError(f"attempt must be in [1, {self.max_attempts}]")
        value = self.timeout * (self.backoff ** (attempt - 1))
        if self.max_timeout is not None:
            value = min(value, self.max_timeout)
        return value

    def total_budget(self) -> float:
        """Worst-case virtual time the whole exchange may take."""
        return sum(self.timeout_for(a) for a in range(1, self.max_attempts + 1))


@dataclass(frozen=True, slots=True)
class AttemptInfo:
    """Identity of one attempt, handed to the request builder."""

    index: int                      # 1-based attempt number
    txid: Optional[int] = None      # transaction ID, when the transport
    #                                 draws one for this exchange


@dataclass(slots=True)
class ExchangeReport:
    """Everything one finished exchange can tell its owner."""

    value: Any = None               # what the classifier accepted
    timed_out: bool = False
    attempts: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    rtt: Optional[float] = None     # last attempt's send → accept delay
    bytes_sent: int = 0
    bytes_received: int = 0
    rejected_replies: int = 0       # classified as not-ours while pending
    suppressed_replies: int = 0     # duplicates / late arrivals after done

    @property
    def elapsed(self) -> float:
        """Whole-exchange virtual duration (all attempts)."""
        return self.finished_at - self.started_at


class PendingExchange:
    """One supervised exchange: attempt scheduling + exactly-once finish.

    ``begin_attempt`` is called once per attempt (1-based
    :class:`AttemptInfo`); the supervisor then arms the attempt's
    timeout. Whoever observes the response calls :meth:`resolve` with
    the terminal value; when every attempt times out the report is
    delivered with ``timed_out=True``. ``resolve`` after completion is
    suppressed (and counted), never delivered twice.
    """

    __slots__ = ("_simulator", "_policy", "_begin_attempt", "_on_complete",
                 "_label", "_next_txid", "_on_cancel", "_report",
                 "_finished", "_attempt_started_at", "_timer",
                 "_tracer", "_span", "_attempt_span")

    def __init__(self, simulator: Simulator, policy: RetryPolicy,
                 begin_attempt: Callable[[AttemptInfo], None],
                 on_complete: Callable[[ExchangeReport], None],
                 label: str = "exchange",
                 next_txid: Optional[Callable[[], int]] = None,
                 on_cancel: Optional[Callable[[], None]] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self._simulator = simulator
        self._policy = policy
        self._begin_attempt = begin_attempt
        self._on_complete = on_complete
        self._label = label
        self._next_txid = next_txid
        self._on_cancel = on_cancel
        self._report = ExchangeReport()
        self._finished = False
        self._attempt_started_at = 0.0
        self._timer = Timer(simulator, self._on_timeout, label=label)
        # The exchange and current-attempt spans. The attempt span is
        # re-activated explicitly whenever control re-enters through a
        # simulator callback hop (timeout firing, reply delivery), so
        # children recorded there still parent under the right attempt.
        self._tracer = tracer
        self._span: Optional[Span] = None
        self._attempt_span: Optional[Span] = None

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def attempts(self) -> int:
        return self._report.attempts

    @property
    def report(self) -> ExchangeReport:
        return self._report

    @property
    def attempt_span(self) -> Optional[Span]:
        """The open span of the in-flight attempt (``None`` untraced) —
        reply handlers re-activate it so decode spans parent here."""
        return self._attempt_span

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "PendingExchange":
        """Launch the first attempt; returns self for chaining."""
        self._report.started_at = self._simulator.now
        if self._tracer is not None:
            self._span = self._tracer.begin(
                "transport.exchange", attrs={"label": self._label})
        self._start_attempt()
        return self

    def resolve(self, value: Any) -> None:
        """Deliver the exchange's terminal value (first call wins)."""
        if self._finished:
            self._report.suppressed_replies += 1
            return
        self._report.value = value
        self._report.rtt = self._simulator.now - self._attempt_started_at
        if self._attempt_span is not None:
            self._tracer.finish(self._attempt_span.set(outcome="accepted"))
            self._attempt_span = None
        self._finish()

    def cancel(self) -> None:
        """Abandon the exchange silently (no completion callback).

        Owner resources (the datagram layer's per-attempt socket) are
        released through the ``on_cancel`` hook.
        """
        if self._finished:
            return
        self._finished = True
        self._timer.cancel()
        if self._attempt_span is not None:
            self._tracer.finish(self._attempt_span.set(outcome="cancelled"))
            self._attempt_span = None
        if self._span is not None:
            self._tracer.finish(self._span.set(outcome="cancelled"))
            self._span = None
        if self._on_cancel is not None:
            self._on_cancel()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _start_attempt(self) -> None:
        attempt_index = self._report.attempts + 1
        self._report.attempts = attempt_index
        self._attempt_started_at = self._simulator.now
        txid = self._next_txid() if self._next_txid is not None else None
        attempt = AttemptInfo(index=attempt_index, txid=txid)
        tracer = self._tracer
        if tracer is None:
            self._begin_attempt(attempt)
        else:
            attrs = {"attempt": attempt_index}
            if txid is not None:
                attrs["txid"] = txid
            self._attempt_span = tracer.begin(
                "transport.attempt", parent=self._span, attrs=attrs)
            with tracer.scope(self._attempt_span):
                self._begin_attempt(attempt)
        if not self._finished:
            self._timer.start(self._policy.timeout_for(attempt_index))

    def _on_timeout(self) -> None:
        if self._finished:
            return
        if self._attempt_span is not None:
            self._tracer.finish(self._attempt_span.set(outcome="timeout"))
            self._attempt_span = None
        if self._report.attempts < self._policy.max_attempts:
            self._start_attempt()
            return
        self._report.timed_out = True
        self._finish()

    def _finish(self) -> None:
        self._finished = True
        self._report.finished_at = self._simulator.now
        self._timer.cancel()
        if self._span is not None:
            report = self._report
            self._span.set(attempts=report.attempts,
                           timed_out=report.timed_out)
            if report.timed_out:
                # Every attempt the policy allowed has timed out: the
                # exchange gave up for good, which is the signal chaos
                # experiments grep traces for (distinct from a single
                # attempt timing out and a retry succeeding).
                self._span.set(gave_up=True)
            if report.rtt is not None:
                self._span.set(rtt=report.rtt)
            self._tracer.finish(self._span)
        self._on_complete(self._report)


# A classifier sees (datagram, attempt) and returns the accepted value,
# or None to keep waiting (not ours / malformed / spoofed).
ReplyClassifier = Callable[[Datagram, AttemptInfo], Optional[Any]]
RequestBuilder = Callable[[AttemptInfo], bytes]
CompletionCallback = Callable[[ExchangeReport], None]


class DatagramExchange:
    """One datagram request/response exchange (created by
    :meth:`Transport.exchange`; not instantiated directly).

    Per attempt it closes the previous attempt's socket, binds a fresh
    ephemeral one, builds the request (with a fresh transaction ID when
    the transport draws them) and sends it; the classifier filters
    inbound datagrams. Closing the per-attempt socket is also what
    suppresses late and duplicated replies: once the exchange finishes
    (or retries onto a new port) the old port is unbound and the
    network drops stragglers, exactly as a real stack would.
    """

    __slots__ = ("_transport", "_destination", "_build_request", "_classify",
                 "_on_complete", "_socket", "_attempt", "_pending")

    def __init__(self, transport: "Transport", destination: Endpoint,
                 build_request: RequestBuilder, classify: ReplyClassifier,
                 on_complete: CompletionCallback, policy: RetryPolicy,
                 label: str, want_txid: bool) -> None:
        self._transport = transport
        self._destination = destination
        self._build_request = build_request
        self._classify = classify
        self._on_complete = on_complete
        self._socket: Optional[UdpSocket] = None
        self._attempt = AttemptInfo(index=0)
        self._pending = PendingExchange(
            transport.simulator, policy, self._begin_attempt, self._finish,
            label=label,
            next_txid=transport.draw_txid if want_txid else None,
            on_cancel=self._close_socket,
            tracer=transport.tracer)

    @property
    def pending(self) -> PendingExchange:
        return self._pending

    @property
    def report(self) -> ExchangeReport:
        return self._pending.report

    def start(self) -> "DatagramExchange":
        self._pending.start()
        span = self._pending._span
        if span is not None:
            span.set(dest=str(self._destination))
        return self

    # ------------------------------------------------------------------
    # Attempt plumbing.
    # ------------------------------------------------------------------

    def _begin_attempt(self, attempt: AttemptInfo) -> None:
        self._attempt = attempt
        self._close_socket()
        self._socket = self._transport.host.ephemeral_socket(self._on_datagram)
        payload = self._build_request(attempt)
        self._pending.report.bytes_sent += len(payload)
        self._socket.sendto(self._destination, payload)

    def _on_datagram(self, datagram: Datagram) -> None:
        report = self._pending.report
        if self._pending.finished:
            report.suppressed_replies += 1
            return
        report.bytes_received += datagram.size
        # Delivery arrives through a simulator callback hop, so the
        # attempt's trace context is re-activated here: decode spans
        # emitted by the classifier parent under the attempt.
        tracer = self._transport.tracer
        attempt_span = self._pending.attempt_span
        if tracer is not None and attempt_span is not None:
            with tracer.scope(attempt_span):
                value = self._classify(datagram, self._attempt)
        else:
            value = self._classify(datagram, self._attempt)
        if value is None:
            report.rejected_replies += 1
            return
        self._pending.resolve(value)

    def _finish(self, report: ExchangeReport) -> None:
        self._close_socket()
        self._on_complete(report)

    def _close_socket(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None


class Transport:
    """Request/response engine bound to one host.

    :param host: the machine exchanges originate from.
    :param simulator: virtual-time engine for timeouts and metrics.
    :param rng: stream for transaction IDs (one draw per attempt).
        Callers that identify transactions some other way (NTP uses the
        origin timestamp) simply never ask for txids.
    :param txid_bits: width of the transaction-ID space.
    """

    def __init__(self, host: "Host", simulator: Simulator,
                 rng: Optional[random.Random] = None,
                 txid_bits: int = 16) -> None:
        if txid_bits < 1:
            raise ValueError(f"txid_bits must be >= 1, got {txid_bits}")
        self._host = host
        self._simulator = simulator
        self._rng = rng or random.Random(0)
        self._txid_bits = txid_bits
        self._exchanges_started = 0
        self._exchanges_timed_out = 0
        # Captured once at construction: with no registry installed the
        # per-exchange publish below is skipped entirely; likewise with
        # no tracer installed no exchange/attempt spans are allocated.
        self._telemetry = current_registry()
        self._tracer = current_tracer()
        # (metric name, label) -> instrument, filled on first use so the
        # per-exchange publish is dict hits instead of registry lookups.
        # Instruments are still created at the same first-use points as
        # the uncached path, keeping snapshots identical.
        self._instruments: dict = {}

    @property
    def host(self) -> "Host":
        return self._host

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def tracer(self) -> Optional[Tracer]:
        """The tracer captured at construction (``None`` = untraced)."""
        return self._tracer

    @property
    def exchanges_started(self) -> int:
        return self._exchanges_started

    @property
    def exchanges_timed_out(self) -> int:
        return self._exchanges_timed_out

    def draw_txid(self) -> int:
        """Draw one transaction ID from the transport's RNG stream."""
        return self._rng.randrange(1 << self._txid_bits)

    # ------------------------------------------------------------------
    # The two entry points.
    # ------------------------------------------------------------------

    def exchange(self, destination: Endpoint, *,
                 build_request: RequestBuilder,
                 classify: ReplyClassifier,
                 on_complete: CompletionCallback,
                 policy: RetryPolicy,
                 label: str = "exchange",
                 want_txid: bool = True) -> DatagramExchange:
        """Run a datagram request/response exchange; ``on_complete``
        fires exactly once with the :class:`ExchangeReport`."""
        self._exchanges_started += 1
        exchange = DatagramExchange(
            self, destination, build_request, classify,
            self._finalize(on_complete, label), policy, label, want_txid)
        return exchange.start()

    def supervise(self, *, begin_attempt: Callable[[AttemptInfo], None],
                  on_complete: CompletionCallback,
                  policy: RetryPolicy,
                  label: str = "supervised") -> PendingExchange:
        """Attempt supervision without the datagram layer, for flows
        that own their channel (DoH's per-query TLS connection). The
        caller starts its attempt in ``begin_attempt`` and reports the
        terminal value through :meth:`PendingExchange.resolve`."""
        self._exchanges_started += 1
        pending = PendingExchange(
            self._simulator, policy, begin_attempt,
            self._finalize(on_complete, label), label=label,
            tracer=self._tracer)
        return pending.start()

    def _finalize(self, on_complete: CompletionCallback,
                  label: str) -> CompletionCallback:
        def wrapped(report: ExchangeReport) -> None:
            if report.timed_out:
                self._exchanges_timed_out += 1
            if self._telemetry is not None:
                self._publish(report, label)
            on_complete(report)
        return wrapped

    def _counter(self, name: str, label: str):
        key = (name, label)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._telemetry.counter(name, label=label)
            self._instruments[key] = instrument
        return instrument

    def _histogram(self, name: str, label: str):
        key = (name, label)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._telemetry.histogram(name, label=label)
            self._instruments[key] = instrument
        return instrument

    def _publish(self, report: ExchangeReport, label: str) -> None:
        """One completed exchange's metrics, keyed by exchange label."""
        self._counter("transport.exchanges", label).inc()
        self._counter("transport.attempts", label).inc(report.attempts)
        if report.timed_out:
            self._counter("transport.timeouts", label).inc()
            # Retry exhaustion, named explicitly: the whole policy
            # budget (first attempt plus every retry) timed out and the
            # caller got nothing. Availability dashboards key on this
            # rather than inferring it from timeouts vs attempts.
            self._counter("transport.exhausted", label).inc()
        elif report.rtt is not None:
            self._histogram("transport.rtt", label).observe(report.rtt)
        if report.bytes_sent:
            self._counter("transport.bytes_sent",
                          label).inc(report.bytes_sent)
        if report.bytes_received:
            self._counter("transport.bytes_received",
                          label).inc(report.bytes_received)
        if report.rejected_replies:
            self._counter("transport.rejected_replies",
                          label).inc(report.rejected_replies)
        if report.suppressed_replies:
            self._counter("transport.suppressed_replies",
                          label).inc(report.suppressed_replies)
