"""IP addressing for the simulated Internet.

We wrap :mod:`ipaddress` rather than exposing it directly so that the
rest of the codebase deals with one hashable, comparable ``IPAddress``
type covering both families, plus an ``Endpoint`` (address, port) pair.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union

_IpObject = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


@total_ordering
class IPAddress:
    """An immutable IPv4 or IPv6 address.

    >>> a = IPAddress("192.0.2.1")
    >>> a.family
    4
    >>> IPAddress("2001:db8::1").family
    6
    >>> IPAddress("192.0.2.1") == IPAddress("192.0.2.1")
    True
    """

    __slots__ = ("_inner", "_hash")

    def __init__(self, text: Union[str, "IPAddress", _IpObject]) -> None:
        if isinstance(text, IPAddress):
            self._inner: _IpObject = text._inner
            self._hash: "int | None" = text._hash
            return
        if isinstance(text, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            self._inner = text
        else:
            self._inner = ipaddress.ip_address(str(text))
        self._hash = None

    @property
    def family(self) -> int:
        """4 for IPv4, 6 for IPv6."""
        return self._inner.version

    @property
    def is_ipv4(self) -> bool:
        return self._inner.version == 4

    @property
    def is_ipv6(self) -> bool:
        return self._inner.version == 6

    @property
    def packed(self) -> bytes:
        """Network-order binary representation (4 or 16 bytes)."""
        return self._inner.packed

    @classmethod
    def from_packed(cls, data: bytes) -> "IPAddress":
        """Build from 4-byte (IPv4) or 16-byte (IPv6) wire form."""
        if len(data) == 4:
            return cls(ipaddress.IPv4Address(data))
        if len(data) == 16:
            return cls(ipaddress.IPv6Address(data))
        raise ValueError(f"packed address must be 4 or 16 bytes, got {len(data)}")

    def __str__(self) -> str:
        return str(self._inner)

    def __repr__(self) -> str:
        return f"IPAddress({str(self._inner)!r})"

    def __hash__(self) -> int:
        # Addresses key every socket/host dict on the delivery path;
        # ipaddress objects recompute their hash per call, so cache it.
        value = self._hash
        if value is None:
            value = self._hash = hash(self._inner)
        return value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self._inner == other._inner
        if isinstance(other, str):
            try:
                return self._inner == ipaddress.ip_address(other)
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "IPAddress") -> bool:
        if not isinstance(other, IPAddress):
            return NotImplemented
        # Order first by family then by numeric value, like most tooling.
        if self._inner.version != other._inner.version:
            return self._inner.version < other._inner.version
        return int(self._inner) < int(other._inner)


def ip(text: Union[str, IPAddress]) -> IPAddress:
    """Shorthand constructor: ``ip("192.0.2.1")``."""
    return IPAddress(text)


@dataclass(frozen=True, slots=True)
class Endpoint:
    """A transport endpoint: (IP address, UDP/TCP port).

    >>> Endpoint(ip("192.0.2.1"), 53)
    Endpoint(192.0.2.1:53)
    """

    address: IPAddress
    port: int

    def __post_init__(self) -> None:
        if not isinstance(self.address, IPAddress):
            object.__setattr__(self, "address", IPAddress(self.address))
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")

    def __repr__(self) -> str:
        return f"Endpoint({self.address}:{self.port})"

    def __str__(self) -> str:
        if self.address.is_ipv6:
            return f"[{self.address}]:{self.port}"
        return f"{self.address}:{self.port}"


class AddressAllocator:
    """Hands out unique addresses from documentation/test prefixes.

    Keeps scenario-building code free of hard-coded address strings.

    >>> alloc = AddressAllocator()
    >>> first = alloc.next_ipv4()
    >>> second = alloc.next_ipv4()
    >>> first != second
    True
    """

    def __init__(
        self,
        ipv4_network: str = "10.0.0.0/8",
        ipv6_network: str = "fd00::/32",
    ) -> None:
        self._ipv4_hosts: Iterator[_IpObject] = ipaddress.ip_network(
            ipv4_network
        ).hosts()
        self._ipv6_hosts: Iterator[_IpObject] = ipaddress.ip_network(
            ipv6_network
        ).hosts()

    def next_ipv4(self) -> IPAddress:
        """Allocate the next unused IPv4 address."""
        return IPAddress(next(self._ipv4_hosts))

    def next_ipv6(self) -> IPAddress:
        """Allocate the next unused IPv6 address."""
        return IPAddress(next(self._ipv6_hosts))

    def next_for_family(self, family: int) -> IPAddress:
        """Allocate from the requested family (4 or 6)."""
        if family == 4:
            return self.next_ipv4()
        if family == 6:
            return self.next_ipv6()
        raise ValueError(f"family must be 4 or 6, got {family}")
