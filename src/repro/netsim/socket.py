"""UDP-style sockets for simulated hosts.

A socket is bound to one (address, port) pair on its host and delivers
incoming datagrams to a handler callback. Handlers receive the full
:class:`~repro.netsim.packet.Datagram` so that protocol code can see the
claimed source address — and be fooled by spoofed ones, like real code.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.packet import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.host import Host

DatagramHandler = Callable[[Datagram], None]


class SocketClosedError(RuntimeError):
    """Raised when sending on a closed socket."""


class UdpSocket:
    """A bound datagram socket.

    Created via :meth:`repro.netsim.host.Host.bind`; not instantiated
    directly by user code.
    """

    __slots__ = ("_host", "_endpoint", "_handler", "_closed", "_sent",
                 "_received")

    def __init__(self, host: "Host", address: IPAddress, port: int,
                 handler: Optional[DatagramHandler] = None) -> None:
        self._host = host
        self._endpoint = Endpoint(address, port)
        self._handler = handler
        self._closed = False
        self._sent = 0
        self._received = 0

    @property
    def endpoint(self) -> Endpoint:
        """The local (address, port) this socket is bound to."""
        return self._endpoint

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def datagrams_sent(self) -> int:
        return self._sent

    @property
    def datagrams_received(self) -> int:
        return self._received

    def on_datagram(self, handler: DatagramHandler) -> None:
        """Install (or replace) the receive handler."""
        self._handler = handler

    def sendto(self, dst: Endpoint, payload: bytes) -> Datagram:
        """Send ``payload`` to ``dst``; returns the in-flight datagram."""
        if self._closed:
            raise SocketClosedError(f"socket {self._endpoint} is closed")
        datagram = Datagram(src=self._endpoint, dst=dst, payload=payload)
        self._sent += 1
        self._host.transmit(datagram)
        return datagram

    def reply(self, request: Datagram, payload: bytes) -> Datagram:
        """Send ``payload`` back to the source of ``request``."""
        return self.sendto(request.src, payload)

    def deliver(self, datagram: Datagram) -> None:
        """Called by the host when a datagram arrives for this socket."""
        if self._closed:
            return
        self._received += 1
        if self._handler is not None:
            self._handler(datagram)

    def close(self) -> None:
        """Release the port binding; further sends raise."""
        if not self._closed:
            self._closed = True
            self._host.release_socket(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"UdpSocket({self._endpoint}, {state})"
