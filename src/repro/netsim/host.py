"""Simulated hosts: named machines attached to a topology node.

A host owns one or more IP addresses, binds sockets, and hands outbound
datagrams to the :class:`~repro.netsim.internet.Internet` for routed
delivery. Ephemeral source ports are allocated from a per-host counter
(optionally randomised — source-port randomisation is one of the
defences the paper's off-path attacker has to beat).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.packet import Datagram
from repro.netsim.socket import DatagramHandler, UdpSocket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.internet import Internet

EPHEMERAL_RANGE = (32768, 60999)


class PortInUseError(RuntimeError):
    """Raised when binding to an already-bound (address, port)."""


class Host:
    """A machine attached to a topology node.

    :param name: unique human-readable host name ("client", "ns1", ...).
    :param node: topology node the host attaches to.
    :param addresses: the host's IP addresses (at least one).
    :param randomize_ports: draw ephemeral ports randomly from the
        ephemeral range (RFC 6056 style) instead of sequentially. Port
        predictability is exactly what classic off-path DNS attacks
        exploit, so scenarios can turn it off to model weak stacks.
    """

    __slots__ = ("_name", "_node", "_addresses", "_randomize_ports", "_rng",
                 "_internet", "_sockets", "_next_sequential_port")

    def __init__(self, name: str, node: str, addresses: List[IPAddress],
                 randomize_ports: bool = True,
                 rng: Optional[random.Random] = None) -> None:
        if not addresses:
            raise ValueError(f"host {name!r} needs at least one address")
        self._name = name
        self._node = node
        self._addresses = [IPAddress(a) for a in addresses]
        self._randomize_ports = randomize_ports
        self._rng = rng or random.Random(0)
        self._internet: Optional["Internet"] = None
        self._sockets: Dict[Endpoint, UdpSocket] = {}
        self._next_sequential_port = EPHEMERAL_RANGE[0]

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def node(self) -> str:
        """Topology node this host attaches to."""
        return self._node

    @property
    def addresses(self) -> List[IPAddress]:
        return list(self._addresses)

    @property
    def randomize_ports(self) -> bool:
        """Whether ephemeral ports are drawn randomly (RFC 6056)."""
        return self._randomize_ports

    @randomize_ports.setter
    def randomize_ports(self, value: bool) -> None:
        # Mutable so attack experiments can weaken a deployed host's
        # stack without rebuilding the scenario around it.
        self._randomize_ports = bool(value)

    @property
    def next_sequential_port(self) -> int:
        """The next ephemeral port a sequential-allocation stack will
        hand out — the off-path attacker's port oracle against hosts
        with ``randomize_ports=False`` (the paper's zero-port-entropy
        assumption).  Meaningless while ports are randomised."""
        return self._next_sequential_port

    @property
    def primary_address(self) -> IPAddress:
        return self._addresses[0]

    def address_for_family(self, family: int) -> IPAddress:
        """First address of the given family; raises if none."""
        for address in self._addresses:
            if address.family == family:
                return address
        raise LookupError(f"host {self._name} has no IPv{family} address")

    def owns_address(self, address: IPAddress) -> bool:
        return IPAddress(address) in self._addresses

    # ------------------------------------------------------------------
    # Network attachment.
    # ------------------------------------------------------------------

    def attach(self, internet: "Internet") -> None:
        """Called by :meth:`Internet.add_host`; wires up transmission."""
        self._internet = internet

    def transmit(self, datagram: Datagram) -> None:
        """Hand an outbound datagram to the network for delivery."""
        if self._internet is None:
            raise RuntimeError(f"host {self._name} is not attached to a network")
        self._internet.send(datagram, origin_host=self)

    # ------------------------------------------------------------------
    # Sockets.
    # ------------------------------------------------------------------

    def bind(self, port: int, handler: Optional[DatagramHandler] = None,
             address: Optional[IPAddress] = None) -> UdpSocket:
        """Bind a socket on a well-known port."""
        bind_address = IPAddress(address) if address else self.primary_address
        if not self.owns_address(bind_address):
            raise ValueError(
                f"host {self._name} does not own address {bind_address}"
            )
        endpoint = Endpoint(bind_address, port)
        if endpoint in self._sockets:
            raise PortInUseError(f"{endpoint} already bound on {self._name}")
        sock = UdpSocket(self, bind_address, port, handler)
        self._sockets[endpoint] = sock
        return sock

    def ephemeral_socket(self, handler: Optional[DatagramHandler] = None,
                         address: Optional[IPAddress] = None) -> UdpSocket:
        """Bind a socket on a fresh ephemeral port."""
        bind_address = IPAddress(address) if address else self.primary_address
        for _ in range(2048):
            port = self._pick_ephemeral_port()
            endpoint = Endpoint(bind_address, port)
            if endpoint not in self._sockets:
                sock = UdpSocket(self, bind_address, port, handler)
                self._sockets[endpoint] = sock
                return sock
        raise PortInUseError(f"host {self._name} ran out of ephemeral ports")

    def _pick_ephemeral_port(self) -> int:
        low, high = EPHEMERAL_RANGE
        if self._randomize_ports:
            return self._rng.randint(low, high)
        port = self._next_sequential_port
        self._next_sequential_port += 1
        if self._next_sequential_port > high:
            self._next_sequential_port = low
        return port

    def release_socket(self, sock: UdpSocket) -> None:
        """Called by :meth:`UdpSocket.close`."""
        self._sockets.pop(sock.endpoint, None)

    def deliver(self, datagram: Datagram) -> bool:
        """Deliver an inbound datagram to the matching socket.

        Returns True if a socket accepted it; unmatched datagrams are
        dropped silently, as a real stack would send ICMP unreachable
        that we do not model.
        """
        sock = self._sockets.get(datagram.dst)
        if sock is None or sock.closed:
            return False
        sock.deliver(datagram)
        return True

    @property
    def open_sockets(self) -> List[UdpSocket]:
        return [s for s in self._sockets.values() if not s.closed]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        addresses = ", ".join(str(a) for a in self._addresses)
        return f"Host({self._name}@{self._node}, [{addresses}])"
