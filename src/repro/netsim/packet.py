"""Packet models for the simulated network.

The simulation is datagram-oriented: DNS-over-UDP sends raw
:class:`Datagram` payloads, while the DoH stack layers a simulated
secure stream (see :mod:`repro.doh.tls`) on top of datagrams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.netsim.address import Endpoint

_packet_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Datagram:
    """A UDP-style datagram.

    ``src`` is whatever the sender *claims* — the simulated network, like
    the real one, does not authenticate source addresses, which is what
    makes off-path spoofing attacks possible.

    ``packet_id`` is a simulation-unique identifier used for tracing and
    by attacker taps to deduplicate observations.
    """

    src: Endpoint
    dst: Endpoint
    payload: bytes
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Marks packets injected by an attacker (for accounting only; no
    # protocol code may branch on it — that would be cheating).
    spoofed: bool = False
    # Optional logical channel label, e.g. "tls:<session>" for stream
    # segments carried over the datagram layer.
    channel: Optional[str] = None

    @property
    def size(self) -> int:
        """Payload size in bytes (headers are not modelled)."""
        return len(self.payload)

    def reply_template(self, payload: bytes) -> "Datagram":
        """Build a response datagram with src/dst swapped."""
        return Datagram(src=self.dst, dst=self.src, payload=payload,
                        channel=self.channel)

    def with_payload(self, payload: bytes) -> "Datagram":
        """Copy with a different payload (used by tampering attackers)."""
        return replace(self, payload=payload, packet_id=next(_packet_ids))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = " spoofed" if self.spoofed else ""
        return (f"Datagram(#{self.packet_id} {self.src} -> {self.dst}, "
                f"{len(self.payload)}B{tag})")
