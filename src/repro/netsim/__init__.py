"""Discrete-event simulation of a small Internet.

This subpackage substitutes for the live Internet the paper's system runs
on. It provides:

* :mod:`repro.netsim.simulator` — a deterministic discrete-event engine
  with virtual time;
* :mod:`repro.netsim.address` — IPv4/IPv6 endpoint addressing;
* :mod:`repro.netsim.packet` — UDP-style datagrams and stream segments;
* :mod:`repro.netsim.link` / :mod:`repro.netsim.topology` — links with
  latency/loss and a routed graph of network nodes (networkx-backed);
* :mod:`repro.netsim.host` / :mod:`repro.netsim.socket` — hosts with
  bound sockets and timer support;
* :mod:`repro.netsim.internet` — the assembled network, including the
  interposition points used by :mod:`repro.attacks` (on-path taps and
  off-path spoofed injection);
* :mod:`repro.netsim.transport` — the unified request/response engine
  (timeouts, backoff retries, transaction IDs, duplicate suppression)
  every protocol client rides on.

Determinism: all randomness (loss, jitter) is drawn from named streams of
a :class:`repro.util.RngRegistry`, so a scenario is exactly reproducible
from its root seed.
"""

from repro.netsim.address import Endpoint, IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import DeliveryReceipt, Internet, LinkTap, TapAction, TapVerdict
from repro.netsim.link import FaultModel, Link, LinkProfile
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Event, Simulator
from repro.netsim.socket import UdpSocket
from repro.netsim.topology import Topology
from repro.netsim.transport import (
    AttemptInfo,
    DatagramExchange,
    ExchangeReport,
    PendingExchange,
    RetryPolicy,
    Transport,
)

__all__ = [
    "AttemptInfo",
    "Endpoint",
    "IPAddress",
    "ip",
    "Host",
    "Internet",
    "DatagramExchange",
    "DeliveryReceipt",
    "ExchangeReport",
    "FaultModel",
    "LinkTap",
    "PendingExchange",
    "RetryPolicy",
    "TapAction",
    "TapVerdict",
    "Transport",
    "Link",
    "LinkProfile",
    "Datagram",
    "Event",
    "Simulator",
    "UdpSocket",
    "Topology",
]
