"""Routed topology of the simulated Internet.

Nodes are named routers/vantage points ("eu-west", "us-east", ...);
hosts attach to a node. Routing is shortest-path by expected latency,
computed with networkx and cached until the topology changes.

The topology is what gives the paper's threat model its teeth: an
on-path attacker controls a *subset of links*, so whether it can touch a
flow depends on which route the flow takes — exactly the "attacker
controls some but not all paths" assumption in the paper.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.netsim.link import FaultModel, Link, LinkProfile
from repro.util.rng import RngRegistry


class RoutingError(RuntimeError):
    """Raised when no route exists between two attachment points."""


class Topology:
    """A graph of named nodes joined by :class:`Link` objects.

    >>> from repro.util.rng import RngRegistry
    >>> topo = Topology(RngRegistry(1))
    >>> topo.add_node("a"); topo.add_node("b")
    >>> _ = topo.add_link("a", "b", LinkProfile.lan())
    >>> [link.name for link in topo.route("a", "b")]
    ['a--b']
    """

    def __init__(self, rng_registry: Optional[RngRegistry] = None) -> None:
        self._graph = nx.Graph()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._rng_registry = rng_registry or RngRegistry(0)
        self._route_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._route_nodes_cache: Dict[Tuple[str, str], List[str]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone edit counter: bumped whenever nodes, links or link
        fault models change. The :class:`~repro.netsim.internet.Internet`
        keys its compiled flight plans on it, so any topology edit
        invalidates every cached plan."""
        return self._version

    @property
    def nodes(self) -> List[str]:
        """All node names, sorted for determinism."""
        return sorted(self._graph.nodes)

    @property
    def links(self) -> List[Link]:
        """All links, sorted by canonical name for determinism."""
        return sorted(self._links.values(), key=lambda link: link.name)

    def add_node(self, name: str) -> None:
        """Add a routing node; idempotent."""
        self._graph.add_node(name)
        self._invalidate_routes()

    def _invalidate_routes(self) -> None:
        self._route_cache.clear()
        self._route_nodes_cache.clear()
        self._version += 1

    def has_node(self, name: str) -> bool:
        return name in self._graph

    def add_link(self, a: str, b: str, profile: LinkProfile) -> Link:
        """Join nodes ``a`` and ``b`` with a link; creates nodes if needed."""
        key = self._key(a, b)
        if key in self._links:
            raise ValueError(f"link {a}--{b} already exists")
        rng = self._rng_registry.stream("link", *key)
        link = Link(a, b, profile, rng)
        self._links[key] = link
        # Weight by expected latency so routing prefers fast paths.
        self._graph.add_edge(a, b, weight=profile.latency + profile.jitter / 2.0)
        self._invalidate_routes()
        return link

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The direct link between two nodes, if any."""
        return self._links.get(self._key(a, b))

    def set_fault_model(self, a: str, b: str,
                        model: Optional[FaultModel]) -> Link:
        """Install (or clear, with ``None``) a fault model on a link.

        The model's randomness comes from the registry's dedicated
        ``("fault", a, b)`` stream, so fault decisions are reproducible
        and never perturb the link's intrinsic latency/loss stream.
        """
        key = self._key(a, b)
        link = self._links.get(key)
        if link is None:
            raise KeyError(f"no link {a}--{b}")
        rng = (self._rng_registry.stream("fault", *key)
               if model is not None and model.active else None)
        link.install_fault(model, rng)
        # Routes are unchanged, but compiled flight plans may have
        # classified the link's dynamics — force a recompile.
        self._version += 1
        return link

    def remove_link(self, a: str, b: str) -> None:
        """Remove a link (e.g. to simulate a partition)."""
        key = self._key(a, b)
        if key not in self._links:
            raise KeyError(f"no link {a}--{b}")
        del self._links[key]
        self._graph.remove_edge(a, b)
        self._invalidate_routes()

    def route(self, src: str, dst: str) -> List[Link]:
        """Shortest-latency route as an ordered list of links.

        An empty list means ``src == dst`` (loopback delivery).
        Raises :class:`RoutingError` when the nodes are disconnected.
        """
        if src == dst:
            return []
        cache_key = (src, dst)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            return cached
        path_nodes = self._shortest_path(src, dst)
        links = [
            self._links[self._key(a, b)]
            for a, b in zip(path_nodes, path_nodes[1:])
        ]
        self._route_cache[cache_key] = links
        # One Dijkstra serves both caches: flight-plan compilation asks
        # for the links and the node names back to back.
        self._route_nodes_cache.setdefault(cache_key, path_nodes)
        return links

    def route_nodes(self, src: str, dst: str) -> List[str]:
        """Node names along the route, inclusive of both ends.

        Cached like :meth:`route` — the per-packet delivery path must
        never pay a shortest-path computation in steady state.
        """
        if src == dst:
            return [src]
        cache_key = (src, dst)
        cached = self._route_nodes_cache.get(cache_key)
        if cached is None:
            cached = self._shortest_path(src, dst)
            self._route_nodes_cache[cache_key] = cached
        return list(cached)

    def _shortest_path(self, src: str, dst: str) -> List[str]:
        """The one place the repository asks networkx for a path."""
        if src not in self._graph or dst not in self._graph:
            raise RoutingError(f"unknown node in route {src} -> {dst}")
        try:
            return list(nx.shortest_path(self._graph, src, dst, weight="weight"))
        except nx.NetworkXNoPath as exc:
            raise RoutingError(f"no route from {src} to {dst}") from exc

    def expected_latency(self, src: str, dst: str) -> float:
        """Sum of expected one-way latencies along the route."""
        return sum(
            link.profile.latency + link.profile.jitter / 2.0
            for link in self.route(src, dst)
        )

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Prefab topologies used by the scenario builders.
    # ------------------------------------------------------------------

    @classmethod
    def star(cls, center: str, leaves: List[str],
             profile: Optional[LinkProfile] = None,
             rng_registry: Optional[RngRegistry] = None) -> "Topology":
        """A star: every leaf connects to ``center``."""
        topo = cls(rng_registry)
        topo.add_node(center)
        for leaf in leaves:
            topo.add_link(center, leaf, profile or LinkProfile.continental())
        return topo

    @classmethod
    def global_backbone(cls, rng_registry: Optional[RngRegistry] = None,
                        profile: Optional[LinkProfile] = None) -> "Topology":
        """A small model of the public Internet's regional structure.

        Six regions joined by a realistic mix of continental and
        trans-oceanic hops. Scenario builders attach clients, resolvers
        and nameservers to these regions.

        ``profile`` overrides *every* backbone hop with one uniform
        link — determinism harnesses use a zero-jitter profile here so
        cross-shard comparisons see identical transit draws.
        """
        topo = cls(rng_registry)
        regions = ["us-west", "us-east", "eu-west", "eu-central", "asia-east", "asia-south"]
        for region in regions:
            topo.add_node(region)
        continental = profile or LinkProfile.continental()
        oceanic = profile or LinkProfile.transoceanic()
        topo.add_link("us-west", "us-east", continental)
        topo.add_link("eu-west", "eu-central", continental)
        topo.add_link("asia-east", "asia-south", continental)
        topo.add_link("us-east", "eu-west", oceanic)
        topo.add_link("us-west", "asia-east", oceanic)
        topo.add_link("eu-central", "asia-south", oceanic)
        topo.add_link("eu-west", "asia-east", oceanic)
        return topo

    @classmethod
    def random_mesh(cls, node_count: int, extra_edges: int, seed: int,
                    rng_registry: Optional[RngRegistry] = None) -> "Topology":
        """A random connected mesh: a spanning tree plus random chords.

        Used by property tests and robustness benchmarks.
        """
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        topo = cls(rng_registry)
        rng = random.Random(seed)
        names = [f"n{i}" for i in range(node_count)]
        for name in names:
            topo.add_node(name)
        # Spanning tree: attach each node to a random earlier one.
        for index in range(1, node_count):
            parent = names[rng.randrange(index)]
            topo.add_link(names[index], parent, LinkProfile.continental())
        # Extra chords for path diversity (need at least two nodes).
        attempts = 0
        added = 0
        if node_count < 2:
            return topo
        while added < extra_edges and attempts < extra_edges * 20:
            attempts += 1
            a, b = rng.sample(names, 2)
            if topo.link_between(a, b) is None:
                topo.add_link(a, b, LinkProfile.continental())
                added += 1
        return topo
