"""Network links with latency, jitter, loss and injectable faults.

A :class:`Link` joins two topology nodes. Its :class:`LinkProfile`
captures the *intrinsic* performance characteristics; an optional
:class:`FaultModel` layers *imposed* degradation (extra loss, bounded
jitter, reordering displacement, duplication) on top — the knobs the
paper's availability experiments sweep. Per-packet decisions are drawn
from named random streams so runs are reproducible: the profile draws
from the link's own stream and the fault model from a separate
``("fault", a, b)`` stream, which keeps a fault-free run bit-identical
to one built before fault models existed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class LinkProfile:
    """Performance characteristics of a link.

    :param latency: one-way propagation delay in seconds.
    :param jitter: maximum uniform jitter added per packet, in seconds.
    :param loss: independent per-packet drop probability.
    """

    latency: float = 0.010
    jitter: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        check_non_negative(self.jitter, "jitter")
        check_probability(self.loss, "loss")

    @classmethod
    def lan(cls) -> "LinkProfile":
        """A sub-millisecond local link."""
        return cls(latency=0.0005, jitter=0.0001, loss=0.0)

    @classmethod
    def metro(cls) -> "LinkProfile":
        """A same-metro link (a few milliseconds)."""
        return cls(latency=0.003, jitter=0.001, loss=0.0)

    @classmethod
    def continental(cls) -> "LinkProfile":
        """A same-continent backbone hop."""
        return cls(latency=0.020, jitter=0.004, loss=0.0)

    @classmethod
    def transoceanic(cls) -> "LinkProfile":
        """A trans-oceanic backbone hop."""
        return cls(latency=0.070, jitter=0.010, loss=0.0)

    @classmethod
    def lossy(cls, loss: float, latency: float = 0.030) -> "LinkProfile":
        """A degraded link with the given drop probability."""
        return cls(latency=latency, jitter=latency / 4.0, loss=loss)


@dataclass(frozen=True)
class FaultModel:
    """Composable fault injection for one link.

    All effects are applied *independently per packet*, after the
    link's intrinsic profile, drawing from the link's dedicated fault
    stream in a fixed order (loss → duplication → jitter → reorder) so
    traces are reproducible from the seed alone.

    :param loss_rate: extra per-packet drop probability.
    :param jitter_s: extra uniform jitter in ``[0, jitter_s]`` seconds
        added to every surviving packet.
    :param reorder_window: displacement bound — with probability
        ``reorder_rate`` a packet is held back an extra uniform
        ``[0, reorder_window]`` seconds, letting later packets overtake
        it (how real queues reorder).
    :param reorder_rate: fraction of packets subject to the hold-back
        (only consulted when ``reorder_window`` is positive).
    :param duplicate_rate: per-packet probability that the link also
        delivers a second copy.
    :param duplicate_gap_s: how far behind the original the copy runs.
    """

    loss_rate: float = 0.0
    jitter_s: float = 0.0
    reorder_window: float = 0.0
    reorder_rate: float = 0.25
    duplicate_rate: float = 0.0
    duplicate_gap_s: float = 0.002

    def __post_init__(self) -> None:
        check_probability(self.loss_rate, "loss_rate")
        check_non_negative(self.jitter_s, "jitter_s")
        check_non_negative(self.reorder_window, "reorder_window")
        check_probability(self.reorder_rate, "reorder_rate")
        check_probability(self.duplicate_rate, "duplicate_rate")
        check_non_negative(self.duplicate_gap_s, "duplicate_gap_s")

    @property
    def active(self) -> bool:
        """Whether this model perturbs anything at all."""
        return (self.loss_rate > 0.0 or self.jitter_s > 0.0
                or self.reorder_window > 0.0 or self.duplicate_rate > 0.0)

    def compose(self, other: "FaultModel") -> "FaultModel":
        """Stack two fault models as if applied by independent stages:
        losses and duplications combine as independent events, jitter
        adds, and the wider reordering stage dominates.

        A model whose reordering (or duplication) is inactive
        contributes nothing to the combined rate/gap — its defaults for
        the dependent knobs are placeholders, not effects — so an
        all-defaults ``FaultModel()`` is a compose identity.
        """
        self_reorder = self.reorder_rate if self.reorder_window > 0.0 else 0.0
        other_reorder = (other.reorder_rate
                         if other.reorder_window > 0.0 else 0.0)
        duplicating = [model for model in (self, other)
                       if model.duplicate_rate > 0.0]
        return FaultModel(
            loss_rate=1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate),
            jitter_s=self.jitter_s + other.jitter_s,
            reorder_window=max(self.reorder_window, other.reorder_window),
            reorder_rate=1.0 - (1.0 - self_reorder) * (1.0 - other_reorder),
            duplicate_rate=1.0 - (1.0 - self.duplicate_rate)
            * (1.0 - other.duplicate_rate),
            duplicate_gap_s=(max(m.duplicate_gap_s for m in duplicating)
                             if duplicating else self.duplicate_gap_s),
        )

    def scaled(self, factor: float) -> "FaultModel":
        """A model with the loss/duplication probabilities scaled (and
        clamped); convenient for sweeping severity as one axis."""
        check_non_negative(factor, "factor")
        return replace(
            self,
            loss_rate=min(1.0, self.loss_rate * factor),
            duplicate_rate=min(1.0, self.duplicate_rate * factor),
        )

    # ------------------------------------------------------------------
    # Per-packet sampling (called by the owning Link, in order).
    # ------------------------------------------------------------------

    def sample_drop(self, rng: random.Random) -> bool:
        return self.loss_rate > 0.0 and rng.random() < self.loss_rate

    def sample_extra_delay(self, rng: random.Random) -> float:
        extra = 0.0
        if self.jitter_s > 0.0:
            extra += rng.uniform(0.0, self.jitter_s)
        if self.reorder_window > 0.0 and rng.random() < self.reorder_rate:
            extra += rng.uniform(0.0, self.reorder_window)
        return extra

    def sample_duplicate(self, rng: random.Random) -> Optional[float]:
        """Gap (seconds) behind the original for a duplicate copy, or
        ``None`` when this packet is not duplicated."""
        if self.duplicate_rate > 0.0 and rng.random() < self.duplicate_rate:
            return self.duplicate_gap_s
        return None


class Link:
    """A bidirectional link between two topology node names.

    The link itself is passive; the :class:`repro.netsim.internet.Internet`
    walks a packet along its route's links, asking each link for a delay
    sample and a drop decision.
    """

    __slots__ = ("_a", "_b", "_profile", "_rng", "_fault", "_fault_rng",
                 "_packets_carried", "_packets_dropped",
                 "_packets_duplicated", "_bytes_carried", "_name",
                 "_latency", "_jitter", "_loss")

    def __init__(self, a: str, b: str, profile: LinkProfile,
                 rng: random.Random) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        self._a = a
        self._b = b
        self._profile = profile
        self._rng = rng
        self._fault: Optional[FaultModel] = None
        self._fault_rng: Optional[random.Random] = None
        self._packets_carried = 0
        self._packets_dropped = 0
        self._packets_duplicated = 0
        self._bytes_carried = 0
        self._name = "--".join(sorted((a, b)))
        # Profile scalars, hoisted once (LinkProfile is frozen) so the
        # per-packet transit path reads plain floats.
        self._latency = profile.latency
        self._jitter = profile.jitter
        self._loss = profile.loss

    @property
    def ends(self) -> Tuple[str, str]:
        """The two node names this link joins (in construction order)."""
        return (self._a, self._b)

    @property
    def name(self) -> str:
        """Canonical (sorted) name, stable regardless of direction."""
        return self._name

    @property
    def profile(self) -> LinkProfile:
        return self._profile

    @property
    def packets_carried(self) -> int:
        return self._packets_carried

    @property
    def packets_dropped(self) -> int:
        return self._packets_dropped

    @property
    def packets_duplicated(self) -> int:
        return self._packets_duplicated

    @property
    def bytes_carried(self) -> int:
        return self._bytes_carried

    # ------------------------------------------------------------------
    # Fault injection.
    # ------------------------------------------------------------------

    @property
    def fault(self) -> Optional[FaultModel]:
        """The installed fault model, if any."""
        return self._fault

    def install_fault(self, model: Optional[FaultModel],
                      rng: Optional[random.Random] = None) -> None:
        """Install (or, with ``None``, clear) a fault model.

        The model draws from its own ``rng`` so installing or removing
        faults never perturbs the link's intrinsic latency/loss stream.
        """
        if model is not None and model.active and rng is None:
            raise ValueError("an active fault model needs its own rng")
        self._fault = model if model is not None and model.active else None
        self._fault_rng = rng if self._fault is not None else None

    def transit(self, size: int) -> "Tuple[bool, Optional[float], float]":
        """One packet's fused hop decision: ``(dropped, dup_gap, delay)``.

        Exactly the draws of :meth:`sample_drop` →
        :meth:`sample_duplicate` → :meth:`account` → :meth:`sample_delay`
        in that order (the delivery loop's historical call sequence), so
        a run driven through ``transit`` consumes the link's intrinsic
        and fault RNG streams bit-identically to one driven through the
        individual sampling methods. A dropped packet draws nothing
        further, and its ``delay`` is meaningless.
        """
        rng = self._rng
        fault = self._fault
        if self._loss and rng.random() < self._loss:
            dropped = True
        elif fault is not None and fault.loss_rate > 0.0 \
                and self._fault_rng.random() < fault.loss_rate:
            dropped = True
        else:
            dropped = False
        self._packets_carried += 1
        self._bytes_carried += size
        if dropped:
            self._packets_dropped += 1
            return True, None, 0.0
        gap = (fault.sample_duplicate(self._fault_rng)
               if fault is not None else None)
        delay = self._latency
        if self._jitter:
            delay += rng.uniform(0.0, self._jitter)
        if fault is not None:
            delay += fault.sample_extra_delay(self._fault_rng)
        return False, gap, delay

    def sample_delay(self) -> float:
        """Draw the per-packet one-way delay for this hop."""
        jitter = self._rng.uniform(0.0, self._profile.jitter) if self._profile.jitter else 0.0
        delay = self._profile.latency + jitter
        if self._fault is not None:
            delay += self._fault.sample_extra_delay(self._fault_rng)
        return delay

    def sample_drop(self) -> bool:
        """Decide whether this hop drops the packet."""
        if self._profile.loss and self._rng.random() < self._profile.loss:
            return True
        if self._fault is not None:
            return self._fault.sample_drop(self._fault_rng)
        return False

    def sample_duplicate(self) -> Optional[float]:
        """Gap behind the original for a duplicated copy, or ``None``."""
        if self._fault is None:
            return None
        return self._fault.sample_duplicate(self._fault_rng)

    def account(self, size: int, dropped: bool) -> None:
        """Record traffic statistics for this hop."""
        self._packets_carried += 1
        self._bytes_carried += size
        if dropped:
            self._packets_dropped += 1

    def count_duplicate(self) -> None:
        """Charge one duplicated copy to this link (called by the
        :class:`~repro.netsim.internet.Internet` once the duplicated
        trip survives every downstream hop)."""
        self._packets_duplicated += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Link({self._a}--{self._b}, {self._profile.latency * 1000:.1f}ms"
                f", loss={self._profile.loss})")
