"""Network links with latency, jitter and loss.

A :class:`Link` joins two topology nodes. Its :class:`LinkProfile`
captures the performance characteristics; per-packet latency and loss
are drawn from a named random stream so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class LinkProfile:
    """Performance characteristics of a link.

    :param latency: one-way propagation delay in seconds.
    :param jitter: maximum uniform jitter added per packet, in seconds.
    :param loss: independent per-packet drop probability.
    """

    latency: float = 0.010
    jitter: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        check_non_negative(self.jitter, "jitter")
        check_probability(self.loss, "loss")

    @classmethod
    def lan(cls) -> "LinkProfile":
        """A sub-millisecond local link."""
        return cls(latency=0.0005, jitter=0.0001, loss=0.0)

    @classmethod
    def metro(cls) -> "LinkProfile":
        """A same-metro link (a few milliseconds)."""
        return cls(latency=0.003, jitter=0.001, loss=0.0)

    @classmethod
    def continental(cls) -> "LinkProfile":
        """A same-continent backbone hop."""
        return cls(latency=0.020, jitter=0.004, loss=0.0)

    @classmethod
    def transoceanic(cls) -> "LinkProfile":
        """A trans-oceanic backbone hop."""
        return cls(latency=0.070, jitter=0.010, loss=0.0)

    @classmethod
    def lossy(cls, loss: float, latency: float = 0.030) -> "LinkProfile":
        """A degraded link with the given drop probability."""
        return cls(latency=latency, jitter=latency / 4.0, loss=loss)


class Link:
    """A bidirectional link between two topology node names.

    The link itself is passive; the :class:`repro.netsim.internet.Internet`
    walks a packet along its route's links, asking each link for a delay
    sample and a drop decision.
    """

    def __init__(self, a: str, b: str, profile: LinkProfile,
                 rng: random.Random) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        self._a = a
        self._b = b
        self._profile = profile
        self._rng = rng
        self._packets_carried = 0
        self._packets_dropped = 0
        self._bytes_carried = 0

    @property
    def ends(self) -> Tuple[str, str]:
        """The two node names this link joins (in construction order)."""
        return (self._a, self._b)

    @property
    def name(self) -> str:
        """Canonical (sorted) name, stable regardless of direction."""
        return "--".join(sorted((self._a, self._b)))

    @property
    def profile(self) -> LinkProfile:
        return self._profile

    @property
    def packets_carried(self) -> int:
        return self._packets_carried

    @property
    def packets_dropped(self) -> int:
        return self._packets_dropped

    @property
    def bytes_carried(self) -> int:
        return self._bytes_carried

    def sample_delay(self) -> float:
        """Draw the per-packet one-way delay for this hop."""
        jitter = self._rng.uniform(0.0, self._profile.jitter) if self._profile.jitter else 0.0
        return self._profile.latency + jitter

    def sample_drop(self) -> bool:
        """Decide whether this hop drops the packet."""
        if self._profile.loss == 0.0:
            return False
        return self._rng.random() < self._profile.loss

    def account(self, size: int, dropped: bool) -> None:
        """Record traffic statistics for this hop."""
        self._packets_carried += 1
        self._bytes_carried += size
        if dropped:
            self._packets_dropped += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Link({self._a}--{self._b}, {self._profile.latency * 1000:.1f}ms"
                f", loss={self._profile.loss})")
