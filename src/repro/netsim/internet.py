"""The assembled simulated Internet.

Combines the :class:`~repro.netsim.simulator.Simulator`, a routed
:class:`~repro.netsim.topology.Topology` and a set of
:class:`~repro.netsim.host.Host` machines into a packet-delivery fabric
with the two interposition points the paper's threat model needs:

* **on-path taps** (:meth:`Internet.add_tap`) — an attacker controlling
  a link can observe, drop, delay or rewrite every packet crossing it;
* **off-path injection** (:meth:`Internet.inject`) — an attacker that is
  *not* on the path can still blindly send datagrams with spoofed source
  addresses, which is the capability behind classic DNS poisoning.

Delivery accounting is two-tier. In steady state the fabric keeps
counters only: per (origin, destination-node) pair it compiles a
:class:`_FlightPlan` — the route's link list, its node names and each
link's installed taps — cached until the topology (or a fault install,
or a tap) changes, so delivering a datagram is one dict lookup plus one
fused RNG sample per hop. Full :class:`DeliveryReceipt` objects (with
``route_nodes``) are only materialized when someone is actually looking:
a registered observer, the receipt log, or an :meth:`inject` caller.
Both tiers drive the links through the same
:meth:`~repro.netsim.link.Link.transit` sampler, so which tier ran is
invisible in the RNG streams and the science.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.topology import RoutingError, Topology
from repro.telemetry.registry import current_registry
from repro.telemetry.trace import current_tracer
from repro.util.rng import RngRegistry


class TapVerdict(enum.Enum):
    """What an on-path tap decides to do with a packet on its link."""

    PASS = "pass"
    DROP = "drop"
    REWRITE = "rewrite"


@dataclass(slots=True)
class TapAction:
    """Result of a tap callback.

    :param verdict: pass, drop or rewrite the packet.
    :param payload: replacement payload (required for REWRITE).
    :param extra_delay: additional seconds of delay imposed by the tap
        (models an attacker holding packets back).
    """

    verdict: TapVerdict = TapVerdict.PASS
    payload: Optional[bytes] = None
    extra_delay: float = 0.0

    @classmethod
    def passthrough(cls) -> "TapAction":
        return cls(TapVerdict.PASS)

    @classmethod
    def drop(cls) -> "TapAction":
        return cls(TapVerdict.DROP)

    @classmethod
    def rewrite(cls, payload: bytes, extra_delay: float = 0.0) -> "TapAction":
        return cls(TapVerdict.REWRITE, payload=payload, extra_delay=extra_delay)


# A tap sees (link, datagram) and returns what to do with it.
LinkTap = Callable[[Link, Datagram], TapAction]

# A passive observer of every delivery attempt (for tracing/benchmarks).
DeliveryObserver = Callable[["DeliveryReceipt"], None]


@dataclass(slots=True)
class DeliveryReceipt:
    """Accounting record for one datagram's trip through the network."""

    datagram: Datagram
    delivered: bool
    send_time: float
    arrival_time: Optional[float] = None
    hops: int = 0
    dropped_by: Optional[str] = None  # link name, "tap:<link>", "no-route",
    # "no-host", "host-down", or "no-socket"
    rewritten: bool = False
    duplicated: bool = False  # a link fault delivered a second copy
    route_nodes: List[str] = field(default_factory=list)

    @property
    def latency(self) -> Optional[float]:
        """One-way delay, or None if the packet never arrived."""
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.send_time


class _FlightPlan:
    """A compiled (origin, destination-node) delivery recipe.

    ``hops`` pairs each route link with the tuple of taps installed on
    it at compile time (``None`` when the link is tap-free, so the
    steady-state loop skips tap dispatch entirely). Plans are immutable;
    the :class:`Internet` drops its whole plan cache whenever the
    topology version or the tap epoch moves.
    """

    __slots__ = ("hops", "route_nodes", "hop_count")

    def __init__(self, links: List[Link],
                 taps: Dict[str, List[LinkTap]],
                 route_nodes: List[str]) -> None:
        self.hops: Tuple[Tuple[Link, Optional[Tuple[LinkTap, ...]]], ...] = \
            tuple((link, tuple(taps[link.name]) if taps.get(link.name) else None)
                  for link in links)
        self.route_nodes: Tuple[str, ...] = tuple(route_nodes)
        self.hop_count = len(self.hops)


class Internet:
    """Packet-delivery fabric over a routed topology.

    :param simulator: the virtual-time event engine.
    :param topology: routed node graph; hosts attach to its nodes.
    :param rng_registry: seed universe; link loss/jitter streams and
        host port randomisation derive from it.
    """

    def __init__(self, simulator: Simulator, topology: Topology,
                 rng_registry: Optional[RngRegistry] = None) -> None:
        self._simulator = simulator
        self._topology = topology
        self._rng = rng_registry or RngRegistry(0)
        self._hosts_by_name: Dict[str, Host] = {}
        self._hosts_by_address: Dict[IPAddress, Host] = {}
        self._taps: Dict[str, List[LinkTap]] = {}
        self._down_hosts: set = set()
        self._tap_epoch = 0
        self._plans: Dict[Tuple[str, str], _FlightPlan] = {}
        self._plans_stamp = -1
        self._observers: List[DeliveryObserver] = []
        self._receipts: List[DeliveryReceipt] = []
        self._keep_receipts = False
        self._detailed = False
        self._datagrams_sent = 0
        self._datagrams_delivered = 0
        self._datagrams_duplicated = 0
        self._bytes_sent = 0
        # Telemetry instruments are resolved once here; with no
        # registry installed the delivery path stays untouched. The
        # tracer is captured under the same contract: ``None`` means
        # the flight loop allocates no spans at all.
        telemetry = current_registry()
        self._telemetry = telemetry
        self._tracer = current_tracer()
        if telemetry is not None:
            self._t_sent = telemetry.counter("net.datagrams_sent")
            self._t_bytes = telemetry.counter("net.bytes_sent")
            self._t_delivered = telemetry.counter("net.datagrams_delivered")
            self._t_dropped = telemetry.counter("net.datagrams_dropped")
            self._t_latency = telemetry.histogram("net.delivery_latency")
            # Per-reason drop counters and per-link drop series are
            # created lazily on the first drop each reason/link
            # produces, so fault-free runs leave the registry's
            # snapshot byte-identical to pre-series builds.
            self._t_drop_reasons: Dict[str, object] = {}
            self._t_link_drops: Dict[str, object] = {}

    #: Bin width (virtual seconds) of the per-link drop time series.
    LINK_DROP_BIN = 1.0

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def rng_registry(self) -> RngRegistry:
        return self._rng

    def add_host(self, host: Host) -> Host:
        """Register a host; its addresses become routable."""
        if host.name in self._hosts_by_name:
            raise ValueError(f"duplicate host name {host.name!r}")
        if not self._topology.has_node(host.node):
            raise ValueError(
                f"host {host.name!r} attaches to unknown node {host.node!r}"
            )
        for address in host.addresses:
            if address in self._hosts_by_address:
                owner = self._hosts_by_address[address].name
                raise ValueError(
                    f"address {address} already owned by host {owner!r}"
                )
        self._hosts_by_name[host.name] = host
        for address in host.addresses:
            self._hosts_by_address[address] = host
        host.attach(self)
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self._hosts_by_name[name]

    def host_for_address(self, address: IPAddress) -> Optional[Host]:
        """The host owning ``address``, if registered."""
        return self._hosts_by_address.get(IPAddress(address))

    @property
    def hosts(self) -> List[Host]:
        return [self._hosts_by_name[name] for name in sorted(self._hosts_by_name)]

    # ------------------------------------------------------------------
    # Host availability (the chaos layer's crash/restart switch).
    # ------------------------------------------------------------------

    def set_host_down(self, name: str) -> None:
        """Mark a host crashed: every datagram to or from it drops with
        reason ``"host-down"`` until :meth:`set_host_up`.

        Only :class:`repro.chaos.ChaosController` may call this (a CI
        grep confines callers); scenario code models outages by
        scheduling a :class:`repro.chaos.ServerOutage` event instead.
        """
        if name not in self._hosts_by_name:
            raise KeyError(f"unknown host {name!r}")
        self._down_hosts.add(name)

    def set_host_up(self, name: str) -> None:
        """Restart a crashed host (a no-op for hosts already up)."""
        self._down_hosts.discard(name)

    def host_is_down(self, name: str) -> bool:
        """Whether the named host is currently crashed."""
        return name in self._down_hosts

    # ------------------------------------------------------------------
    # Attacker interposition.
    # ------------------------------------------------------------------

    def add_tap(self, link_name: str, tap: LinkTap) -> None:
        """Install an on-path tap on the named link.

        ``link_name`` is the canonical link name (``"a--b"`` with the
        ends sorted); taps run in installation order and the first
        non-PASS verdict wins.
        """
        self._taps.setdefault(link_name, []).append(tap)
        self._tap_epoch += 1

    def remove_tap(self, link_name: str, tap: LinkTap) -> None:
        """Uninstall a previously installed tap."""
        taps = self._taps.get(link_name, [])
        taps.remove(tap)
        self._tap_epoch += 1

    def inject(self, datagram: Datagram, at_node: str,
               spoofed: bool = True) -> DeliveryReceipt:
        """Off-path injection: route a (usually spoofed) datagram from
        ``at_node`` toward its destination.

        The injected packet traverses links (and other attackers' taps)
        from the injection point like any other traffic.
        """
        tagged = Datagram(src=datagram.src, dst=datagram.dst,
                          payload=datagram.payload, spoofed=spoofed,
                          channel=datagram.channel)
        # Injection always pays for a receipt: it returns one.
        return self._route_and_schedule(tagged, at_node, want_receipt=True)

    # ------------------------------------------------------------------
    # Tracing.
    # ------------------------------------------------------------------

    def add_observer(self, observer: DeliveryObserver) -> None:
        """Register a passive per-delivery observer."""
        self._observers.append(observer)
        self._detailed = True

    def enable_receipt_log(self, enabled: bool = True) -> None:
        """Keep every :class:`DeliveryReceipt` in memory for inspection."""
        self._keep_receipts = enabled
        self._detailed = enabled or bool(self._observers)

    @property
    def receipts(self) -> List[DeliveryReceipt]:
        return list(self._receipts)

    @property
    def datagrams_sent(self) -> int:
        return self._datagrams_sent

    @property
    def datagrams_delivered(self) -> int:
        return self._datagrams_delivered

    @property
    def datagrams_duplicated(self) -> int:
        """Extra copies delivered because of link-fault duplication."""
        return self._datagrams_duplicated

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    # ------------------------------------------------------------------
    # Delivery.
    # ------------------------------------------------------------------

    def send(self, datagram: Datagram,
             origin_host: Host) -> Optional[DeliveryReceipt]:
        """Entry point used by :meth:`Host.transmit`.

        Returns the :class:`DeliveryReceipt` when delivery tracing is
        active (observers or the receipt log); in the counters-only
        steady state it returns ``None`` — building a per-packet
        receipt nobody reads is exactly the overhead the flight-plan
        fast path removes.
        """
        if self._down_hosts and origin_host.name in self._down_hosts:
            return self._drop_at_source(datagram)
        return self._route_and_schedule(datagram, origin_host.node,
                                        want_receipt=self._detailed)

    def _drop_at_source(self, datagram: Datagram
                        ) -> Optional[DeliveryReceipt]:
        """A crashed origin cannot transmit: account the attempt as a
        ``host-down`` drop without touching any link RNG stream."""
        self._datagrams_sent += 1
        self._bytes_sent += datagram.size
        if self._detailed:
            receipt = DeliveryReceipt(datagram=datagram, delivered=False,
                                      send_time=self._simulator.now)
            receipt.dropped_by = "host-down"
            self._finish(receipt)
            return receipt
        self._count_drop("host-down", datagram.size)
        return None

    def _plan_for(self, origin: str, dest_node: str) -> _FlightPlan:
        """The compiled flight plan for one (origin, destination) pair."""
        stamp = self._topology.version + self._tap_epoch
        if stamp != self._plans_stamp:
            self._plans.clear()
            self._plans_stamp = stamp
        key = (origin, dest_node)
        plan = self._plans.get(key)
        if plan is None:
            links = self._topology.route(origin, dest_node)
            route_nodes = self._topology.route_nodes(origin, dest_node)
            plan = _FlightPlan(links, self._taps, route_nodes)
            self._plans[key] = plan
        return plan

    def _route_and_schedule(self, datagram: Datagram, origin_node: str,
                            want_receipt: bool) -> Optional[DeliveryReceipt]:
        self._datagrams_sent += 1
        datagram_size = datagram.size
        self._bytes_sent += datagram_size
        simulator = self._simulator
        send_time = simulator.now
        receipt: Optional[DeliveryReceipt] = None
        if want_receipt:
            receipt = DeliveryReceipt(datagram=datagram, delivered=False,
                                      send_time=send_time)

        # One flight span per trip, one child span per link transit.
        # Hop timelines are decided right here at schedule time, so the
        # whole flight is recorded synchronously in virtual time —
        # nothing about it depends on when the delivery callback fires.
        tracer = self._tracer
        flight = None
        if tracer is not None:
            flight = tracer.begin(
                "net.flight", start=send_time,
                attrs={"src": str(datagram.src), "dst": str(datagram.dst),
                       "size": datagram_size})
            if datagram.spoofed:
                flight.set(spoofed=True)

        destination_host = self._hosts_by_address.get(datagram.dst.address)
        if destination_host is None:
            if flight is not None:
                tracer.finish(flight.set(outcome="dropped",
                                         dropped_by="no-host"), send_time)
            return self._drop(receipt, "no-host", datagram_size)
        if self._down_hosts and destination_host.name in self._down_hosts:
            if flight is not None:
                tracer.finish(flight.set(outcome="dropped",
                                         dropped_by="host-down"), send_time)
            return self._drop(receipt, "host-down", datagram_size)

        try:
            plan = self._plan_for(origin_node, destination_host.node)
        except RoutingError:
            if flight is not None:
                tracer.finish(flight.set(outcome="dropped",
                                         dropped_by="no-route"), send_time)
            return self._drop(receipt, "no-route", datagram_size)
        if receipt is not None:
            receipt.route_nodes = list(plan.route_nodes)

        total_delay = 0.0
        duplicate_gap: Optional[float] = None
        duplicating_link: Optional[Link] = None
        current = datagram
        hop_size = datagram_size   # link accounting follows rewrites;
        #                            telemetry counts the original bytes
        hops = 0
        for link, taps in plan.hops:
            hops += 1
            # Natural loss first, then attacker taps: a dropped packet
            # never reaches the tap further down the same hop.
            dropped, gap, delay = link.transit(hop_size)
            if flight is not None:
                hop_start = send_time + total_delay
                hop_span = tracer.span_at(
                    "net.hop", hop_start,
                    hop_start if dropped else hop_start + delay,
                    parent=flight, attrs={"link": link.name})
            if dropped:
                if flight is not None:
                    hop_span.set(outcome="dropped", fault="loss")
                    tracer.finish(
                        flight.set(outcome="dropped", dropped_by=link.name,
                                   hops=hops),
                        send_time + total_delay)
                if receipt is not None:
                    receipt.hops = hops
                return self._drop(receipt, link.name, datagram_size)
            if gap is not None and duplicate_gap is None:
                # At most one extra copy per trip, trailing the
                # original by the first duplicating hop's gap. The
                # link's duplicate counter is charged only if the trip
                # survives the remaining hops (a downstream drop or tap
                # discards the copy along with the original).
                duplicate_gap = gap
                duplicating_link = link
                if flight is not None:
                    hop_span.set(fault="duplicate", duplicate_gap=gap)
            total_delay += delay
            if taps is not None:
                for tap in taps:
                    action = tap(link, current)
                    if action.verdict is TapVerdict.PASS:
                        continue
                    if action.verdict is TapVerdict.DROP:
                        if flight is not None:
                            hop_span.set(outcome="dropped",
                                         fault=f"tap:{link.name}")
                            tracer.finish(
                                flight.set(outcome="dropped",
                                           dropped_by=f"tap:{link.name}",
                                           hops=hops),
                                send_time + total_delay)
                        if receipt is not None:
                            receipt.hops = hops
                        return self._drop(receipt, f"tap:{link.name}",
                                          datagram_size)
                    if action.payload is None:
                        raise ValueError("REWRITE verdict requires a payload")
                    current = current.with_payload(action.payload)
                    hop_size = len(action.payload)
                    if flight is not None:
                        hop_span.set(rewritten=True,
                                     fault=f"tap:{link.name}")
                        if action.extra_delay:
                            hop_span.set(extra_delay=action.extra_delay)
                    if receipt is not None:
                        receipt.rewritten = True
                    total_delay += action.extra_delay
                    break

        final = current
        arrival = simulator.now + total_delay
        telemetry = self._telemetry

        if flight is not None:
            # The flight's outcome is provisionally "delivered" with its
            # precomputed arrival; the delivery closure downgrades it to
            # no-socket if the destination port turns out unbound.
            tracer.finish(flight.set(outcome="delivered", hops=hops),
                          arrival)

        if receipt is not None:
            receipt.hops = hops

            def deliver() -> None:
                # Traced deliveries run under the inbound flight's
                # scope: whatever the receiving handler does
                # synchronously (decode, build and send a response)
                # parents under this flight, so causality is preserved
                # across the wire.
                if self._down_hosts \
                        and destination_host.name in self._down_hosts:
                    # The host crashed while the packet was in flight.
                    receipt.dropped_by = "host-down"
                    if flight is not None:
                        flight.set(outcome="dropped",
                                   dropped_by="host-down")
                    self._finish(receipt)
                    return
                if flight is None:
                    accepted = destination_host.deliver(final)
                else:
                    with tracer.scope(flight):
                        accepted = destination_host.deliver(final)
                receipt.arrival_time = simulator.now
                receipt.delivered = accepted
                if accepted:
                    self._datagrams_delivered += 1
                else:
                    receipt.dropped_by = "no-socket"
                    if flight is not None:
                        flight.set(outcome="dropped", dropped_by="no-socket")
                self._finish(receipt)

            simulator.schedule_at(arrival, deliver,
                                  label=f"deliver#{final.packet_id}")
        elif telemetry is None:

            def deliver_lean() -> None:
                if self._down_hosts \
                        and destination_host.name in self._down_hosts:
                    return
                if flight is None:
                    accepted = destination_host.deliver(final)
                else:
                    with tracer.scope(flight):
                        accepted = destination_host.deliver(final)
                if accepted:
                    self._datagrams_delivered += 1
                elif flight is not None:
                    flight.set(outcome="dropped", dropped_by="no-socket")

            simulator.schedule_at(arrival, deliver_lean)
        else:

            def deliver_counted() -> None:
                if self._down_hosts \
                        and destination_host.name in self._down_hosts:
                    if flight is not None:
                        flight.set(outcome="dropped",
                                   dropped_by="host-down")
                    self._count_drop("host-down", datagram_size)
                    return
                if flight is None:
                    accepted = destination_host.deliver(final)
                else:
                    with tracer.scope(flight):
                        accepted = destination_host.deliver(final)
                if accepted:
                    self._datagrams_delivered += 1
                    self._t_sent.inc()
                    self._t_bytes.inc(datagram_size)
                    self._t_delivered.inc()
                    self._t_latency.observe(simulator.now - send_time)
                else:
                    if flight is not None:
                        flight.set(outcome="dropped", dropped_by="no-socket")
                    self._count_drop("no-socket", datagram_size)

            simulator.schedule_at(arrival, deliver_counted)

        if duplicate_gap is not None:
            if receipt is not None:
                receipt.duplicated = True
            if flight is not None:
                flight.set(duplicated=True)
                tracer.event("net.duplicate_delivery",
                             parent=flight, at=arrival + duplicate_gap,
                             attrs={"link": duplicating_link.name})
            duplicating_link.count_duplicate()

            def deliver_copy() -> None:
                # The copy rides outside the receipt: accounting for
                # the original delivery stays untouched, the transport
                # layer's suppression decides what the copy means.
                if self._down_hosts \
                        and destination_host.name in self._down_hosts:
                    return
                if destination_host.deliver(final):
                    self._datagrams_duplicated += 1

            simulator.schedule_at(arrival + duplicate_gap, deliver_copy)
        return receipt

    def _drop(self, receipt: Optional[DeliveryReceipt], where: str,
              size: int) -> Optional[DeliveryReceipt]:
        """An in-flight drop: account it and finish immediately."""
        if receipt is not None:
            receipt.dropped_by = where
            self._finish(receipt)
            return receipt
        self._count_drop(where, size)
        return None

    def _count_drop(self, where: str, size: int) -> None:
        """Telemetry for one dropped datagram (counters-only tier)."""
        if self._telemetry is None:
            return
        self._t_sent.inc()
        self._t_bytes.inc(size)
        self._t_dropped.inc()
        counter = self._t_drop_reasons.get(where)
        if counter is None:
            counter = self._telemetry.counter("net.drops", reason=where)
            self._t_drop_reasons[where] = counter
        counter.inc()
        series = self._t_link_drops.get(where)
        if series is None:
            series = self._telemetry.timeseries(
                "net.link_drops", self.LINK_DROP_BIN, link=where)
            self._t_link_drops[where] = series
        series.record(self._simulator.now, 1.0)

    def _finish(self, receipt: DeliveryReceipt) -> None:
        """Record a finished receipt: telemetry, the receipt log, and
        every registered observer (dropped packets arrive here at their
        drop instant, delivered ones at their arrival instant)."""
        if self._telemetry is not None:
            if receipt.delivered:
                self._t_sent.inc()
                self._t_bytes.inc(receipt.datagram.size)
                self._t_delivered.inc()
                latency = receipt.latency
                if latency is not None:
                    self._t_latency.observe(latency)
            else:
                self._count_drop(receipt.dropped_by or "unknown",
                                 receipt.datagram.size)
        if self._keep_receipts:
            self._receipts.append(receipt)
        for observer in self._observers:
            observer(receipt)
