"""The assembled simulated Internet.

Combines the :class:`~repro.netsim.simulator.Simulator`, a routed
:class:`~repro.netsim.topology.Topology` and a set of
:class:`~repro.netsim.host.Host` machines into a packet-delivery fabric
with the two interposition points the paper's threat model needs:

* **on-path taps** (:meth:`Internet.add_tap`) — an attacker controlling
  a link can observe, drop, delay or rewrite every packet crossing it;
* **off-path injection** (:meth:`Internet.inject`) — an attacker that is
  *not* on the path can still blindly send datagrams with spoofed source
  addresses, which is the capability behind classic DNS poisoning.

Every delivery attempt produces a :class:`DeliveryReceipt`, giving the
benchmarks byte/latency accounting for free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.topology import RoutingError, Topology
from repro.telemetry.registry import current_registry
from repro.util.rng import RngRegistry


class TapVerdict(enum.Enum):
    """What an on-path tap decides to do with a packet on its link."""

    PASS = "pass"
    DROP = "drop"
    REWRITE = "rewrite"


@dataclass
class TapAction:
    """Result of a tap callback.

    :param verdict: pass, drop or rewrite the packet.
    :param payload: replacement payload (required for REWRITE).
    :param extra_delay: additional seconds of delay imposed by the tap
        (models an attacker holding packets back).
    """

    verdict: TapVerdict = TapVerdict.PASS
    payload: Optional[bytes] = None
    extra_delay: float = 0.0

    @classmethod
    def passthrough(cls) -> "TapAction":
        return cls(TapVerdict.PASS)

    @classmethod
    def drop(cls) -> "TapAction":
        return cls(TapVerdict.DROP)

    @classmethod
    def rewrite(cls, payload: bytes, extra_delay: float = 0.0) -> "TapAction":
        return cls(TapVerdict.REWRITE, payload=payload, extra_delay=extra_delay)


# A tap sees (link, datagram) and returns what to do with it.
LinkTap = Callable[[Link, Datagram], TapAction]

# A passive observer of every delivery attempt (for tracing/benchmarks).
DeliveryObserver = Callable[["DeliveryReceipt"], None]


@dataclass
class DeliveryReceipt:
    """Accounting record for one datagram's trip through the network."""

    datagram: Datagram
    delivered: bool
    send_time: float
    arrival_time: Optional[float] = None
    hops: int = 0
    dropped_by: Optional[str] = None  # link name, "tap:<link>", "no-route",
    # "no-host", or "no-socket"
    rewritten: bool = False
    duplicated: bool = False  # a link fault delivered a second copy
    route_nodes: List[str] = field(default_factory=list)

    @property
    def latency(self) -> Optional[float]:
        """One-way delay, or None if the packet never arrived."""
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.send_time


class Internet:
    """Packet-delivery fabric over a routed topology.

    :param simulator: the virtual-time event engine.
    :param topology: routed node graph; hosts attach to its nodes.
    :param rng_registry: seed universe; link loss/jitter streams and
        host port randomisation derive from it.
    """

    def __init__(self, simulator: Simulator, topology: Topology,
                 rng_registry: Optional[RngRegistry] = None) -> None:
        self._simulator = simulator
        self._topology = topology
        self._rng = rng_registry or RngRegistry(0)
        self._hosts_by_name: Dict[str, Host] = {}
        self._hosts_by_address: Dict[IPAddress, Host] = {}
        self._taps: Dict[str, List[LinkTap]] = {}
        self._observers: List[DeliveryObserver] = []
        self._receipts: List[DeliveryReceipt] = []
        self._keep_receipts = False
        self._datagrams_sent = 0
        self._datagrams_delivered = 0
        self._datagrams_duplicated = 0
        self._bytes_sent = 0
        # Telemetry instruments are resolved once here; with no
        # registry installed the delivery path stays untouched.
        telemetry = current_registry()
        self._telemetry = telemetry
        if telemetry is not None:
            self._t_sent = telemetry.counter("net.datagrams_sent")
            self._t_bytes = telemetry.counter("net.bytes_sent")
            self._t_delivered = telemetry.counter("net.datagrams_delivered")
            self._t_dropped = telemetry.counter("net.datagrams_dropped")
            self._t_latency = telemetry.histogram("net.delivery_latency")
            # Per-link drop series are created lazily on the first drop
            # a link produces, so fault-free runs leave the registry's
            # snapshot byte-identical to pre-series builds.
            self._t_link_drops = {}

    #: Bin width (virtual seconds) of the per-link drop time series.
    LINK_DROP_BIN = 1.0

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def rng_registry(self) -> RngRegistry:
        return self._rng

    def add_host(self, host: Host) -> Host:
        """Register a host; its addresses become routable."""
        if host.name in self._hosts_by_name:
            raise ValueError(f"duplicate host name {host.name!r}")
        if not self._topology.has_node(host.node):
            raise ValueError(
                f"host {host.name!r} attaches to unknown node {host.node!r}"
            )
        for address in host.addresses:
            if address in self._hosts_by_address:
                owner = self._hosts_by_address[address].name
                raise ValueError(
                    f"address {address} already owned by host {owner!r}"
                )
        self._hosts_by_name[host.name] = host
        for address in host.addresses:
            self._hosts_by_address[address] = host
        host.attach(self)
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self._hosts_by_name[name]

    def host_for_address(self, address: IPAddress) -> Optional[Host]:
        """The host owning ``address``, if registered."""
        return self._hosts_by_address.get(IPAddress(address))

    @property
    def hosts(self) -> List[Host]:
        return [self._hosts_by_name[name] for name in sorted(self._hosts_by_name)]

    # ------------------------------------------------------------------
    # Attacker interposition.
    # ------------------------------------------------------------------

    def add_tap(self, link_name: str, tap: LinkTap) -> None:
        """Install an on-path tap on the named link.

        ``link_name`` is the canonical link name (``"a--b"`` with the
        ends sorted); taps run in installation order and the first
        non-PASS verdict wins.
        """
        self._taps.setdefault(link_name, []).append(tap)

    def remove_tap(self, link_name: str, tap: LinkTap) -> None:
        """Uninstall a previously installed tap."""
        taps = self._taps.get(link_name, [])
        taps.remove(tap)

    def inject(self, datagram: Datagram, at_node: str,
               spoofed: bool = True) -> DeliveryReceipt:
        """Off-path injection: route a (usually spoofed) datagram from
        ``at_node`` toward its destination.

        The injected packet traverses links (and other attackers' taps)
        from the injection point like any other traffic.
        """
        tagged = Datagram(src=datagram.src, dst=datagram.dst,
                          payload=datagram.payload, spoofed=spoofed,
                          channel=datagram.channel)
        return self._route_and_schedule(tagged, origin_node=at_node)

    # ------------------------------------------------------------------
    # Tracing.
    # ------------------------------------------------------------------

    def add_observer(self, observer: DeliveryObserver) -> None:
        """Register a passive per-delivery observer."""
        self._observers.append(observer)

    def enable_receipt_log(self, enabled: bool = True) -> None:
        """Keep every :class:`DeliveryReceipt` in memory for inspection."""
        self._keep_receipts = enabled

    @property
    def receipts(self) -> List[DeliveryReceipt]:
        return list(self._receipts)

    @property
    def datagrams_sent(self) -> int:
        return self._datagrams_sent

    @property
    def datagrams_delivered(self) -> int:
        return self._datagrams_delivered

    @property
    def datagrams_duplicated(self) -> int:
        """Extra copies delivered because of link-fault duplication."""
        return self._datagrams_duplicated

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    # ------------------------------------------------------------------
    # Delivery.
    # ------------------------------------------------------------------

    def send(self, datagram: Datagram, origin_host: Host) -> DeliveryReceipt:
        """Entry point used by :meth:`Host.transmit`."""
        return self._route_and_schedule(datagram, origin_node=origin_host.node)

    def _route_and_schedule(self, datagram: Datagram,
                            origin_node: str) -> DeliveryReceipt:
        self._datagrams_sent += 1
        self._bytes_sent += datagram.size
        receipt = DeliveryReceipt(datagram=datagram, delivered=False,
                                  send_time=self._simulator.now)

        destination_host = self._hosts_by_address.get(datagram.dst.address)
        if destination_host is None:
            receipt.dropped_by = "no-host"
            self._finish(receipt)
            return receipt

        try:
            links = self._topology.route(origin_node, destination_host.node)
            receipt.route_nodes = self._topology.route_nodes(
                origin_node, destination_host.node
            )
        except RoutingError:
            receipt.dropped_by = "no-route"
            self._finish(receipt)
            return receipt

        total_delay = 0.0
        duplicate_gap: Optional[float] = None
        duplicating_link: Optional[Link] = None
        current = datagram
        for link in links:
            receipt.hops += 1
            # Natural loss first, then attacker taps: a dropped packet
            # never reaches the tap further down the same hop.
            dropped = link.sample_drop()
            gap = None if dropped else link.sample_duplicate()
            link.account(current.size, dropped)
            if dropped:
                receipt.dropped_by = link.name
                self._finish(receipt)
                return receipt
            if gap is not None and duplicate_gap is None:
                # At most one extra copy per trip, trailing the
                # original by the first duplicating hop's gap. The
                # link's duplicate counter is charged only if the trip
                # survives the remaining hops (a downstream drop or tap
                # discards the copy along with the original).
                duplicate_gap = gap
                duplicating_link = link
            total_delay += link.sample_delay()
            action = self._run_taps(link, current)
            if action.verdict is TapVerdict.DROP:
                receipt.dropped_by = f"tap:{link.name}"
                self._finish(receipt)
                return receipt
            if action.verdict is TapVerdict.REWRITE:
                if action.payload is None:
                    raise ValueError("REWRITE verdict requires a payload")
                current = current.with_payload(action.payload)
                receipt.rewritten = True
            total_delay += action.extra_delay

        final = current
        arrival = self._simulator.now + total_delay

        def deliver() -> None:
            accepted = destination_host.deliver(final)
            receipt.arrival_time = self._simulator.now
            receipt.delivered = accepted
            if accepted:
                self._datagrams_delivered += 1
            else:
                receipt.dropped_by = "no-socket"
            self._finish(receipt, schedule=False)

        self._simulator.schedule_at(arrival, deliver,
                                    label=f"deliver#{final.packet_id}")
        if duplicate_gap is not None:
            receipt.duplicated = True
            duplicating_link.count_duplicate()

            def deliver_copy() -> None:
                # The copy rides outside the receipt: accounting for
                # the original delivery stays untouched, the transport
                # layer's suppression decides what the copy means.
                if destination_host.deliver(final):
                    self._datagrams_duplicated += 1

            self._simulator.schedule_at(
                arrival + duplicate_gap, deliver_copy,
                label=f"deliver-dup#{final.packet_id}")
        return receipt

    def _run_taps(self, link: Link, datagram: Datagram) -> TapAction:
        for tap in self._taps.get(link.name, []):
            action = tap(link, datagram)
            if action.verdict is not TapVerdict.PASS:
                return action
        return TapAction.passthrough()

    def _finish(self, receipt: DeliveryReceipt, schedule: bool = True) -> None:
        """Record a receipt; dropped packets finish immediately."""
        if schedule and receipt.arrival_time is None:
            # Dropped in-flight: notify observers right away.
            pass
        if self._telemetry is not None:
            self._t_sent.inc()
            self._t_bytes.inc(receipt.datagram.size)
            if receipt.delivered:
                self._t_delivered.inc()
                latency = receipt.latency
                if latency is not None:
                    self._t_latency.observe(latency)
            else:
                self._t_dropped.inc()
                where = receipt.dropped_by or "unknown"
                self._telemetry.counter("net.drops", reason=where).inc()
                series = self._t_link_drops.get(where)
                if series is None:
                    series = self._telemetry.timeseries(
                        "net.link_drops", self.LINK_DROP_BIN, link=where)
                    self._t_link_drops[where] = series
                series.record(self._simulator.now, 1.0)
        if self._keep_receipts:
            self._receipts.append(receipt)
        for observer in self._observers:
            observer(receipt)
