"""A from-scratch DNS substrate for the simulated Internet.

Implements the subset of the DNS the paper's system depends on, at
wire-format fidelity:

* :mod:`repro.dns.name` — domain names (RFC 1035 labels, case-insensitive
  comparison, compression-aware wire codec);
* :mod:`repro.dns.message` — headers, questions, resource records and
  full message encode/decode, including name compression;
* :mod:`repro.dns.rdata` — A, AAAA, NS, CNAME, SOA, MX, TXT, PTR and
  opaque RDATA types;
* :mod:`repro.dns.zone` — authoritative zone data with delegations,
  wildcards-free lookup semantics (exact match, NODATA vs NXDOMAIN) and
  rotating record sets (pool.ntp.org-style);
* :mod:`repro.dns.server` — an authoritative nameserver bound to a
  simulated host;
* :mod:`repro.dns.cache` — a TTL/LRU cache driven by virtual time;
* :mod:`repro.dns.resolver` — a caching recursive resolver performing
  iterative resolution with bailiwick filtering, TXID and source-port
  randomisation — the attack surface the paper's off-path adversary
  targets;
* :mod:`repro.dns.hierarchy` — the declarative root→TLD→authoritative
  referral chain (:class:`HierarchySpec`) and its compiler onto the
  simulated topology;
* :mod:`repro.dns.client` — a stub resolver for client hosts.
"""

from repro.dns.cache import DnsCache
from repro.dns.client import StubResolver
from repro.dns.hierarchy import (
    HierarchyDeployment,
    HierarchySpec,
    compile_hierarchy,
    compile_legacy_tree,
)
from repro.dns.message import (
    Flags,
    Message,
    Question,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    MXRdata,
    NSRdata,
    OpaqueRdata,
    PTRRdata,
    Rdata,
    SOARdata,
    TXTRdata,
)
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.rrtype import RRClass, RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone, ZoneError

__all__ = [
    "DnsCache",
    "HierarchyDeployment",
    "HierarchySpec",
    "StubResolver",
    "compile_hierarchy",
    "compile_legacy_tree",
    "Flags",
    "Message",
    "Question",
    "ResourceRecord",
    "make_query",
    "make_response",
    "Name",
    "RCode",
    "Rdata",
    "ARdata",
    "AAAARdata",
    "NSRdata",
    "CNAMERdata",
    "SOARdata",
    "MXRdata",
    "TXTRdata",
    "PTRRdata",
    "OpaqueRdata",
    "RecursiveResolver",
    "ResolverConfig",
    "RRClass",
    "RRType",
    "AuthoritativeServer",
    "Zone",
    "ZoneError",
]
