"""TTL + LRU cache for the recursive resolver.

Keys are (name, type); values are either positive record sets or
negative results (NXDOMAIN / NODATA) with the SOA-derived negative TTL.
Time comes from a clock callable so virtual simulator time drives
expiry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.dns.message import ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rrtype import RRType

Clock = Callable[[], float]


@dataclass
class CacheEntry:
    """One cached result (positive or negative)."""

    records: List[ResourceRecord]
    rcode: RCode
    stored_at: float
    expires_at: float

    @property
    def is_negative(self) -> bool:
        return self.rcode is not RCode.NOERROR or not self.records

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.expires_at - now))


class DnsCache:
    """A bounded TTL cache.

    Passing a :class:`~repro.telemetry.registry.MetricsRegistry` (plus
    a ``label`` distinguishing this cache's owner) additionally
    publishes ``dns.cache.hits`` / ``dns.cache.misses`` /
    ``dns.cache.evictions`` counters there; with ``registry=None``
    (the default) only the plain integer counters below are kept, so
    un-instrumented worlds stay byte-identical.

    >>> cache = DnsCache(clock=lambda: 0.0)
    >>> cache.size
    0
    """

    def __init__(self, clock: Clock, max_entries: int = 10_000,
                 min_ttl: int = 0, max_ttl: int = 86_400,
                 registry=None, label: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._clock = clock
        self._max_entries = max_entries
        self._min_ttl = min_ttl
        self._max_ttl = max_ttl
        self._entries: "OrderedDict[Tuple[Name, RRType], CacheEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._hit_counter = self._miss_counter = self._eviction_counter = None
        if registry is not None:
            labels = {"resolver": label} if label else {}
            self._hit_counter = registry.counter("dns.cache.hits", **labels)
            self._miss_counter = registry.counter("dns.cache.misses",
                                                  **labels)
            self._eviction_counter = registry.counter("dns.cache.evictions",
                                                      **labels)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def put_positive(self, name: Name, rrtype: RRType,
                     records: List[ResourceRecord]) -> None:
        """Cache a positive answer; TTL is the minimum record TTL."""
        if not records:
            raise ValueError("positive cache entry needs records")
        ttl = min(record.ttl for record in records)
        self._store(name, rrtype, list(records), RCode.NOERROR, ttl)

    def put_negative(self, name: Name, rrtype: RRType, rcode: RCode,
                     negative_ttl: int) -> None:
        """Cache an NXDOMAIN or NODATA result."""
        self._store(name, rrtype, [], rcode, negative_ttl)

    def _store(self, name: Name, rrtype: RRType,
               records: List[ResourceRecord], rcode: RCode, ttl: int) -> None:
        now = self._clock()
        clamped = min(max(ttl, self._min_ttl), self._max_ttl)
        key = (name if type(name) is Name else Name(name), rrtype)
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = CacheEntry(
            records=records, rcode=rcode,
            stored_at=now, expires_at=now + clamped,
        )
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.inc()

    def get(self, name: Name, rrtype: RRType) -> Optional[CacheEntry]:
        """Fetch a live entry, decaying record TTLs; None on miss/expiry.

        Returned records carry their *remaining* TTL, the way a real
        resolver answers from cache.
        """
        key = (name if type(name) is Name else Name(name), rrtype)
        entry = self._entries.get(key)
        now = self._clock()
        if entry is None or entry.expires_at <= now:
            if entry is not None:
                del self._entries[key]
            self._misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()
        remaining = entry.remaining_ttl(now)
        decayed = [record.with_ttl(min(record.ttl, remaining))
                   for record in entry.records]
        return CacheEntry(records=decayed, rcode=entry.rcode,
                          stored_at=entry.stored_at,
                          expires_at=entry.expires_at)

    def flush(self) -> None:
        """Drop every entry (used to model cache-flush operations)."""
        self._entries.clear()

    def purge_expired(self) -> int:
        """Remove expired entries eagerly; returns the count removed."""
        now = self._clock()
        stale = [key for key, entry in self._entries.items()
                 if entry.expires_at <= now]
        for key in stale:
            del self._entries[key]
        return len(stale)
