"""Authoritative zone data and lookup semantics.

A :class:`Zone` holds the records for one origin, knows its delegations,
and answers the question "what should an authoritative server say for
this (name, type)?" via :meth:`Zone.lookup`, returning a structured
:class:`LookupResult` (answer / referral / NXDOMAIN / NODATA).

Dynamic record sets — the pool.ntp.org behaviour of returning a fresh
rotation of servers on every query — are modelled by registering a
*record provider* callable for a name/type pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dns.message import ResourceRecord
from repro.dns.name import Name
from repro.dns.rdata import NSRdata, Rdata, SOARdata
from repro.dns.rrtype import RRType

# A provider returns the rdatas to serve for one query (called per query).
RecordProvider = Callable[[], List[Rdata]]


class ZoneError(ValueError):
    """Raised for inconsistent zone contents."""


class LookupStatus(enum.Enum):
    """Outcome classes of an authoritative lookup."""

    ANSWER = "answer"
    DELEGATION = "delegation"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    NOT_IN_ZONE = "not-in-zone"


@dataclass
class LookupResult:
    """Structured result of :meth:`Zone.lookup`."""

    status: LookupStatus
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)


class Zone:
    """Records for one DNS origin, plus delegation knowledge.

    >>> zone = Zone("example.com", soa_mname="ns1.example.com")
    >>> from repro.dns.rdata import ARdata
    >>> zone.add_record("www.example.com", ARdata("192.0.2.1"))
    >>> result = zone.lookup(Name("www.example.com"), RRType.A)
    >>> result.status is LookupStatus.ANSWER
    True
    """

    DEFAULT_TTL = 300

    def __init__(self, origin: "Name | str",
                 soa_mname: "Name | str | None" = None,
                 soa_rname: "Name | str | None" = None,
                 default_ttl: int = DEFAULT_TTL) -> None:
        self._origin = Name(origin)
        self._default_ttl = default_ttl
        self._records: Dict[Tuple[Name, RRType], List[ResourceRecord]] = {}
        self._providers: Dict[Tuple[Name, RRType], RecordProvider] = {}
        self._names: set[Name] = {self._origin}
        mname = Name(soa_mname) if soa_mname else self._origin.child("ns1")
        rname = Name(soa_rname) if soa_rname else self._origin.child("hostmaster")
        self._soa = ResourceRecord(
            self._origin, RRType.SOA, default_ttl,
            SOARdata(mname=mname, rname=rname),
        )

    # ------------------------------------------------------------------
    # Contents.
    # ------------------------------------------------------------------

    @property
    def origin(self) -> Name:
        return self._origin

    @property
    def soa(self) -> ResourceRecord:
        return self._soa

    @property
    def default_ttl(self) -> int:
        return self._default_ttl

    def add_record(self, name: "Name | str", rdata: Rdata,
                   ttl: Optional[int] = None) -> ResourceRecord:
        """Add one record; the name must be at or below the origin."""
        owner = Name(name)
        if not owner.is_subdomain_of(self._origin):
            raise ZoneError(f"{owner} is not within zone {self._origin}")
        record = ResourceRecord(owner, rdata.rrtype,
                                self._default_ttl if ttl is None else ttl,
                                rdata)
        self._records.setdefault((owner, rdata.rrtype), []).append(record)
        self._register_name(owner)
        return record

    def add_provider(self, name: "Name | str", rrtype: RRType,
                     provider: RecordProvider, ttl: Optional[int] = None) -> None:
        """Register a dynamic record source for (name, type).

        The provider is invoked on *every* lookup, so it can rotate its
        answers like pool.ntp.org does.
        """
        owner = Name(name)
        if not owner.is_subdomain_of(self._origin):
            raise ZoneError(f"{owner} is not within zone {self._origin}")
        self._providers[(owner, rrtype)] = provider
        self._register_name(owner)
        if ttl is not None:
            self._provider_ttl = ttl

    def add_delegation(self, child: "Name | str", ns_name: "Name | str",
                       glue: Optional[List[Rdata]] = None,
                       ttl: Optional[int] = None) -> None:
        """Delegate ``child`` to nameserver ``ns_name`` with optional glue."""
        child_name = Name(child)
        if child_name == self._origin or not child_name.is_subdomain_of(self._origin):
            raise ZoneError(f"{child_name} cannot be delegated from {self._origin}")
        server = Name(ns_name)
        self.add_record(child_name, NSRdata(server), ttl)
        for rdata in glue or []:
            if not server.is_subdomain_of(self._origin):
                raise ZoneError(
                    f"glue for {server} does not belong in {self._origin}"
                )
            self.add_record(server, rdata, ttl)

    def records(self, name: "Name | str", rrtype: RRType) -> List[ResourceRecord]:
        """Static records for (name, type); providers are not consulted."""
        return list(self._records.get((Name(name), rrtype), []))

    def _register_name(self, owner: Name) -> None:
        # Track every name (and intermediate empty non-terminals) so the
        # NXDOMAIN-vs-NODATA distinction matches real servers.
        current = owner
        while True:
            self._names.add(current)
            if current == self._origin:
                return
            current = current.parent()

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def lookup(self, qname: Name, qtype: RRType) -> LookupResult:
        """Authoritative lookup with referral and CNAME handling."""
        qname = Name(qname)
        if not qname.is_subdomain_of(self._origin):
            return LookupResult(LookupStatus.NOT_IN_ZONE)

        # Delegation check: walk from just below the origin toward the
        # qname; the first cut with NS records wins (unless it's the
        # qname itself asked for NS at the apex, which stays an answer).
        delegation = self._find_delegation(qname)
        if delegation is not None:
            ns_records = self._records[(delegation, RRType.NS)]
            additional = self._glue_for(ns_records)
            return LookupResult(LookupStatus.DELEGATION,
                                authority=list(ns_records),
                                additional=additional)

        # CNAME at the qname (unless CNAME itself was asked).
        cname_records = self._records.get((qname, RRType.CNAME), [])
        if cname_records and qtype not in (RRType.CNAME, RRType.ANY):
            return LookupResult(LookupStatus.ANSWER,
                                answers=list(cname_records))

        answers = self._answers_for(qname, qtype)
        if answers:
            return LookupResult(LookupStatus.ANSWER, answers=answers)

        if qname in self._names:
            return LookupResult(LookupStatus.NODATA, authority=[self._soa])
        return LookupResult(LookupStatus.NXDOMAIN, authority=[self._soa])

    def _answers_for(self, qname: Name, qtype: RRType) -> List[ResourceRecord]:
        collected: List[ResourceRecord] = []
        if qtype is RRType.ANY:
            for (owner, rrtype), records in self._records.items():
                if owner == qname:
                    collected.extend(records)
            for (owner, rrtype), provider in self._providers.items():
                if owner == qname:
                    collected.extend(self._materialise(owner, rrtype, provider))
            return collected
        provider = self._providers.get((qname, qtype))
        if provider is not None:
            collected.extend(self._materialise(qname, qtype, provider))
        collected.extend(self._records.get((qname, qtype), []))
        return collected

    def _materialise(self, owner: Name, rrtype: RRType,
                     provider: RecordProvider) -> List[ResourceRecord]:
        ttl = getattr(self, "_provider_ttl", self._default_ttl)
        records = []
        for rdata in provider():
            if rdata.rrtype != rrtype:
                raise ZoneError(
                    f"provider for {owner}/{rrtype.name} returned "
                    f"{rdata.rrtype.name} rdata"
                )
            records.append(ResourceRecord(owner, rrtype, ttl, rdata))
        return records

    def _find_delegation(self, qname: Name) -> Optional[Name]:
        """The closest enclosing delegation cut strictly below the origin.

        Returns None when the qname is served authoritatively here.
        A query *for* the NS set at a cut still returns the referral,
        matching real authoritative behaviour.
        """
        # Candidate cuts: ancestors of qname strictly below the origin.
        cuts = []
        current = qname
        while current != self._origin and current.is_subdomain_of(self._origin):
            cuts.append(current)
            current = current.parent()
        # Walk top-down (closest to origin first) for the first NS cut.
        for cut in reversed(cuts):
            if (cut, RRType.NS) in self._records:
                return cut
        return None

    def _glue_for(self, ns_records: List[ResourceRecord]) -> List[ResourceRecord]:
        glue: List[ResourceRecord] = []
        for record in ns_records:
            assert isinstance(record.rdata, NSRdata)
            target = record.rdata.target
            for rrtype in (RRType.A, RRType.AAAA):
                glue.extend(self._records.get((target, rrtype), []))
        return glue
