"""RDATA types (RFC 1035 §3.3, RFC 3596).

Each concrete class knows how to encode itself into a
:class:`~repro.dns.wire.WireWriter` and decode itself from a
:class:`~repro.dns.wire.WireReader`, and has a canonical text form used
in tests and zone literals.

Names inside RDATA (NS, CNAME, SOA, MX, PTR) are emitted *without*
compression by default per RFC 3597's advice for unknown-type safety;
the message writer passes a compressing writer anyway for the classic
types where compression is legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict

from repro.dns.name import Name
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError, WireReader, WireWriter
from repro.netsim.address import IPAddress


class Rdata:
    """Base class for typed RDATA."""

    rrtype: ClassVar[RRType]

    def to_wire(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def cache_key(self):
        """A hashable, *case-exact* identity of this RDATA's wire form.

        Used by the message-encode memo: two RDATA with equal cache
        keys must encode to identical bytes. Names contribute their
        raw labels (not the case-folded comparison form), so
        ``example.com`` and ``Example.COM`` never share a key.
        ``None`` opts the carrying message out of memoization.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()})"


@dataclass(frozen=True, repr=False)
class ARdata(Rdata):
    """IPv4 address record."""

    address: IPAddress
    rrtype: ClassVar[RRType] = RRType.A

    def __post_init__(self) -> None:
        resolved = IPAddress(self.address)
        if not resolved.is_ipv4:
            raise ValueError(f"A record needs an IPv4 address, got {resolved}")
        object.__setattr__(self, "address", resolved)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(self.address.packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "ARdata":
        if rdlength != 4:
            raise WireFormatError(f"A RDATA must be 4 bytes, got {rdlength}")
        return cls(IPAddress.from_packed(reader.read_bytes(4)))

    def cache_key(self):
        return ("A", self.address)

    def to_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True, repr=False)
class AAAARdata(Rdata):
    """IPv6 address record."""

    address: IPAddress
    rrtype: ClassVar[RRType] = RRType.AAAA

    def __post_init__(self) -> None:
        resolved = IPAddress(self.address)
        if not resolved.is_ipv6:
            raise ValueError(f"AAAA record needs an IPv6 address, got {resolved}")
        object.__setattr__(self, "address", resolved)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(self.address.packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAARdata":
        if rdlength != 16:
            raise WireFormatError(f"AAAA RDATA must be 16 bytes, got {rdlength}")
        return cls(IPAddress.from_packed(reader.read_bytes(16)))

    def cache_key(self):
        return ("AAAA", self.address)

    def to_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True, repr=False)
class NSRdata(Rdata):
    """Delegation nameserver record."""

    target: Name
    rrtype: ClassVar[RRType] = RRType.NS

    def __post_init__(self) -> None:
        object.__setattr__(self, "target", Name(self.target))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NSRdata":
        return cls(reader.read_name())

    def cache_key(self):
        return ("NS", self.target.labels)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True, repr=False)
class CNAMERdata(Rdata):
    """Canonical-name alias record."""

    target: Name
    rrtype: ClassVar[RRType] = RRType.CNAME

    def __post_init__(self) -> None:
        object.__setattr__(self, "target", Name(self.target))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "CNAMERdata":
        return cls(reader.read_name())

    def cache_key(self):
        return ("CNAME", self.target.labels)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True, repr=False)
class PTRRdata(Rdata):
    """Pointer record (reverse mapping)."""

    target: Name
    rrtype: ClassVar[RRType] = RRType.PTR

    def __post_init__(self) -> None:
        object.__setattr__(self, "target", Name(self.target))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "PTRRdata":
        return cls(reader.read_name())

    def cache_key(self):
        return ("PTR", self.target.labels)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True, repr=False)
class SOARdata(Rdata):
    """Start-of-authority record."""

    mname: Name
    rname: Name
    serial: int = 1
    refresh: int = 7200
    retry: int = 900
    expire: int = 1209600
    minimum: int = 300
    rrtype: ClassVar[RRType] = RRType.SOA

    def __post_init__(self) -> None:
        object.__setattr__(self, "mname", Name(self.mname))
        object.__setattr__(self, "rname", Name(self.rname))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOARdata":
        mname = reader.read_name()
        rname = reader.read_name()
        serial = reader.read_u32()
        refresh = reader.read_u32()
        retry = reader.read_u32()
        expire = reader.read_u32()
        minimum = reader.read_u32()
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def cache_key(self):
        return ("SOA", self.mname.labels, self.rname.labels, self.serial,
                self.refresh, self.retry, self.expire, self.minimum)

    def to_text(self) -> str:
        return (f"{self.mname} {self.rname} {self.serial} {self.refresh} "
                f"{self.retry} {self.expire} {self.minimum}")


@dataclass(frozen=True, repr=False)
class MXRdata(Rdata):
    """Mail-exchanger record."""

    preference: int
    exchange: Name
    rrtype: ClassVar[RRType] = RRType.MX

    def __post_init__(self) -> None:
        object.__setattr__(self, "exchange", Name(self.exchange))
        if not 0 <= self.preference <= 0xFFFF:
            raise ValueError(f"MX preference out of range: {self.preference}")

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.exchange)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "MXRdata":
        preference = reader.read_u16()
        return cls(preference, reader.read_name())

    def cache_key(self):
        return ("MX", self.preference, self.exchange.labels)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}"


@dataclass(frozen=True, repr=False)
class TXTRdata(Rdata):
    """Text record: one or more character-strings."""

    strings: tuple
    rrtype: ClassVar[RRType] = RRType.TXT

    def __post_init__(self) -> None:
        if isinstance(self.strings, (str, bytes)):
            raw = (self.strings,)
        else:
            raw = tuple(self.strings)
        normalised = tuple(
            s.encode("utf-8") if isinstance(s, str) else bytes(s) for s in raw
        )
        if not normalised:
            raise ValueError("TXT record needs at least one string")
        for chunk in normalised:
            if len(chunk) > 255:
                raise ValueError("TXT character-string exceeds 255 bytes")
        object.__setattr__(self, "strings", normalised)

    def to_wire(self, writer: WireWriter) -> None:
        for chunk in self.strings:
            writer.write_character_string(chunk)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TXTRdata":
        end = reader.offset + rdlength
        strings = []
        while reader.offset < end:
            strings.append(reader.read_character_string())
        if reader.offset != end:
            raise WireFormatError("TXT RDATA length mismatch")
        if not strings:
            raise WireFormatError("empty TXT RDATA")
        return cls(tuple(strings))

    def cache_key(self):
        return ("TXT", self.strings)

    def to_text(self) -> str:
        return " ".join(f'"{chunk.decode("utf-8", "replace")}"'
                        for chunk in self.strings)


@dataclass(frozen=True, repr=False)
class OpaqueRdata(Rdata):
    """Uninterpreted RDATA for types we do not model (RFC 3597 style)."""

    type_code: int
    data: bytes
    rrtype: ClassVar[RRType] = RRType.OPT  # placeholder; see type_code

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "OpaqueRdata":
        raise NotImplementedError("use decode_rdata() with a type code")

    def cache_key(self):
        return ("OPAQUE", self.type_code, self.data)

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"


_DECODERS: Dict[int, Callable[[WireReader, int], Rdata]] = {
    RRType.A: ARdata.from_wire,
    RRType.AAAA: AAAARdata.from_wire,
    RRType.NS: NSRdata.from_wire,
    RRType.CNAME: CNAMERdata.from_wire,
    RRType.PTR: PTRRdata.from_wire,
    RRType.SOA: SOARdata.from_wire,
    RRType.MX: MXRdata.from_wire,
    RRType.TXT: TXTRdata.from_wire,
}


def decode_rdata(type_code: int, reader: WireReader, rdlength: int) -> Rdata:
    """Decode RDATA of the given type; unknown types become opaque blobs."""
    decoder = _DECODERS.get(type_code)
    if decoder is None:
        return OpaqueRdata(type_code=type_code, data=reader.read_bytes(rdlength))
    start = reader.offset
    rdata = decoder(reader, rdlength)
    consumed = reader.offset - start
    if consumed != rdlength:
        raise WireFormatError(
            f"RDATA length mismatch for type {type_code}: "
            f"declared {rdlength}, consumed {consumed}"
        )
    return rdata


def address_rdata(address: "IPAddress | str") -> Rdata:
    """Build an A or AAAA rdata from an address, choosing by family."""
    resolved = IPAddress(address)
    if resolved.is_ipv4:
        return ARdata(resolved)
    return AAAARdata(resolved)
