"""Stub resolver: the client side of plain DNS.

Sends recursive (RD=1) queries to a configured resolver address over
UDP, with timeout and retry. This is the *insecure baseline* the paper
starts from: one resolver, one path, spoofable transport.

The timeout/retry/transaction machinery lives in
:class:`repro.netsim.transport.Transport`; this module only knows DNS —
how to build a query and how to tell a genuine answer from a spoof.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    AttemptInfo,
    ExchangeReport,
    RetryPolicy,
    Transport,
)
from repro.telemetry.registry import current_registry
from repro.telemetry.trace import current_tracer

DNS_PORT = 53


def validate_reply(datagram: Datagram, txid: int, server: Endpoint,
                   qname: Name, qtype: RRType) -> Optional[Message]:
    """The DNS reply acceptance predicate both client stacks share.

    Returns the decoded response only when it parses, is a response,
    echoes the transaction ID and the single expected question, and
    arrives from the queried server's endpoint — exactly the checks a
    real implementation performs, no more. This is the security surface
    the paper's off-path attacker races; keeping the stub resolver and
    the recursive resolver on one copy keeps them in lockstep. Callers
    count their own rejection statistics.
    """
    try:
        response = Message.decode(datagram.payload)
    except WireFormatError:
        return None
    if (not response.is_response
            or response.txid != txid
            or datagram.src != server
            or len(response.questions) != 1
            or response.questions[0].qname != qname
            or response.questions[0].qtype != qtype):
        return None
    return response


@dataclass
class StubOutcome:
    """Result of one stub query."""

    response: Optional[Message]
    timed_out: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return (self.response is not None
                and self.response.rcode is RCode.NOERROR)

    @property
    def addresses(self) -> List[IPAddress]:
        """Convenience: all A/AAAA addresses in the answer section."""
        if self.response is None:
            return []
        return [record.rdata.address  # type: ignore[attr-defined]
                for record in self.response.answers
                if record.rrtype in (RRType.A, RRType.AAAA)]


StubCallback = Callable[[StubOutcome], None]


@dataclass
class StubStats:
    queries: int = 0
    responses: int = 0
    spoofs_rejected: int = 0
    poisoned_acceptances: int = 0
    timeouts: int = 0


class StubResolver:
    """Client-side resolver speaking plain DNS to one recursive server.

    :param host: the client machine.
    :param simulator: for timeouts.
    :param server: recursive resolver address (port 53 assumed).
    :param timeout: per-attempt timeout in seconds.
    :param retries: additional attempts after the first.
    """

    def __init__(self, host: Host, simulator: Simulator,
                 server: IPAddress, timeout: float = 3.0,
                 retries: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        self._host = host
        self._simulator = simulator
        self._server = Endpoint(IPAddress(server), DNS_PORT)
        self._policy = RetryPolicy(timeout=timeout, retries=retries)
        self._transport = Transport(host, simulator,
                                    rng=rng or random.Random(0))
        self._stats = StubStats()
        self._telemetry = current_registry()
        self._tracer = current_tracer()
        # TXID-independent query tails per (labels, qtype): a query's
        # wire form is its 2-byte TXID followed by fixed bytes, so each
        # attempt is one struct.pack + concat instead of a full encode.
        self._query_tails: Dict[Tuple, bytes] = {}

    @property
    def stats(self) -> StubStats:
        return self._stats

    @property
    def server(self) -> Endpoint:
        return self._server

    def query(self, qname: "Name | str", qtype: RRType,
              callback: StubCallback) -> None:
        """Send an RD=1 query; invoke ``callback`` exactly once."""
        qname = Name(qname)
        tail_key = (qname.labels, qtype)
        tail = self._query_tails.get(tail_key)
        if tail is None:
            tail = make_query(0, qname, qtype,
                              recursion_desired=True).encode()[2:]
            self._query_tails[tail_key] = tail

        def build_request(attempt: AttemptInfo) -> bytes:
            self._stats.queries += 1
            if self._tracer is not None:
                # Runs under the attempt span's scope (the transport
                # activates it around begin_attempt).
                self._tracer.event("dns.encode",
                                   attrs={"qname": str(qname),
                                          "qtype": qtype.name})
            return struct.pack("!H", attempt.txid) + tail

        def classify(datagram: Datagram,
                     attempt: AttemptInfo) -> Optional[Message]:
            response = validate_reply(datagram, attempt.txid, self._server,
                                      qname, qtype)
            if response is None:
                self._stats.spoofs_rejected += 1
                if self._tracer is not None:
                    self._tracer.event("dns.decode",
                                       attrs={"qname": str(qname),
                                              "accepted": False})
                return None
            self._stats.responses += 1
            if self._tracer is not None:
                addresses = [str(record.rdata.address)  # type: ignore[attr-defined]
                             for record in response.answers
                             if record.rrtype in (RRType.A, RRType.AAAA)]
                decode = self._tracer.event(
                    "dns.decode", attrs={"qname": str(qname),
                                         "accepted": True,
                                         "answers": addresses})
                if datagram.spoofed:
                    decode.set(spoofed=True)
            if datagram.spoofed:
                self._stats.poisoned_acceptances += 1
                if self._telemetry is not None:
                    self._telemetry.counter("dns.stub.poisoned").inc()
            return response

        def on_complete(report: ExchangeReport) -> None:
            if self._telemetry is not None:
                # Per attempt, mirroring StubStats.queries.
                self._telemetry.counter("dns.stub.queries").inc(
                    report.attempts)
                if report.rejected_replies:
                    self._telemetry.counter("dns.stub.spoofs_rejected").inc(
                        report.rejected_replies)
            if report.timed_out:
                self._stats.timeouts += 1
                if self._telemetry is not None:
                    self._telemetry.counter("dns.stub.timeouts").inc()
                callback(StubOutcome(response=None, timed_out=True,
                                     attempts=report.attempts))
                return
            if self._telemetry is not None:
                self._telemetry.counter("dns.stub.responses").inc()
            callback(StubOutcome(response=report.value,
                                 attempts=report.attempts))

        self._transport.exchange(
            self._server, build_request=build_request, classify=classify,
            on_complete=on_complete, policy=self._policy, label="stub-query")
