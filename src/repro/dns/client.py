"""Stub resolver: the client side of plain DNS.

Sends recursive (RD=1) queries to a configured resolver address over
UDP, with timeout and retry. This is the *insecure baseline* the paper
starts from: one resolver, one path, spoofable transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator, Timer

DNS_PORT = 53


@dataclass
class StubOutcome:
    """Result of one stub query."""

    response: Optional[Message]
    timed_out: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return (self.response is not None
                and self.response.rcode is RCode.NOERROR)

    @property
    def addresses(self) -> List[IPAddress]:
        """Convenience: all A/AAAA addresses in the answer section."""
        if self.response is None:
            return []
        return [record.rdata.address  # type: ignore[attr-defined]
                for record in self.response.answers
                if record.rrtype in (RRType.A, RRType.AAAA)]


StubCallback = Callable[[StubOutcome], None]


@dataclass
class StubStats:
    queries: int = 0
    responses: int = 0
    spoofs_rejected: int = 0
    poisoned_acceptances: int = 0
    timeouts: int = 0


class StubResolver:
    """Client-side resolver speaking plain DNS to one recursive server.

    :param host: the client machine.
    :param simulator: for timeouts.
    :param server: recursive resolver address (port 53 assumed).
    :param timeout: per-attempt timeout in seconds.
    :param retries: additional attempts after the first.
    """

    def __init__(self, host: Host, simulator: Simulator,
                 server: IPAddress, timeout: float = 3.0,
                 retries: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        self._host = host
        self._simulator = simulator
        self._server = Endpoint(IPAddress(server), DNS_PORT)
        self._timeout = timeout
        self._retries = retries
        self._rng = rng or random.Random(0)
        self._stats = StubStats()

    @property
    def stats(self) -> StubStats:
        return self._stats

    @property
    def server(self) -> Endpoint:
        return self._server

    def query(self, qname: "Name | str", qtype: RRType,
              callback: StubCallback) -> None:
        """Send an RD=1 query; invoke ``callback`` exactly once."""
        _StubQuery(self, Name(qname), qtype, callback).start()


class _StubQuery:
    """One in-flight stub query with retry."""

    def __init__(self, stub: StubResolver, qname: Name, qtype: RRType,
                 callback: StubCallback) -> None:
        self._stub = stub
        self._qname = qname
        self._qtype = qtype
        self._callback = callback
        self._attempts = 0
        self._finished = False
        self._socket = None
        self._timer: Optional[Timer] = None
        self._txid = 0

    def start(self) -> None:
        self._attempt()

    def _attempt(self) -> None:
        if self._finished:
            return
        if self._attempts > self._stub._retries:
            self._stub._stats.timeouts += 1
            self._finish(StubOutcome(response=None, timed_out=True,
                                     attempts=self._attempts))
            return
        self._attempts += 1
        self._stub._stats.queries += 1
        self._txid = self._stub._rng.randrange(1 << 16)
        query = make_query(self._txid, self._qname, self._qtype,
                           recursion_desired=True)
        self._close_socket()
        self._socket = self._stub._host.ephemeral_socket(self._on_datagram)
        self._socket.sendto(self._stub._server, query.encode())
        self._timer = Timer(self._stub._simulator, self._on_timeout,
                            label="stub-query")
        self._timer.start(self._stub._timeout)

    def _on_timeout(self) -> None:
        self._attempt()

    def _on_datagram(self, datagram: Datagram) -> None:
        if self._finished:
            return
        try:
            response = Message.decode(datagram.payload)
        except WireFormatError:
            self._stub._stats.spoofs_rejected += 1
            return
        if (not response.is_response
                or response.txid != self._txid
                or datagram.src != self._stub._server
                or len(response.questions) != 1
                or response.questions[0].qname != self._qname
                or response.questions[0].qtype != self._qtype):
            self._stub._stats.spoofs_rejected += 1
            return
        self._stub._stats.responses += 1
        if datagram.spoofed:
            self._stub._stats.poisoned_acceptances += 1
        self._finish(StubOutcome(response=response, attempts=self._attempts))

    def _finish(self, outcome: StubOutcome) -> None:
        if self._finished:
            return
        self._finished = True
        if self._timer is not None:
            self._timer.cancel()
        self._close_socket()
        self._callback(outcome)

    def _close_socket(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None
