"""Low-level DNS wire-format reader/writer with name compression.

``WireWriter`` tracks the offset of every name it emits and replaces
later occurrences with compression pointers (RFC 1035 §4.1.4).
``WireReader`` follows pointers with loop protection.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.dns.name import Name

_POINTER_FLAG = 0xC0
_MAX_POINTER_HOPS = 128

# Decoded-name intern pool: the simulation parses the same handful of
# names millions of times, so identical label tuples share one immutable
# Name. Bounded (cleared wholesale when full) and keyed on the exact,
# case-preserved labels.
_NAME_POOL: Dict[Tuple[bytes, ...], Name] = {}
_NAME_POOL_MAX = 4096


class WireFormatError(ValueError):
    """Raised when decoding malformed wire data."""


class WireWriter:
    """Accumulates a DNS message's wire bytes.

    >>> writer = WireWriter()
    >>> writer.write_u16(0x1234)
    >>> writer.getvalue().hex()
    '1234'
    """

    def __init__(self, compress: bool = True) -> None:
        self._chunks: list[bytes] = []
        self._length = 0
        self._compress = compress
        # Maps folded label suffix tuples to their first wire offset.
        self._name_offsets: Dict[Tuple[bytes, ...], int] = {}

    @property
    def offset(self) -> int:
        """Current length of the accumulated output."""
        return self._length

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def write_bytes(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def write_u8(self, value: int) -> None:
        self.write_bytes(struct.pack("!B", value))

    def write_u16(self, value: int) -> None:
        self.write_bytes(struct.pack("!H", value))

    def write_u32(self, value: int) -> None:
        self.write_bytes(struct.pack("!I", value))

    def write_name(self, name: Name) -> None:
        """Emit a (possibly compressed) domain name."""
        labels = name.labels
        folded = tuple(label.lower() for label in labels)
        for index in range(len(labels)):
            suffix = folded[index:]
            known_offset = self._name_offsets.get(suffix) if self._compress else None
            if known_offset is not None and known_offset < 0x4000:
                self.write_u16(_POINTER_FLAG << 8 | known_offset)
                return
            if self._compress and self._length < 0x4000:
                self._name_offsets[suffix] = self._length
            label = labels[index]
            self.write_u8(len(label))
            self.write_bytes(label)
        self.write_u8(0)

    def write_character_string(self, data: bytes) -> None:
        """Emit a <character-string> (length-prefixed, max 255)."""
        if len(data) > 255:
            raise WireFormatError("character-string exceeds 255 bytes")
        self.write_u8(len(data))
        self.write_bytes(data)


class WireReader:
    """Cursor over a DNS message's wire bytes."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset
        # Set when a compression pointer targets the message ID bytes
        # (offsets 0-1); such a parse depends on the transaction ID and
        # is ineligible for ID-independent decode memoization.
        self.pointer_into_id = False

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= len(self._data):
            raise WireFormatError(f"seek out of range: {offset}")
        self._offset = offset

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self._offset + count > len(self._data):
            raise WireFormatError(
                f"truncated message: wanted {count} bytes at {self._offset}"
            )
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def read_u8(self) -> int:
        return self.read_bytes(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read_bytes(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read_bytes(4))[0]

    def read_name(self) -> Name:
        """Decode a domain name, following compression pointers."""
        labels: list[bytes] = []
        hops = 0
        cursor = self._offset
        jumped = False
        while True:
            if cursor >= len(self._data):
                raise WireFormatError("name runs past end of message")
            length = self._data[cursor]
            if length & _POINTER_FLAG == _POINTER_FLAG:
                if cursor + 1 >= len(self._data):
                    raise WireFormatError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | self._data[cursor + 1]
                if not jumped:
                    self._offset = cursor + 2
                    jumped = True
                if pointer >= cursor:
                    raise WireFormatError("forward compression pointer")
                if pointer < 2:
                    self.pointer_into_id = True
                cursor = pointer
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise WireFormatError("compression pointer loop")
                continue
            if length & _POINTER_FLAG:
                raise WireFormatError(f"reserved label type 0x{length:02x}")
            cursor += 1
            if length == 0:
                if not jumped:
                    self._offset = cursor
                key = tuple(labels)
                name = _NAME_POOL.get(key)
                if name is None:
                    if len(_NAME_POOL) >= _NAME_POOL_MAX:
                        _NAME_POOL.clear()
                    name = Name.from_labels(key)
                    _NAME_POOL[key] = name
                return name
            if cursor + length > len(self._data):
                raise WireFormatError("label runs past end of message")
            labels.append(self._data[cursor:cursor + length])
            cursor += length

    def read_character_string(self) -> bytes:
        length = self.read_u8()
        return self.read_bytes(length)
