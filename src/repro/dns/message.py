"""DNS messages (RFC 1035 §4).

The :class:`Message` codec is wire-accurate for the feature subset the
simulation uses: 12-byte header with flags, question section, and three
record sections with name compression on encode and full pointer
chasing on decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import Rdata, decode_rdata
from repro.dns.rrtype import RRClass, RRType
from repro.dns.wire import WireFormatError, WireReader, WireWriter

MAX_TXID = 0xFFFF


@dataclass(frozen=True)
class Flags:
    """Header flag bits (QR, OPCODE, AA, TC, RD, RA, and RCODE)."""

    qr: bool = False       # response?
    opcode: int = 0        # QUERY
    aa: bool = False       # authoritative answer
    tc: bool = False       # truncated
    rd: bool = True        # recursion desired
    ra: bool = False       # recursion available
    rcode: RCode = RCode.NOERROR

    def to_wire(self) -> int:
        value = 0
        if self.qr:
            value |= 0x8000
        value |= (self.opcode & 0xF) << 11
        if self.aa:
            value |= 0x0400
        if self.tc:
            value |= 0x0200
        if self.rd:
            value |= 0x0100
        if self.ra:
            value |= 0x0080
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def from_wire(cls, value: int) -> "Flags":
        rcode_value = value & 0xF
        try:
            rcode = RCode(rcode_value)
        except ValueError:
            # Unknown RCODEs are treated as SERVFAIL-equivalent failures.
            rcode = RCode.SERVFAIL
        return cls(
            qr=bool(value & 0x8000),
            opcode=(value >> 11) & 0xF,
            aa=bool(value & 0x0400),
            tc=bool(value & 0x0200),
            rd=bool(value & 0x0100),
            ra=bool(value & 0x0080),
            rcode=rcode,
        )


@dataclass(frozen=True)
class Question:
    """A question-section entry."""

    qname: Name
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", Name(self.qname))
        object.__setattr__(self, "qtype", RRType(self.qtype))
        object.__setattr__(self, "qclass", RRClass(self.qclass))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.qname)
        writer.write_u16(int(self.qtype))
        writer.write_u16(int(self.qclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        qname = reader.read_name()
        qtype_value = reader.read_u16()
        qclass_value = reader.read_u16()
        try:
            qtype = RRType(qtype_value)
        except ValueError:
            raise WireFormatError(f"unsupported QTYPE {qtype_value}") from None
        try:
            qclass = RRClass(qclass_value)
        except ValueError:
            raise WireFormatError(f"unsupported QCLASS {qclass_value}") from None
        return cls(qname, qtype, qclass)

    def __str__(self) -> str:
        return f"{self.qname} {self.qclass.name} {self.qtype.name}"


@dataclass(frozen=True)
class ResourceRecord:
    """A resource record in the answer/authority/additional sections."""

    name: Name
    rrtype: RRType
    ttl: int
    rdata: Rdata
    rrclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", Name(self.name))
        object.__setattr__(self, "rrtype", RRType(self.rrtype))
        object.__setattr__(self, "rrclass", RRClass(self.rrclass))
        if not 0 <= self.ttl <= 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(int(self.rrtype))
        writer.write_u16(int(self.rrclass))
        writer.write_u32(self.ttl)
        # RDLENGTH is written after RDATA is rendered; render into a
        # sub-writer without compression to keep lengths self-contained.
        sub = WireWriter(compress=False)
        self.rdata.to_wire(sub)
        rendered = sub.getvalue()
        writer.write_u16(len(rendered))
        writer.write_bytes(rendered)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        type_code = reader.read_u16()
        class_code = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = decode_rdata(type_code, reader, rdlength)
        try:
            rrtype = RRType(type_code)
        except ValueError:
            rrtype = RRType.OPT  # opaque carrier; rdata keeps the real code
        try:
            rrclass = RRClass(class_code)
        except ValueError:
            rrclass = RRClass.IN
        return cls(name, rrtype, ttl, rdata, rrclass)

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        return replace(self, ttl=ttl)

    def __str__(self) -> str:
        return (f"{self.name} {self.ttl} {self.rrclass.name} "
                f"{self.rrtype.name} {self.rdata.to_text()}")


@dataclass
class Message:
    """A full DNS message."""

    txid: int
    flags: Flags = field(default_factory=Flags)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= MAX_TXID:
            raise ValueError(f"TXID out of range: {self.txid}")

    # ------------------------------------------------------------------
    # Convenience accessors.
    # ------------------------------------------------------------------

    @property
    def question(self) -> Question:
        """The single question (raises if the count differs from one)."""
        if len(self.questions) != 1:
            raise ValueError(
                f"expected exactly one question, found {len(self.questions)}"
            )
        return self.questions[0]

    @property
    def is_response(self) -> bool:
        return self.flags.qr

    @property
    def rcode(self) -> RCode:
        return self.flags.rcode

    def answers_for(self, name: Name, rrtype: RRType) -> List[ResourceRecord]:
        """Answer-section records matching a (name, type) pair."""
        return [record for record in self.answers
                if record.name == name and record.rrtype == rrtype]

    def section_records(self) -> Sequence[ResourceRecord]:
        """All records across the three record sections."""
        return [*self.answers, *self.authority, *self.additional]

    # ------------------------------------------------------------------
    # Wire codec.
    # ------------------------------------------------------------------

    def encode(self, compress: bool = True) -> bytes:
        writer = WireWriter(compress=compress)
        writer.write_u16(self.txid)
        writer.write_u16(self.flags.to_wire())
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authority))
        writer.write_u16(len(self.additional))
        for question in self.questions:
            question.to_wire(writer)
        for record in self.answers:
            record.to_wire(writer)
        for record in self.authority:
            record.to_wire(writer)
        for record in self.additional:
            record.to_wire(writer)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        txid = reader.read_u16()
        flags = Flags.from_wire(reader.read_u16())
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        questions = [Question.from_wire(reader) for _ in range(qdcount)]
        answers = [ResourceRecord.from_wire(reader) for _ in range(ancount)]
        authority = [ResourceRecord.from_wire(reader) for _ in range(nscount)]
        additional = [ResourceRecord.from_wire(reader) for _ in range(arcount)]
        return cls(txid=txid, flags=flags, questions=questions,
                   answers=answers, authority=authority,
                   additional=additional)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"txid={self.txid:#06x} rcode={self.rcode.name}"
                 f" {'response' if self.is_response else 'query'}"]
        for question in self.questions:
            parts.append(f"  ? {question}")
        for record in self.answers:
            parts.append(f"  = {record}")
        for record in self.authority:
            parts.append(f"  @ {record}")
        for record in self.additional:
            parts.append(f"  + {record}")
        return "\n".join(parts)


def make_query(txid: int, qname: "Name | str", qtype: RRType,
               recursion_desired: bool = True) -> Message:
    """Build a standard query message."""
    return Message(
        txid=txid,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=[Question(Name(qname), qtype)],
    )


def make_response(query: Message, rcode: RCode = RCode.NOERROR,
                  answers: Optional[List[ResourceRecord]] = None,
                  authority: Optional[List[ResourceRecord]] = None,
                  additional: Optional[List[ResourceRecord]] = None,
                  authoritative: bool = False,
                  recursion_available: bool = False) -> Message:
    """Build a response echoing the query's TXID and question."""
    return Message(
        txid=query.txid,
        flags=Flags(qr=True, aa=authoritative, rd=query.flags.rd,
                    ra=recursion_available, rcode=rcode),
        questions=list(query.questions),
        answers=list(answers or []),
        authority=list(authority or []),
        additional=list(additional or []),
    )
