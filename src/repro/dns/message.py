"""DNS messages (RFC 1035 §4).

The :class:`Message` codec is wire-accurate for the feature subset the
simulation uses: 12-byte header with flags, question section, and three
record sections with name compression on encode and full pointer
chasing on decode.

Both directions of the codec are memoized on their *transaction-ID
independent* content: the first two wire bytes are the only place the
TXID lives, and compression pointers are absolute offsets past the
fixed-size header, so a message differing only in TXID encodes to (and
decodes from) byte-identical tails. The population workload leans on
this heavily — a thousand clients exchange the same question/answer
bytes under fresh random TXIDs, and steady state becomes one dict hit
plus a 2-byte header patch instead of a full parse or render. The
caches are value-keyed, case-exact and bounded, so memoized results are
bit-identical to cold ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import Rdata, decode_rdata
from repro.dns.rrtype import RRClass, RRType
from repro.dns.wire import WireFormatError, WireReader, WireWriter

MAX_TXID = 0xFFFF

# TXID-independent codec memos (see module docstring). Bounded by
# wholesale clearing: the working set of distinct messages in any run
# is tiny, and clearing never changes results — only re-parses once.
_DECODE_MEMO: "Dict[bytes, Message]" = {}
_ENCODE_MEMO: Dict[tuple, bytes] = {}
_CODEC_MEMO_MAX = 1024


@dataclass(frozen=True)
class Flags:
    """Header flag bits (QR, OPCODE, AA, TC, RD, RA, and RCODE)."""

    qr: bool = False       # response?
    opcode: int = 0        # QUERY
    aa: bool = False       # authoritative answer
    tc: bool = False       # truncated
    rd: bool = True        # recursion desired
    ra: bool = False       # recursion available
    rcode: RCode = RCode.NOERROR

    def to_wire(self) -> int:
        value = 0
        if self.qr:
            value |= 0x8000
        value |= (self.opcode & 0xF) << 11
        if self.aa:
            value |= 0x0400
        if self.tc:
            value |= 0x0200
        if self.rd:
            value |= 0x0100
        if self.ra:
            value |= 0x0080
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def from_wire(cls, value: int) -> "Flags":
        rcode_value = value & 0xF
        try:
            rcode = RCode(rcode_value)
        except ValueError:
            # Unknown RCODEs are treated as SERVFAIL-equivalent failures.
            rcode = RCode.SERVFAIL
        return cls(
            qr=bool(value & 0x8000),
            opcode=(value >> 11) & 0xF,
            aa=bool(value & 0x0400),
            tc=bool(value & 0x0200),
            rd=bool(value & 0x0100),
            ra=bool(value & 0x0080),
            rcode=rcode,
        )


@dataclass(frozen=True)
class Question:
    """A question-section entry."""

    qname: Name
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        # Coerce only when needed: the hot paths construct questions
        # from already-typed values.
        if type(self.qname) is not Name:
            object.__setattr__(self, "qname", Name(self.qname))
        if type(self.qtype) is not RRType:
            object.__setattr__(self, "qtype", RRType(self.qtype))
        if type(self.qclass) is not RRClass:
            object.__setattr__(self, "qclass", RRClass(self.qclass))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.qname)
        writer.write_u16(int(self.qtype))
        writer.write_u16(int(self.qclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        qname = reader.read_name()
        qtype_value = reader.read_u16()
        qclass_value = reader.read_u16()
        try:
            qtype = RRType(qtype_value)
        except ValueError:
            raise WireFormatError(f"unsupported QTYPE {qtype_value}") from None
        try:
            qclass = RRClass(qclass_value)
        except ValueError:
            raise WireFormatError(f"unsupported QCLASS {qclass_value}") from None
        return cls(qname, qtype, qclass)

    def __str__(self) -> str:
        return f"{self.qname} {self.qclass.name} {self.qtype.name}"


@dataclass(frozen=True)
class ResourceRecord:
    """A resource record in the answer/authority/additional sections."""

    name: Name
    rrtype: RRType
    ttl: int
    rdata: Rdata
    rrclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if type(self.name) is not Name:
            object.__setattr__(self, "name", Name(self.name))
        if type(self.rrtype) is not RRType:
            object.__setattr__(self, "rrtype", RRType(self.rrtype))
        if type(self.rrclass) is not RRClass:
            object.__setattr__(self, "rrclass", RRClass(self.rrclass))
        if not 0 <= self.ttl <= 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(int(self.rrtype))
        writer.write_u16(int(self.rrclass))
        writer.write_u32(self.ttl)
        # RDLENGTH is written after RDATA is rendered; render into a
        # sub-writer without compression to keep lengths self-contained.
        sub = WireWriter(compress=False)
        self.rdata.to_wire(sub)
        rendered = sub.getvalue()
        writer.write_u16(len(rendered))
        writer.write_bytes(rendered)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        type_code = reader.read_u16()
        class_code = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = decode_rdata(type_code, reader, rdlength)
        try:
            rrtype = RRType(type_code)
        except ValueError:
            rrtype = RRType.OPT  # opaque carrier; rdata keeps the real code
        try:
            rrclass = RRClass(class_code)
        except ValueError:
            rrclass = RRClass.IN
        return cls(name, rrtype, ttl, rdata, rrclass)

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy with the TTL replaced.

        Hand-rolled clone instead of :func:`dataclasses.replace`: the
        cache decays every answered record's TTL on every hit, and the
        generic replace would re-run the whole coercing ``__post_init__``
        per record per query.
        """
        if ttl == self.ttl:
            return self
        if not 0 <= ttl <= 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {ttl}")
        clone = object.__new__(ResourceRecord)
        object.__setattr__(clone, "name", self.name)
        object.__setattr__(clone, "rrtype", self.rrtype)
        object.__setattr__(clone, "ttl", ttl)
        object.__setattr__(clone, "rdata", self.rdata)
        object.__setattr__(clone, "rrclass", self.rrclass)
        return clone

    def __str__(self) -> str:
        return (f"{self.name} {self.ttl} {self.rrclass.name} "
                f"{self.rrtype.name} {self.rdata.to_text()}")


@dataclass
class Message:
    """A full DNS message."""

    txid: int
    flags: Flags = field(default_factory=Flags)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= MAX_TXID:
            raise ValueError(f"TXID out of range: {self.txid}")

    # ------------------------------------------------------------------
    # Convenience accessors.
    # ------------------------------------------------------------------

    @property
    def question(self) -> Question:
        """The single question (raises if the count differs from one)."""
        if len(self.questions) != 1:
            raise ValueError(
                f"expected exactly one question, found {len(self.questions)}"
            )
        return self.questions[0]

    @property
    def is_response(self) -> bool:
        return self.flags.qr

    @property
    def rcode(self) -> RCode:
        return self.flags.rcode

    def answers_for(self, name: Name, rrtype: RRType) -> List[ResourceRecord]:
        """Answer-section records matching a (name, type) pair."""
        return [record for record in self.answers
                if record.name == name and record.rrtype == rrtype]

    def section_records(self) -> Sequence[ResourceRecord]:
        """All records across the three record sections."""
        return [*self.answers, *self.authority, *self.additional]

    # ------------------------------------------------------------------
    # Wire codec.
    # ------------------------------------------------------------------

    def _content_key(self, compress: bool) -> Optional[tuple]:
        """A hashable, case-exact identity of everything but the TXID,
        or ``None`` when some RDATA opts out of memoization."""
        try:
            sections = tuple(
                tuple((record.name.labels, int(record.rrtype),
                       int(record.rrclass), record.ttl,
                       record.rdata.cache_key())
                      for record in section)
                for section in (self.answers, self.authority, self.additional)
            )
        except AttributeError:      # a foreign Rdata without cache_key
            return None
        for section in sections:
            for record in section:
                if record[4] is None:
                    return None
        return (compress, self.flags,
                tuple((q.qname.labels, int(q.qtype), int(q.qclass))
                      for q in self.questions)) + sections

    def encode(self, compress: bool = True) -> bytes:
        key = self._content_key(compress)
        if key is not None:
            tail = _ENCODE_MEMO.get(key)
            if tail is not None:
                return struct.pack("!H", self.txid) + tail
        writer = WireWriter(compress=compress)
        writer.write_u16(self.txid)
        writer.write_u16(self.flags.to_wire())
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authority))
        writer.write_u16(len(self.additional))
        for question in self.questions:
            question.to_wire(writer)
        for record in self.answers:
            record.to_wire(writer)
        for record in self.authority:
            record.to_wire(writer)
        for record in self.additional:
            record.to_wire(writer)
        wire = writer.getvalue()
        if key is not None:
            if len(_ENCODE_MEMO) >= _CODEC_MEMO_MAX:
                _ENCODE_MEMO.clear()
            _ENCODE_MEMO[key] = wire[2:]
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        template = _DECODE_MEMO.get(data[2:])
        if template is not None:
            return cls(txid=(data[0] << 8) | data[1], flags=template.flags,
                       questions=list(template.questions),
                       answers=list(template.answers),
                       authority=list(template.authority),
                       additional=list(template.additional))
        reader = WireReader(data)
        txid = reader.read_u16()
        flags = Flags.from_wire(reader.read_u16())
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        questions = [Question.from_wire(reader) for _ in range(qdcount)]
        answers = [ResourceRecord.from_wire(reader) for _ in range(ancount)]
        authority = [ResourceRecord.from_wire(reader) for _ in range(nscount)]
        additional = [ResourceRecord.from_wire(reader) for _ in range(arcount)]
        if not reader.pointer_into_id:
            # Safe to memoize: nothing in the parse read the ID bytes,
            # so any wire sharing this tail decodes identically (bar
            # the TXID, patched from the header on each hit). The
            # template is private to the memo; hits get fresh section
            # lists so callers may mutate their message freely.
            if len(_DECODE_MEMO) >= _CODEC_MEMO_MAX:
                _DECODE_MEMO.clear()
            _DECODE_MEMO[bytes(data[2:])] = cls(
                txid=txid, flags=flags, questions=list(questions),
                answers=list(answers), authority=list(authority),
                additional=list(additional))
        return cls(txid=txid, flags=flags, questions=questions,
                   answers=answers, authority=authority,
                   additional=additional)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"txid={self.txid:#06x} rcode={self.rcode.name}"
                 f" {'response' if self.is_response else 'query'}"]
        for question in self.questions:
            parts.append(f"  ? {question}")
        for record in self.answers:
            parts.append(f"  = {record}")
        for record in self.authority:
            parts.append(f"  @ {record}")
        for record in self.additional:
            parts.append(f"  + {record}")
        return "\n".join(parts)


def make_query(txid: int, qname: "Name | str", qtype: RRType,
               recursion_desired: bool = True) -> Message:
    """Build a standard query message."""
    return Message(
        txid=txid,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=[Question(Name(qname), qtype)],
    )


def make_response(query: Message, rcode: RCode = RCode.NOERROR,
                  answers: Optional[List[ResourceRecord]] = None,
                  authority: Optional[List[ResourceRecord]] = None,
                  additional: Optional[List[ResourceRecord]] = None,
                  authoritative: bool = False,
                  recursion_available: bool = False) -> Message:
    """Build a response echoing the query's TXID and question."""
    return Message(
        txid=query.txid,
        flags=Flags(qr=True, aa=authoritative, rd=query.flags.rd,
                    ra=recursion_available, rcode=rcode),
        questions=list(query.questions),
        answers=list(answers or []),
        authority=list(authority or []),
        additional=list(additional or []),
    )
