"""Caching recursive resolver with iterative resolution.

This is the component the paper's off-path attacker targets. The attack
surface is modelled faithfully:

* each upstream query uses a fresh ephemeral source port (random by
  default — the host option ``randomize_ports=False`` models weak
  stacks) and a TXID drawn from a configurable space;
* a response is accepted only if it arrives on the right socket, from
  the queried server's endpoint, with the matching TXID and question —
  exactly the checks a real resolver performs, no more;
* records are bailiwick-filtered: a server can only speak for names at
  or below the zone the resolver believes it is authoritative for.

Resolution is iterative (root hints → referrals → answer) with CNAME
chasing, per-server retry, negative caching, and counters for every
security-relevant event (spoofed responses rejected, etc.).

Upstream timeout/retry supervision rides on
:class:`repro.netsim.transport.Transport`: one
:meth:`~repro.netsim.transport.Transport.exchange` per queried server
covers that server's whole retry budget (fresh ephemeral socket and
TXID per attempt, exponential backoff per
:attr:`ResolverConfig.retry_backoff`); a server answering with a
SERVFAIL-class rcode advances straight to the next server.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dns.cache import DnsCache
from repro.dns.client import validate_reply
from repro.dns.message import Message, ResourceRecord, make_query, make_response
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import CNAMERdata, NSRdata
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    AttemptInfo,
    DatagramExchange,
    ExchangeReport,
    RetryPolicy,
    Transport,
)

DNS_PORT = 53


@dataclass(frozen=True)
class ResolverConfig:
    """Tunables for the recursive resolver.

    ``txid_bits`` exists so attack experiments can shrink the TXID space
    (the real space is 16 bits; classic pre-randomisation resolvers
    effectively had far less entropy).

    ``retry_backoff`` multiplies the per-attempt timeout on every retry
    against the same server (capped by ``retry_max_timeout``), so a
    patient configuration waits longer each time instead of hammering a
    congested path at a fixed cadence.
    """

    query_timeout: float = 2.0
    max_retries_per_server: int = 1
    retry_backoff: float = 1.5
    retry_max_timeout: Optional[float] = 8.0
    max_referral_depth: int = 16
    max_cname_chain: int = 8
    max_ns_resolution_depth: int = 4
    txid_bits: int = 16
    randomize_txid: bool = True
    cache_max_entries: int = 10_000
    negative_ttl_cap: int = 900
    serve_port: int = DNS_PORT

    def __post_init__(self) -> None:
        if not 1 <= self.txid_bits <= 16:
            raise ValueError("txid_bits must be in [1, 16]")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1.0")

    def retry_policy(self) -> RetryPolicy:
        """The transport schedule for one server's retry budget."""
        max_timeout = self.retry_max_timeout
        if max_timeout is not None and max_timeout < self.query_timeout:
            max_timeout = self.query_timeout
        return RetryPolicy(timeout=self.query_timeout,
                           retries=self.max_retries_per_server,
                           backoff=self.retry_backoff,
                           max_timeout=max_timeout)


class ResolveStatus(enum.Enum):
    """Terminal states of one resolution."""

    SUCCESS = "success"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"


@dataclass
class ResolveOutcome:
    """What a resolution produced."""

    status: ResolveStatus
    records: List[ResourceRecord] = field(default_factory=list)
    rcode: RCode = RCode.NOERROR
    from_cache: bool = False
    upstream_queries: int = 0

    @property
    def ok(self) -> bool:
        return self.status is ResolveStatus.SUCCESS


ResolveCallback = Callable[[ResolveOutcome], None]


@dataclass
class ResolverStats:
    """Security/operations counters exposed for experiments.

    ``exposure_windows`` / ``exposure_open_s`` quantify the paper's
    poisoning surface: every resolution that misses the cache opens a
    window (cache-miss start → slot filled) during which a spoofed
    answer can race the genuine one; ``referrals_followed`` counts the
    hops those resolutions walked down the hierarchy."""

    client_queries: int = 0
    upstream_queries: int = 0
    responses_accepted: int = 0
    spoofs_rejected: int = 0
    poisoned_acceptances: int = 0
    timeouts: int = 0
    servfails: int = 0
    cache_hits: int = 0
    bailiwick_rejected_records: int = 0
    referrals_followed: int = 0
    exposure_windows: int = 0
    exposure_open_s: float = 0.0


class RecursiveResolver:
    """An iterative, caching resolver bound to a simulated host.

    :param host: machine to run on; upstream queries use its ephemeral
        ports (randomised or not, per the host's configuration).
    :param simulator: virtual-time engine for timeouts and TTLs.
    :param root_hints: (server name, address) pairs for the root zone.
    :param config: behavioural tunables.
    :param rng: randomness source for TXIDs and server selection.
    :param instrument: publish per-hop RTT series, referral-depth and
        exposure-window histograms, cache hit/miss counters, and
        ``resolver.resolve``/``resolver.step`` trace spans.  The
        ambient registry/tracer are captured *once*, here — with no
        ambient sinks (or ``instrument=False``, the default) the
        resolver publishes nothing and behaves bit-identically.
    """

    def __init__(self, host: Host, simulator: Simulator,
                 root_hints: List[Tuple[Name, IPAddress]],
                 config: Optional[ResolverConfig] = None,
                 rng: Optional[random.Random] = None,
                 instrument: bool = False) -> None:
        if not root_hints:
            raise ValueError("resolver needs at least one root hint")
        self._host = host
        self._simulator = simulator
        self._root_hints = [(Name(name), IPAddress(address))
                            for name, address in root_hints]
        self._config = config or ResolverConfig()
        self._rng = rng or random.Random(0)
        registry = tracer = None
        if instrument:
            from repro.telemetry.registry import current_registry
            from repro.telemetry.trace import current_tracer
            registry = current_registry()
            tracer = current_tracer()
        self._tracer = tracer
        self._hop_rtt = self._depth_hist = self._exposure_hist = None
        if registry is not None:
            label = host.name
            self._hop_rtt = registry.timeseries(
                "dns.resolver.hop_rtt", resolver=label)
            self._depth_hist = registry.histogram(
                "dns.resolver.referral_depth", resolver=label)
            self._exposure_hist = registry.histogram(
                "dns.resolver.exposure_window", resolver=label)
        self._cache = DnsCache(clock=lambda: simulator.now,
                               max_entries=self._config.cache_max_entries,
                               registry=registry, label=host.name)
        self._stats = ResolverStats()
        self._sequential_txid = 0
        self._transport = Transport(host, simulator)
        self._retry_policy = self._config.retry_policy()
        self._serve_socket = host.bind(self._config.serve_port,
                                       self._handle_client_query)
        # The engine answering plain-DNS clients on :53; attack code
        # swaps this (like the DoH front-end's resolver reference) so a
        # compromised provider lies on every interface it serves.
        self.serve_engine: "RecursiveResolver" = self
        # Bounded-queue capacity during chaos Overload windows; None
        # (the steady state) keeps the historical inline serve path.
        self.capacity = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def host(self) -> Host:
        return self._host

    @property
    def cache(self) -> DnsCache:
        return self._cache

    @property
    def stats(self) -> ResolverStats:
        return self._stats

    @property
    def config(self) -> ResolverConfig:
        return self._config

    @property
    def address(self) -> IPAddress:
        return self._host.primary_address

    @property
    def endpoint(self) -> Endpoint:
        return self._serve_socket.endpoint

    # ------------------------------------------------------------------
    # Serving stub clients (plain DNS on :53).
    # ------------------------------------------------------------------

    def _handle_client_query(self, datagram: Datagram) -> None:
        try:
            query = Message.decode(datagram.payload)
        except WireFormatError:
            return
        if query.is_response or len(query.questions) != 1:
            return
        capacity = self.capacity
        if capacity is None:
            self._serve_client_query(datagram, query)
            return

        def reject() -> None:
            self._serve_socket.reply(datagram, make_response(
                query, rcode=RCode.SERVFAIL,
                recursion_available=True).encode())

        capacity.admit(lambda: self._serve_client_query(datagram, query),
                       reject)

    def _serve_client_query(self, datagram: Datagram,
                            query: Message) -> None:
        self._stats.client_queries += 1
        question = query.question

        def respond(outcome: ResolveOutcome) -> None:
            response = self.outcome_to_response(query, outcome)
            self._serve_socket.reply(datagram, response.encode())

        self.serve_engine.resolve(question.qname, question.qtype, respond)

    @staticmethod
    def outcome_to_response(query: Message, outcome: ResolveOutcome) -> Message:
        """Render a resolution outcome as a response to ``query``.

        Shared by the plain-DNS serving path and the DoH front-end."""
        if outcome.status is ResolveStatus.SUCCESS:
            return make_response(query, answers=outcome.records,
                                 recursion_available=True)
        if outcome.status is ResolveStatus.NXDOMAIN:
            return make_response(query, rcode=RCode.NXDOMAIN,
                                 recursion_available=True)
        if outcome.status is ResolveStatus.NODATA:
            return make_response(query, recursion_available=True)
        return make_response(query, rcode=RCode.SERVFAIL,
                             recursion_available=True)

    # ------------------------------------------------------------------
    # Public resolution API.
    # ------------------------------------------------------------------

    def resolve(self, qname: "Name | str", qtype: RRType,
                callback: ResolveCallback) -> None:
        """Resolve (qname, qtype), invoking ``callback`` exactly once."""
        _Resolution(self, Name(qname), qtype, callback).start()

    # ------------------------------------------------------------------
    # Internals shared with _Resolution.
    # ------------------------------------------------------------------

    def _next_txid(self) -> int:
        space = 1 << self._config.txid_bits
        if self._config.randomize_txid:
            return self._rng.randrange(space)
        txid = self._sequential_txid
        self._sequential_txid = (self._sequential_txid + 1) % space
        return txid


class _Resolution:
    """State machine for one (qname, qtype) resolution."""

    __slots__ = ("_resolver", "_qname", "_qtype", "_callback", "_ns_depth",
                 "_config", "_sim", "_zone", "_servers", "_server_index",
                 "_referrals", "_cname_chain", "_upstream_queries",
                 "_finished", "_exchange", "_started", "_span")

    def __init__(self, resolver: RecursiveResolver, qname: Name,
                 qtype: RRType, callback: ResolveCallback,
                 ns_depth: int = 0, cname_depth: int = 0,
                 parent_span=None) -> None:
        self._resolver = resolver
        self._qname = qname
        self._qtype = qtype
        self._callback = callback
        self._ns_depth = ns_depth
        self._config = resolver._config
        self._sim = resolver._simulator
        # Current zone of authority and its servers.
        self._zone = Name.root()
        self._servers: List[Tuple[Name, IPAddress]] = list(resolver._root_hints)
        self._server_index = 0
        self._referrals = 0
        self._cname_chain = cname_depth
        self._upstream_queries = 0
        self._finished = False
        self._exchange: Optional[DatagramExchange] = None
        self._started = self._sim.now
        tracer = resolver._tracer
        if tracer is None:
            self._span = None
        elif parent_span is not None:
            # Sub-resolutions (glueless NS, CNAME chase) hang off their
            # parent explicitly: the ambient span is unreliable across
            # simulator-callback hops.
            self._span = tracer.begin(
                "resolver.resolve", parent=parent_span,
                attrs={"qname": str(qname), "qtype": qtype.name})
        else:
            self._span = tracer.begin(
                "resolver.resolve",
                attrs={"qname": str(qname), "qtype": qtype.name,
                       "resolver": resolver._host.name})

    # ------------------------------------------------------------------
    # Driving.
    # ------------------------------------------------------------------

    def start(self) -> None:
        cached = self._resolver._cache.get(self._qname, self._qtype)
        if cached is not None:
            self._resolver._stats.cache_hits += 1
            if cached.is_negative:
                status = (ResolveStatus.NXDOMAIN
                          if cached.rcode is RCode.NXDOMAIN
                          else ResolveStatus.NODATA)
                self._finish(ResolveOutcome(status, rcode=cached.rcode,
                                            from_cache=True))
            else:
                self._finish(ResolveOutcome(ResolveStatus.SUCCESS,
                                            records=cached.records,
                                            from_cache=True))
            return
        # A cached CNAME for the qname restarts the chase without
        # touching the network.
        if self._qtype not in (RRType.CNAME, RRType.ANY):
            cached_cname = self._resolver._cache.get(self._qname, RRType.CNAME)
            if cached_cname is not None and not cached_cname.is_negative:
                self._resolver._stats.cache_hits += 1
                self._follow_cname(cached_cname.records[0], from_cache=True)
                return
        self._query_current_server()

    def _query_current_server(self) -> None:
        if self._finished:
            return
        if self._server_index >= len(self._servers):
            self._resolver._stats.servfails += 1
            self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                        rcode=RCode.SERVFAIL,
                                        upstream_queries=self._upstream_queries))
            return
        _, server_address = self._servers[self._server_index]
        server_endpoint = Endpoint(server_address, DNS_PORT)
        tracer = self._resolver._tracer
        step_span = None
        if tracer is not None:
            step_span = tracer.begin(
                "resolver.step", parent=self._span,
                attrs={"zone": str(self._zone),
                       "server": str(server_address),
                       "depth": self._referrals})
        # The transport owns this server's whole retry budget: fresh
        # ephemeral socket and TXID per attempt, backoff per the
        # resolver's policy. TXIDs come from the resolver's own stream
        # (sequential-TXID weak stacks included), so the exchange draws
        # them in build_request rather than asking the transport.
        expected: Dict[str, object] = {}

        def build_request(attempt: AttemptInfo) -> bytes:
            txid = self._resolver._next_txid()
            query = make_query(txid, self._qname, self._qtype,
                               recursion_desired=False)
            expected["txid"] = txid
            self._upstream_queries += 1
            self._resolver._stats.upstream_queries += 1
            return query.encode()

        def classify(datagram: Datagram,
                     attempt: AttemptInfo) -> Optional[Message]:
            # Wrong TXID / source / question: a real resolver drops it
            # and keeps waiting — this is what the attacker races.
            response = validate_reply(datagram, expected["txid"],
                                      server_endpoint, self._qname,
                                      self._qtype)
            if response is None:
                self._resolver._stats.spoofs_rejected += 1
                return None
            self._resolver._stats.responses_accepted += 1
            if datagram.spoofed:
                # Accounting only: an off-path forgery beat the checks.
                self._resolver._stats.poisoned_acceptances += 1
                if step_span is not None:
                    step_span.set(poisoned=True)
            return response

        def on_complete(report: ExchangeReport) -> None:
            self._exchange = None
            if step_span is not None:
                step_span.set(attempts=report.attempts,
                              timed_out=report.timed_out)
                tracer.finish(step_span)
            if self._finished:
                return
            if report.timed_out:
                # Every attempt in the budget timed out.
                self._resolver._stats.timeouts += report.attempts
                self._next_server()
                return
            if (self._resolver._hop_rtt is not None
                    and report.rtt is not None):
                self._resolver._hop_rtt.record(self._sim.now, report.rtt)
            # Attempts before the accepted one each burned a timeout.
            self._resolver._stats.timeouts += report.attempts - 1
            self._handle_response(report.value)

        self._exchange = self._resolver._transport.exchange(
            server_endpoint, build_request=build_request, classify=classify,
            on_complete=on_complete, policy=self._resolver._retry_policy,
            label="resolver-query", want_txid=False)

    def _next_server(self) -> None:
        """Advance to the next candidate server with a fresh budget."""
        self._server_index += 1
        self._query_current_server()

    # ------------------------------------------------------------------
    # Response classification.
    # ------------------------------------------------------------------

    def _handle_response(self, response: Message) -> None:
        if response.rcode in (RCode.SERVFAIL, RCode.REFUSED, RCode.NOTIMP,
                              RCode.FORMERR):
            # A server that answers-but-fails will keep failing; spend
            # the remaining patience on the next candidate instead.
            self._next_server()
            return

        in_bailiwick = self._bailiwick_filter(response)

        if response.rcode is RCode.NXDOMAIN:
            negative_ttl = self._negative_ttl(response)
            self._resolver._cache.put_negative(self._qname, self._qtype,
                                               RCode.NXDOMAIN, negative_ttl)
            self._finish(ResolveOutcome(ResolveStatus.NXDOMAIN,
                                        rcode=RCode.NXDOMAIN,
                                        upstream_queries=self._upstream_queries))
            return

        # Only the answer section may satisfy the question — glue in the
        # additional section is never promoted to an answer.
        answers = [record for record in response.answers
                   if record in in_bailiwick and record.name == self._qname]
        direct = [record for record in answers
                  if record.rrtype == self._qtype]
        if direct:
            self._resolver._cache.put_positive(self._qname, self._qtype, direct)
            self._finish(ResolveOutcome(ResolveStatus.SUCCESS, records=direct,
                                        upstream_queries=self._upstream_queries))
            return

        cnames = [record for record in answers
                  if record.rrtype is RRType.CNAME]
        if cnames and self._qtype not in (RRType.CNAME, RRType.ANY):
            self._resolver._cache.put_positive(self._qname, RRType.CNAME,
                                               cnames[:1])
            self._follow_cname(cnames[0], from_cache=False)
            return

        referral = self._extract_referral(response, in_bailiwick)
        if referral is not None:
            zone, servers, glueless = referral
            self._referrals += 1
            self._resolver._stats.referrals_followed += 1
            if self._referrals > self._config.max_referral_depth:
                self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                            rcode=RCode.SERVFAIL,
                                            upstream_queries=self._upstream_queries))
                return
            if servers:
                self._zone = zone
                self._servers = servers
                self._server_index = 0
                self._query_current_server()
                return
            if glueless and self._ns_depth < self._config.max_ns_resolution_depth:
                self._resolve_glueless(zone, glueless[0])
                return
            self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                        rcode=RCode.SERVFAIL,
                                        upstream_queries=self._upstream_queries))
            return

        # NODATA: authoritative empty answer.
        negative_ttl = self._negative_ttl(response)
        self._resolver._cache.put_negative(self._qname, self._qtype,
                                           RCode.NOERROR, negative_ttl)
        self._finish(ResolveOutcome(ResolveStatus.NODATA,
                                    upstream_queries=self._upstream_queries))

    def _bailiwick_filter(self, response: Message) -> List[ResourceRecord]:
        """Drop records outside the zone the queried server speaks for."""
        kept = []
        for record in response.section_records():
            if record.name.is_subdomain_of(self._zone):
                kept.append(record)
            else:
                self._resolver._stats.bailiwick_rejected_records += 1
        return kept

    def _negative_ttl(self, response: Message) -> int:
        from repro.dns.rdata import SOARdata
        for record in response.authority:
            if isinstance(record.rdata, SOARdata):
                return min(record.rdata.minimum, record.ttl,
                           self._config.negative_ttl_cap)
        return min(60, self._config.negative_ttl_cap)

    def _extract_referral(
        self, response: Message, in_bailiwick: List[ResourceRecord]
    ) -> Optional[Tuple[Name, List[Tuple[Name, IPAddress]], List[Name]]]:
        """Parse a referral: NS records for a child zone plus glue."""
        ns_by_zone: Dict[Name, List[Name]] = {}
        for record in response.authority:
            if record not in in_bailiwick:
                continue
            if record.rrtype is RRType.NS and isinstance(record.rdata, NSRdata):
                # The referral must move us strictly *down* the tree.
                if (record.name.is_subdomain_of(self._zone)
                        and record.name != self._zone
                        and self._qname.is_subdomain_of(record.name)):
                    ns_by_zone.setdefault(record.name, []).append(
                        record.rdata.target)
        if not ns_by_zone:
            return None
        # Deepest referral wins (there is normally exactly one).
        zone = max(ns_by_zone, key=len)
        ns_names = ns_by_zone[zone]
        glue: Dict[Name, List[IPAddress]] = {}
        for record in response.additional:
            if record not in in_bailiwick:
                continue
            if record.rrtype in (RRType.A, RRType.AAAA):
                glue.setdefault(record.name, []).append(
                    record.rdata.address)  # type: ignore[attr-defined]
        servers: List[Tuple[Name, IPAddress]] = []
        glueless: List[Name] = []
        for ns_name in ns_names:
            if ns_name in glue:
                for address in glue[ns_name]:
                    servers.append((ns_name, address))
            else:
                glueless.append(ns_name)
        return (zone, servers, glueless)

    def _resolve_glueless(self, zone: Name, ns_name: Name) -> None:
        """Resolve a glueless NS target, then continue the referral."""

        def continue_with(outcome: ResolveOutcome) -> None:
            if self._finished:
                return
            if not outcome.ok or not outcome.records:
                self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                            rcode=RCode.SERVFAIL,
                                            upstream_queries=self._upstream_queries))
                return
            servers = [(ns_name, record.rdata.address)  # type: ignore[attr-defined]
                       for record in outcome.records
                       if record.rrtype is RRType.A]
            if not servers:
                self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                            rcode=RCode.SERVFAIL,
                                            upstream_queries=self._upstream_queries))
                return
            self._zone = zone
            self._servers = servers
            self._server_index = 0
            self._query_current_server()

        _Resolution(self._resolver, ns_name, RRType.A, continue_with,
                    ns_depth=self._ns_depth + 1,
                    parent_span=self._span).start()

    def _follow_cname(self, cname_record: ResourceRecord,
                      from_cache: bool) -> None:
        self._cname_chain += 1
        if self._cname_chain > self._config.max_cname_chain:
            self._finish(ResolveOutcome(ResolveStatus.SERVFAIL,
                                        rcode=RCode.SERVFAIL,
                                        upstream_queries=self._upstream_queries))
            return
        assert isinstance(cname_record.rdata, CNAMERdata)
        target = cname_record.rdata.target
        prefix = [cname_record]

        def merge(outcome: ResolveOutcome) -> None:
            if outcome.ok:
                merged = ResolveOutcome(
                    ResolveStatus.SUCCESS,
                    records=prefix + outcome.records,
                    from_cache=from_cache and outcome.from_cache,
                    upstream_queries=self._upstream_queries,
                )
                self._finish(merged)
            else:
                self._finish(outcome)

        # Restart resolution for the target from the root (fresh state
        # machine shares the resolver's cache so it is cheap). The CNAME
        # depth is inherited so loops terminate.
        _Resolution(self._resolver, target, self._qtype, merge,
                    ns_depth=self._ns_depth,
                    cname_depth=self._cname_chain,
                    parent_span=self._span).start()

    # ------------------------------------------------------------------
    # Termination.
    # ------------------------------------------------------------------

    def _finish(self, outcome: ResolveOutcome) -> None:
        if self._finished:
            return
        self._finished = True
        if self._exchange is not None:
            # Abandon any in-flight exchange (releases its socket).
            self._exchange.pending.cancel()
            self._exchange = None
        if not outcome.from_cache and self._upstream_queries:
            # A cache miss that went to the network kept a cache slot
            # open from the resolution's start until now — the window
            # a spray of forged responses races.
            resolver = self._resolver
            window = self._sim.now - self._started
            resolver._stats.exposure_windows += 1
            resolver._stats.exposure_open_s += window
            if resolver._exposure_hist is not None:
                resolver._exposure_hist.observe(window)
            if resolver._depth_hist is not None:
                resolver._depth_hist.observe(float(self._referrals))
        if self._span is not None:
            self._span.set(status=outcome.status.value,
                           from_cache=outcome.from_cache,
                           upstream_queries=self._upstream_queries)
            self._resolver._tracer.finish(self._span)
        self._callback(outcome)
