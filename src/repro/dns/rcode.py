"""DNS response codes (RFC 1035 §4.1.1, RFC 2136)."""

from __future__ import annotations

import enum


class RCode(enum.IntEnum):
    """Response codes the simulation produces and handles."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    @property
    def is_error(self) -> bool:
        return self is not RCode.NOERROR

    @classmethod
    def from_text(cls, text: str) -> "RCode":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown RCODE {text!r}") from None
