"""Authoritative DNS server bound to a simulated host.

Serves one or more zones over UDP port 53 (non-recursive). Queries for
names in no hosted zone get REFUSED, matching common authoritative
configurations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dns.message import Message, make_response
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.wire import WireFormatError
from repro.dns.zone import LookupStatus, Zone
from repro.netsim.host import Host
from repro.netsim.packet import Datagram

DNS_PORT = 53


class AuthoritativeServer:
    """A non-recursive nameserver for a set of zones.

    :param host: the simulated machine to bind on.
    :param zones: zones served authoritatively; longest-origin match wins.
    :param port: UDP port (53 unless a test says otherwise).
    """

    def __init__(self, host: Host, zones: Optional[List[Zone]] = None,
                 port: int = DNS_PORT) -> None:
        self._host = host
        self._zones: Dict[Name, Zone] = {}
        self._queries_served = 0
        self._socket = host.bind(port, self._handle_datagram)
        # Bounded-queue capacity during chaos Overload windows; None
        # (the steady state) keeps the historical inline serve path.
        self.capacity: Optional["ServerCapacity"] = None  # noqa: F821
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def host(self) -> Host:
        return self._host

    @property
    def queries_served(self) -> int:
        return self._queries_served

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    def add_zone(self, zone: Zone) -> None:
        if zone.origin in self._zones:
            raise ValueError(f"zone {zone.origin} already hosted")
        self._zones[zone.origin] = zone

    def zone_for(self, qname: Name) -> Optional[Zone]:
        """The hosted zone with the longest origin enclosing ``qname``."""
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    # ------------------------------------------------------------------
    # Query handling.
    # ------------------------------------------------------------------

    def _handle_datagram(self, datagram: Datagram) -> None:
        try:
            query = Message.decode(datagram.payload)
        except WireFormatError:
            return  # garbage in, silence out (no FORMERR for unparseable)
        if query.is_response or len(query.questions) != 1:
            return
        capacity = self.capacity
        if capacity is None:
            self._serve(datagram, query)
            return

        def reject() -> None:
            self._socket.reply(datagram, make_response(
                query, rcode=RCode.SERVFAIL).encode())

        capacity.admit(lambda: self._serve(datagram, query), reject)

    def _serve(self, datagram: Datagram, query: Message) -> None:
        self._queries_served += 1
        response = self.build_response(query)
        self._socket.reply(datagram, response.encode())

    def build_response(self, query: Message) -> Message:
        """Pure response construction (reused by tests and DoH backends)."""
        question = query.question
        zone = self.zone_for(question.qname)
        if zone is None:
            return make_response(query, rcode=RCode.REFUSED)
        result = zone.lookup(question.qname, question.qtype)
        if result.status is LookupStatus.ANSWER:
            return make_response(query, answers=result.answers,
                                 authoritative=True)
        if result.status is LookupStatus.DELEGATION:
            return make_response(query, authority=result.authority,
                                 additional=result.additional)
        if result.status is LookupStatus.NODATA:
            return make_response(query, authority=result.authority,
                                 authoritative=True)
        if result.status is LookupStatus.NXDOMAIN:
            return make_response(query, rcode=RCode.NXDOMAIN,
                                 authority=result.authority,
                                 authoritative=True)
        return make_response(query, rcode=RCode.REFUSED)
