"""Resource-record type and class registries (RFC 1035 §3.2)."""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """DNS RR TYPE codes (the subset this reproduction uses)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        """Parse a type mnemonic, e.g. ``"AAAA"``."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown RR type {text!r}") from None

    @property
    def is_address(self) -> bool:
        """True for the address types (A / AAAA) the paper pools."""
        return self in (RRType.A, RRType.AAAA)


class RRClass(enum.IntEnum):
    """DNS CLASS codes; effectively always IN here."""

    IN = 1
    CH = 3
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRClass":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown RR class {text!r}") from None


def address_family_for_type(rrtype: RRType) -> int:
    """IP family (4 or 6) carried by an address RR type."""
    if rrtype is RRType.A:
        return 4
    if rrtype is RRType.AAAA:
        return 6
    raise ValueError(f"{rrtype!r} is not an address type")


def type_for_address_family(family: int) -> RRType:
    """Address RR type for an IP family (4 or 6)."""
    if family == 4:
        return RRType.A
    if family == 6:
        return RRType.AAAA
    raise ValueError(f"family must be 4 or 6, got {family}")
