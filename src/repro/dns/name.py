"""Domain names (RFC 1035 §2.3.1, §3.1).

``Name`` is an immutable sequence of labels stored in their original
case but compared and hashed case-insensitively, as the DNS requires.
The wire codec lives in :mod:`repro.dns.wire`; this module only deals in
text and label tuples.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Tuple, Union

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Raised for malformed domain names (avoids shadowing builtins)."""


@total_ordering
class Name:
    """An absolute domain name.

    All names in this codebase are absolute (the trailing dot is
    implied); relative-name semantics caused enough real-world DNS bugs
    that we refuse to model them.

    >>> Name("Example.COM") == Name("example.com")
    True
    >>> Name("www.example.com").parent()
    Name('example.com')
    >>> Name("www.example.com").is_subdomain_of(Name("example.com"))
    True
    """

    __slots__ = ("_labels", "_folded", "_hash")

    def __init__(self, text: Union[str, "Name", Iterable[bytes]]) -> None:
        if isinstance(text, Name):
            # Copy all derived state: names are immutable, so the
            # folded form and cached hash transfer verbatim.
            self._labels: Tuple[bytes, ...] = text._labels
            self._folded = text._folded
            self._hash = text._hash
            return
        if isinstance(text, str):
            self._labels = _labels_from_text(text)
        else:
            self._labels = _validate_labels(tuple(bytes(l) for l in text))
        self._folded = tuple(label.lower() for label in self._labels)
        self._hash: "int | None" = None

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def root(cls) -> "Name":
        """The DNS root name ``.``."""
        return cls(())

    @classmethod
    def from_labels(cls, labels: Iterable[bytes]) -> "Name":
        return cls(tuple(labels))

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        """The labels, most-specific first, without the root label."""
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def __len__(self) -> int:
        """Number of labels (the root name has zero)."""
        return len(self._labels)

    @property
    def wire_length(self) -> int:
        """Length of the uncompressed wire encoding in bytes."""
        return sum(len(label) + 1 for label in self._labels) + 1

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        >>> Name("a.b.c").parent()
        Name('b.c')
        """
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: Union[str, bytes]) -> "Name":
        """Prepend a label: ``Name("b.c").child("a") == Name("a.b.c")``."""
        raw = label.encode("ascii") if isinstance(label, str) else bytes(label)
        return Name((raw,) + self._labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals or is below ``other``.

        Every name is a subdomain of the root. This is the test behind
        bailiwick filtering in the recursive resolver.
        """
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded):] == other._folded

    def relativize(self, origin: "Name") -> Tuple[bytes, ...]:
        """Labels of ``self`` below ``origin``; raises if not below it."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        remaining = len(self._labels) - len(origin._labels)
        return self._labels[:remaining]

    def ancestors(self) -> Iterable["Name"]:
        """Yield self, parent, grandparent, ..., root."""
        current = self
        while True:
            yield current
            if current.is_root:
                return
            current = current.parent()

    # ------------------------------------------------------------------
    # Text form.
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        """Dotted text form, ``.`` for the root."""
        if not self._labels:
            return "."
        return ".".join(label.decode("ascii") for label in self._labels)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    # ------------------------------------------------------------------
    # Comparison (case-insensitive, per RFC 1035 §2.3.3).
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._folded == other._folded
        if isinstance(other, str):
            try:
                return self._folded == Name(other)._folded
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        # Canonical DNS ordering: compare label-by-label from the root.
        return self._folded[::-1] < other._folded[::-1]

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self._folded)
        return value


def _labels_from_text(text: str) -> Tuple[bytes, ...]:
    stripped = text.strip()
    if stripped in (".", ""):
        return ()
    if stripped.endswith("."):
        stripped = stripped[:-1]
    parts = stripped.split(".")
    labels = []
    for part in parts:
        if not part:
            raise NameError_(f"empty label in {text!r}")
        try:
            labels.append(part.encode("ascii"))
        except UnicodeEncodeError:
            raise NameError_(
                f"non-ASCII label {part!r}; IDNA is out of scope"
            ) from None
    return _validate_labels(tuple(labels))


def _validate_labels(labels: Tuple[bytes, ...]) -> Tuple[bytes, ...]:
    total = 1
    for label in labels:
        if not label:
            raise NameError_("empty label")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(
                f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes"
            )
        total += len(label) + 1
    if total > MAX_NAME_LENGTH:
        raise NameError_(f"name exceeds {MAX_NAME_LENGTH} bytes")
    return labels
