"""The iterative-resolution hierarchy: a declarative root→TLD→zone tree.

The paper's off-path and cache-poisoning attacks live on the *referral
chain* of real DNS resolution: a caching resolver walks root → TLD →
authoritative servers, and every cache miss re-opens a window in which
a spoofed answer can race the genuine one.  This module makes that
chain a first-class scenario axis:

* :class:`HierarchySpec` — a frozen, serializable description of the
  tree: TLD label, pool zone, the sibling zone hosting the NS names,
  NS redundancy, per-level delegation TTLs, and whether the pool-zone
  delegation carries glue (glueless delegations force extra lookups,
  widening the attack surface exactly as §IV of the paper describes).
* :func:`compile_hierarchy` — compiles a spec into deployed
  :class:`~repro.dns.server.AuthoritativeServer`\\ s on the topology and
  returns a :class:`HierarchyDeployment` (zones, servers, root hints,
  the pool directory) the scenario compiler wires providers against.
* :func:`compile_legacy_tree` — the pre-hierarchy flat tree
  (root + org + three ntpns hosts), moved here verbatim from the
  scenario compiler so *all* ``Zone``/``AuthoritativeServer``
  construction in scenario code lives behind this module (CI greps for
  strays).  ``ResolverSpec(mode="forwarding")`` worlds still build this
  exact tree, bit-identical to pre-hierarchy builds.

Address plan: the hierarchy's own hosts live in dedicated blocks —
root ``10.60.0.1``, TLD servers ``10.61.0.x``, zone NS hosts
``10.62.0.x`` — disjoint from the legacy tree (``10.0.0.x``), provider
(``10.53/10.54``), pool (``172.16``) and client (``10.99``) ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.util.specbase import SpecBase

#: Where the hierarchy's root server lives (kept off the legacy tree's
#: ``10.0.0.1`` so both trees could coexist in one world if ever needed).
HIERARCHY_ROOT_ADDRESS = "10.60.0.1"

_TLD_ADDRESS_PREFIX = "10.61.0."
_ZONE_NS_ADDRESS_PREFIX = "10.62.0."

#: Real-world-ish defaults: root NS sets carry ~6-day TTLs, TLD
#: delegations ~2 days.  Both are sweepable spec fields.
DEFAULT_ROOT_TTL = 518_400
DEFAULT_TLD_TTL = 172_800


def _check_label(name: str, value: str) -> None:
    if not value or value.startswith(".") or value.endswith("."):
        raise ConfigurationError(
            f"HierarchySpec.{name} must be a non-empty relative domain "
            f"name, got {value!r}")


@dataclass(frozen=True)
class HierarchySpec(SpecBase):
    """A root→TLD→authoritative referral chain, as data.

    :param tld: the top-level domain the root delegates (``"org"``).
    :param zone: the pool's zone, a proper subdomain of ``tld``; the
        pool name served to clients is ``pool.<zone>``.
    :param nsdomain: the sibling zone (also under ``tld``) whose names
        the pool zone's NS records point at — mirrors the real pool's
        ``c/d/e.ntpns.org`` layout.  Always delegated *with* glue so
        glueless pool delegations stay resolvable.
    :param ns_count: NS redundancy at the TLD and zone levels (the
        root stays a single ``a.root-servers.net``-style host, matching
        the root-hints idiom).
    :param root_ttl: TTL of the root's TLD delegation records.
    :param tld_ttl: TTL of the TLD's zone delegation records.
    :param glue: ``False`` drops the glue A records from the pool-zone
        delegation, forcing the resolver into glueless NS resolution
        (extra referral walks, a wider poisoning surface).
    """

    tld: str = "org"
    zone: str = "ntp.org"
    nsdomain: str = "ntpns.org"
    ns_count: int = 2
    root_ttl: int = DEFAULT_ROOT_TTL
    tld_ttl: int = DEFAULT_TLD_TTL
    glue: bool = True

    def __post_init__(self) -> None:
        _check_label("tld", self.tld)
        _check_label("zone", self.zone)
        _check_label("nsdomain", self.nsdomain)
        for name in ("zone", "nsdomain"):
            value = getattr(self, name)
            if not value.endswith("." + self.tld):
                raise ConfigurationError(
                    f"HierarchySpec.{name} ({value!r}) must be a proper "
                    f"subdomain of the tld ({self.tld!r})")
        if self.zone == self.nsdomain:
            raise ConfigurationError(
                "HierarchySpec.zone and .nsdomain must differ (the NS "
                "names must live outside the zone they serve)")
        if not 1 <= self.ns_count <= 200:
            raise ConfigurationError(
                f"ns_count must be in [1, 200], got {self.ns_count}")
        if self.root_ttl < 1 or self.tld_ttl < 1:
            raise ConfigurationError("delegation TTLs must be >= 1s")

    @property
    def pool_name(self) -> str:
        """The pool domain this hierarchy serves (``pool.<zone>``)."""
        return f"pool.{self.zone}"

    @property
    def levels(self) -> int:
        """Delegation levels under the root (root → TLD → zone = 2)."""
        return 2


@dataclass
class HierarchyDeployment:
    """One compiled DNS tree: everything the scenario compiler needs to
    wire caching resolvers and the pool serving path against it.

    ``spec`` is ``None`` for the legacy flat tree
    (:func:`compile_legacy_tree`), the originating
    :class:`HierarchySpec` otherwise.
    """

    spec: Optional[HierarchySpec]
    directory: Any
    pool_domain: Any
    pool_zone: Any
    servers: Dict[str, Any]
    root_hints: List[Tuple[Any, Any]]
    zones: Dict[str, Any] = field(default_factory=dict)
    hosts: Dict[str, Any] = field(default_factory=dict)

    @property
    def authoritative_addresses(self) -> List[str]:
        """Every nameserver address in the tree, root first."""
        return [str(host.primary_address)
                for host in self.hosts.values()]


def compile_hierarchy(internet, rng_registry, pool, spec: HierarchySpec,
                      ) -> HierarchyDeployment:
    """Deploy a :class:`HierarchySpec` onto a built internet.

    The caller owns the topology; the hierarchy reuses the standard
    infrastructure edges (``dns-root-edge`` / ``dns-org-edge`` /
    ``ntpns-edge`` for root / TLD / zone NS hosts respectively).

    :param internet: the world's :class:`~repro.netsim.internet.Internet`.
    :param rng_registry: the world's named-stream RNG registry (the
        pool directory's rotation stream comes from here, same stream
        name as the flat tree so answer rotation is comparable).
    :param pool: the scenario's :class:`~repro.scenarios.spec.PoolSpec`.
    """
    from repro.dns.name import Name
    from repro.dns.rdata import ARdata, NSRdata
    from repro.dns.rrtype import RRType
    from repro.dns.server import AuthoritativeServer
    from repro.dns.zone import Zone
    from repro.netsim.address import IPAddress, ip
    from repro.netsim.host import Host
    from repro.scenarios.builders import _make_benign_pool
    from repro.scenarios.workload import PoolDirectory

    pool_domain = Name(spec.pool_name)
    root_name = "a.root-servers.net"
    tld_servers = [(f"{chr(ord('a') + i)}.{spec.tld}-servers.net",
                    f"{_TLD_ADDRESS_PREFIX}{i + 1}")
                   for i in range(spec.ns_count)]
    zone_servers = [(f"ns{i + 1}.{spec.nsdomain}",
                     f"{_ZONE_NS_ADDRESS_PREFIX}{i + 1}")
                    for i in range(spec.ns_count)]

    hosts: Dict[str, Any] = {}
    hosts[root_name] = internet.add_host(
        Host(root_name, "dns-root-edge", [ip(HIERARCHY_ROOT_ADDRESS)]))
    for name, address in tld_servers:
        hosts[name] = internet.add_host(
            Host(name, "dns-org-edge", [ip(address)]))
    for name, address in zone_servers:
        hosts[name] = internet.add_host(
            Host(name, "ntpns-edge", [ip(address)]))

    # Root zone: delegate the TLD.  Everything is in-bailiwick at the
    # root, so the (out-of-TLD) server names carry glue here.
    root_zone = Zone(".", soa_mname=root_name)
    for name, address in tld_servers:
        root_zone.add_delegation(spec.tld, name, glue=[ARdata(address)],
                                 ttl=spec.root_ttl)

    # TLD zone: delegate the pool zone (glue per spec) and the NS-name
    # zone (always glued — someone has to bootstrap the names).
    tld_zone = Zone(spec.tld, soa_mname=tld_servers[0][0])
    for name, address in zone_servers:
        tld_zone.add_delegation(
            spec.zone, name,
            glue=[ARdata(address)] if spec.glue else None,
            ttl=spec.tld_ttl)
    # When the pool delegation is glueless, bootstrap the NS-name zone
    # through *distinct* server names: Zone collects additional-section
    # glue by NS target name, so reusing ``ns{i}.<nsdomain>`` here would
    # leak those addresses back into the pool-zone referral and
    # silently re-glue it.
    for i, (name, address) in enumerate(zone_servers):
        bootstrap = name if spec.glue else f"glue{i + 1}.{spec.nsdomain}"
        tld_zone.add_delegation(spec.nsdomain, bootstrap,
                                glue=[ARdata(address)], ttl=spec.tld_ttl)

    directory = PoolDirectory(
        benign=_make_benign_pool(pool.size, dual_stack=pool.dual_stack),
        answers_per_query=pool.answers_per_query,
        rng=rng_registry.stream("pool-rotation"),
    )
    pool_zone = Zone(spec.zone, soa_mname=zone_servers[0][0],
                     default_ttl=pool.ttl)
    for name, _ in zone_servers:
        pool_zone.add_record(spec.zone, NSRdata(Name(name)))
    pool_zone.add_provider(pool_domain, RRType.A,
                           directory.record_provider(family=4), ttl=pool.ttl)
    if pool.dual_stack:
        pool_zone.add_provider(pool_domain, RRType.AAAA,
                               directory.record_provider(family=6),
                               ttl=pool.ttl)

    ns_zone = Zone(spec.nsdomain, soa_mname=zone_servers[0][0])
    for name, address in zone_servers:
        ns_zone.add_record(name, ARdata(address))

    servers: Dict[str, Any] = {
        "root": AuthoritativeServer(hosts[root_name], [root_zone]),
    }
    for name, _ in tld_servers:
        servers[name] = AuthoritativeServer(hosts[name], [tld_zone])
    for name, _ in zone_servers:
        servers[name] = AuthoritativeServer(hosts[name],
                                            [pool_zone, ns_zone])

    root_hints = [(Name(root_name), IPAddress(HIERARCHY_ROOT_ADDRESS))]
    return HierarchyDeployment(
        spec=spec, directory=directory, pool_domain=pool_domain,
        pool_zone=pool_zone, servers=servers, root_hints=root_hints,
        zones={".": root_zone, spec.tld: tld_zone, spec.zone: pool_zone,
               spec.nsdomain: ns_zone},
        hosts=hosts)


def compile_legacy_tree(internet, rng_registry, pool) -> HierarchyDeployment:
    """The pre-hierarchy flat tree, verbatim: root + org + three ntpns
    hosts at their historical ``10.0.0.x`` addresses.  This is what
    ``ResolverSpec(mode="forwarding")`` worlds deploy — byte-for-byte
    the construction the scenario compiler used before the hierarchy
    subsystem existed, so golden fixtures stay pinned.
    """
    from repro.dns.name import Name
    from repro.dns.rdata import ARdata, NSRdata
    from repro.dns.rrtype import RRType
    from repro.dns.server import AuthoritativeServer
    from repro.dns.zone import Zone
    from repro.netsim.address import IPAddress, ip
    from repro.netsim.host import Host
    from repro.scenarios.builders import (
        NTP_NS_ADDRESSES,
        ORG_NS_ADDRESS,
        POOL_DOMAIN,
        ROOT_NS_ADDRESS,
        _make_benign_pool,
    )
    from repro.scenarios.workload import PoolDirectory

    root_host = internet.add_host(
        Host("a.root-servers.net", "dns-root-edge", [ip(ROOT_NS_ADDRESS)]))
    org_host = internet.add_host(
        Host("a0.org.afilias-nst.info", "dns-org-edge", [ip(ORG_NS_ADDRESS)]))

    root_zone = Zone(".", soa_mname="a.root-servers.net")
    root_zone.add_delegation("org", "a0.org.afilias-nst.info")
    # Out-of-zone NS target needs glue at the root (it lives under
    # .info in reality; here the root carries the A record directly).
    root_zone.add_record("a0.org.afilias-nst.info", ARdata(ORG_NS_ADDRESS))

    org_zone = Zone("org", soa_mname="a0.org.afilias-nst.info")
    ntpns_hosts = {}
    for ns_name, address in NTP_NS_ADDRESSES.items():
        org_zone.add_delegation("ntp.org", ns_name, glue=[ARdata(address)])
        ntpns_hosts[ns_name] = internet.add_host(
            Host(ns_name, "ntpns-edge", [ip(address)]))
    # ntpns.org itself is a real zone too (its servers' names live there).
    org_zone.add_delegation("ntpns.org", "c.ntpns.org",
                            glue=[ARdata(NTP_NS_ADDRESSES["c.ntpns.org"])])

    directory = PoolDirectory(
        benign=_make_benign_pool(pool.size, dual_stack=pool.dual_stack),
        answers_per_query=pool.answers_per_query,
        rng=rng_registry.stream("pool-rotation"),
    )
    pool_zone = Zone("ntp.org", soa_mname="c.ntpns.org", default_ttl=pool.ttl)
    for ns_name in NTP_NS_ADDRESSES:
        pool_zone.add_record("ntp.org", NSRdata(Name(ns_name)))
    pool_zone.add_provider(POOL_DOMAIN, RRType.A,
                           directory.record_provider(family=4), ttl=pool.ttl)
    if pool.dual_stack:
        pool_zone.add_provider(POOL_DOMAIN, RRType.AAAA,
                               directory.record_provider(family=6),
                               ttl=pool.ttl)

    ntpns_zone = Zone("ntpns.org", soa_mname="c.ntpns.org")
    for ns_name, address in NTP_NS_ADDRESSES.items():
        ntpns_zone.add_record(ns_name, ARdata(address))

    dns_servers = {
        "root": AuthoritativeServer(root_host, [root_zone]),
        "org": AuthoritativeServer(org_host, [org_zone]),
    }
    for ns_name, host in ntpns_hosts.items():
        dns_servers[ns_name] = AuthoritativeServer(host, [pool_zone, ntpns_zone])

    root_hints = [(Name("a.root-servers.net"), IPAddress(ROOT_NS_ADDRESS))]

    hosts = {"a.root-servers.net": root_host,
             "a0.org.afilias-nst.info": org_host}
    hosts.update(ntpns_hosts)
    return HierarchyDeployment(
        spec=None, directory=directory, pool_domain=POOL_DOMAIN,
        pool_zone=pool_zone, servers=dns_servers, root_hints=root_hints,
        zones={".": root_zone, "org": org_zone, "ntp.org": pool_zone,
               "ntpns.org": ntpns_zone},
        hosts=hosts)


__all__ = [
    "DEFAULT_ROOT_TTL",
    "DEFAULT_TLD_TTL",
    "HIERARCHY_ROOT_ADDRESS",
    "HierarchyDeployment",
    "HierarchySpec",
    "compile_hierarchy",
    "compile_legacy_tree",
]
