"""NTP packets and offset/delay arithmetic (RFC 5905 §8).

The wire format is reduced to the four timestamps the offset computation
needs plus mode/version/stratum bookkeeping; 64-bit NTP-era encoding is
replaced by float seconds (the arithmetic, which is what attacks target,
is exact).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Tuple

NTP_PORT = 123

MODE_CLIENT = 3
MODE_SERVER = 4

_FORMAT = "!BBBdddd"  # version, mode, stratum, t1..t4 (origin, rx, tx, dst)
_SIZE = struct.calcsize(_FORMAT)


class NtpFormatError(ValueError):
    """Raised when decoding malformed NTP bytes."""


@dataclass(frozen=True)
class NtpPacket:
    """An NTP packet carrying the timestamp handshake.

    * ``origin``   (t1): client's clock when the request left.
    * ``receive``  (t2): server's clock when the request arrived.
    * ``transmit`` (t3): server's clock when the reply left.

    The client's arrival reading (t4) never travels on the wire; it is
    taken locally and passed to :func:`offset_and_delay`.
    """

    mode: int = MODE_CLIENT
    version: int = 4
    stratum: int = 0
    origin: float = 0.0
    receive: float = 0.0
    transmit: float = 0.0

    def encode(self) -> bytes:
        return struct.pack(_FORMAT, self.version, self.mode, self.stratum,
                           self.origin, self.receive, self.transmit, 0.0)

    @classmethod
    def decode(cls, data: bytes) -> "NtpPacket":
        if len(data) != _SIZE:
            raise NtpFormatError(
                f"NTP packet must be {_SIZE} bytes, got {len(data)}")
        version, mode, stratum, origin, receive, transmit, _ = struct.unpack(
            _FORMAT, data)
        return cls(mode=mode, version=version, stratum=stratum,
                   origin=origin, receive=receive, transmit=transmit)

    def reply(self, receive: float, transmit: float,
              stratum: int = 2) -> "NtpPacket":
        """Build the server reply for this client request."""
        return replace(self, mode=MODE_SERVER, stratum=stratum,
                       receive=receive, transmit=transmit)


def offset_and_delay(t1: float, t2: float, t3: float,
                     t4: float) -> Tuple[float, float]:
    """RFC 5905 offset/delay from the four timestamps.

    :returns: ``(offset, delay)`` where *offset* is how far the client
        clock lags the server clock (positive = client is behind) and
        *delay* is the round-trip time net of server processing.
    """
    offset = ((t2 - t1) + (t3 - t4)) / 2.0
    delay = (t4 - t1) - (t3 - t2)
    return offset, delay
