"""NTP substrate and the Chronos watchdog.

The paper's motivating application: Chronos (Deutsch et al., NDSS'18)
protects NTP clients from malicious *servers* — provided the server pool
it samples from contains an honest majority. The pool comes from DNS,
which is the weak link [1] this paper closes.

* :mod:`repro.ntp.clock` — simulated clocks with offset and drift;
* :mod:`repro.ntp.packet` — NTP timestamps and offset/delay arithmetic;
* :mod:`repro.ntp.server` — honest and lying NTP servers on port 123;
* :mod:`repro.ntp.client` — an SNTP-style sampling client;
* :mod:`repro.ntp.pool` — deployment of a fleet of pool servers behind
  the DNS directory;
* :mod:`repro.ntp.chronos` — the Chronos sampling/cropping watchdog.
"""

from repro.ntp.chronos import ChronosClient, ChronosConfig, ChronosOutcome, ChronosStatus
from repro.ntp.clock import SimClock
from repro.ntp.client import NtpClient, NtpSample
from repro.ntp.packet import NTP_PORT, NtpPacket, offset_and_delay
from repro.ntp.pool import NtpFleet, deploy_ntp_fleet
from repro.ntp.server import NtpServer

__all__ = [
    "ChronosClient",
    "ChronosConfig",
    "ChronosOutcome",
    "ChronosStatus",
    "SimClock",
    "NtpClient",
    "NtpSample",
    "NTP_PORT",
    "NtpPacket",
    "offset_and_delay",
    "NtpFleet",
    "deploy_ntp_fleet",
    "NtpServer",
]
