"""NTP servers: honest ones read their clock; malicious ones lie.

A lying server shifts every timestamp it reports by ``lie_offset``,
which is the time-shifting attack NTP security work (and Chronos)
defends against. The lie is applied consistently to t2 and t3 so the
delay computation stays plausible — a naive lie that inflates delay
would be trivially filtered.
"""

from __future__ import annotations

from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.ntp.clock import SimClock
from repro.ntp.packet import MODE_CLIENT, NTP_PORT, NtpFormatError, NtpPacket


class NtpServer:
    """An NTP responder bound to host:123.

    :param host: simulated machine.
    :param clock: the clock whose readings are served.
    :param lie_offset: seconds added to reported timestamps; non-zero
        makes this a malicious (time-shifting) server.
    :param stratum: advertised stratum.
    """

    def __init__(self, host: Host, clock: SimClock, lie_offset: float = 0.0,
                 stratum: int = 2, port: int = NTP_PORT) -> None:
        self._host = host
        self._clock = clock
        self._lie_offset = lie_offset
        self._stratum = stratum
        self._socket = host.bind(port, self._handle_datagram)
        self._requests_served = 0
        # Bounded-queue capacity during chaos Overload windows; None
        # (the steady state) keeps the historical inline serve path.
        # NTP has no error rcode, so overflow is always a silent drop.
        self.capacity = None

    @property
    def host(self) -> Host:
        return self._host

    @property
    def is_malicious(self) -> bool:
        return self._lie_offset != 0.0

    @property
    def lie_offset(self) -> float:
        return self._lie_offset

    @property
    def requests_served(self) -> int:
        return self._requests_served

    def set_lie_offset(self, lie_offset: float) -> None:
        """Reconfigure the lie (used by adaptive attack experiments)."""
        self._lie_offset = lie_offset

    def _reading(self) -> float:
        return self._clock.now() + self._lie_offset

    def _handle_datagram(self, datagram: Datagram) -> None:
        try:
            request = NtpPacket.decode(datagram.payload)
        except NtpFormatError:
            return
        if request.mode != MODE_CLIENT:
            return
        capacity = self.capacity
        if capacity is None:
            self._serve(datagram, request)
            return
        capacity.admit(lambda: self._serve(datagram, request))

    def _serve(self, datagram: Datagram, request: NtpPacket) -> None:
        self._requests_served += 1
        arrival = self._reading()
        # Server processing is instantaneous in simulation; departure
        # equals arrival. (Processing delay would cancel in the delay
        # formula anyway.) Under a capacity model the queueing delay is
        # real virtual time, so arrival reads the post-queue clock —
        # exactly how an overloaded server's t2/t3 drift late.
        reply = request.reply(receive=arrival, transmit=self._reading(),
                              stratum=self._stratum)
        self._socket.reply(datagram, reply.encode())
