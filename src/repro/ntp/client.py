"""SNTP-style sampling client: one query, one offset sample.

The timeout plumbing rides on :class:`repro.netsim.transport.Transport`;
this module only knows NTP — the transaction is identified by the
origin timestamp echoed by the server, not by a transport-drawn ID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.transport import (
    AttemptInfo,
    ExchangeReport,
    RetryPolicy,
    Transport,
)
from repro.ntp.clock import SimClock
from repro.telemetry.registry import current_registry
from repro.telemetry.trace import current_tracer
from repro.ntp.packet import (
    MODE_SERVER,
    NTP_PORT,
    NtpFormatError,
    NtpPacket,
    offset_and_delay,
)


@dataclass
class NtpSample:
    """One measured (offset, delay) pair from one server."""

    server: IPAddress
    offset: Optional[float]
    delay: Optional[float]
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.timed_out and self.offset is not None


SampleCallback = Callable[[NtpSample], None]


class NtpClient:
    """Issues NTP queries from a host and reads offsets against a clock.

    :param host: the client machine.
    :param simulator: for timeouts.
    :param clock: the local clock being disciplined; all four
        timestamps are taken from it (t1/t4) and the server (t2/t3).
    :param timeout: per-query timeout in seconds.
    """

    def __init__(self, host: Host, simulator: Simulator, clock: SimClock,
                 timeout: float = 1.0) -> None:
        self._host = host
        self._simulator = simulator
        self._clock = clock
        self._policy = RetryPolicy(timeout=timeout)
        self._transport = Transport(host, simulator)
        self._queries = 0
        self._timeouts = 0
        self._telemetry = current_registry()
        self._tracer = current_tracer()

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def queries(self) -> int:
        return self._queries

    @property
    def timeouts(self) -> int:
        return self._timeouts

    def sample(self, server: "IPAddress | str",
               callback: SampleCallback) -> None:
        """Measure offset/delay against one server; fires once."""
        address = IPAddress(server)
        destination = Endpoint(address, NTP_PORT)
        self._queries += 1
        state = {"t1": 0.0}

        def build_request(attempt: AttemptInfo) -> bytes:
            state["t1"] = self._clock.now()
            if self._tracer is not None:
                self._tracer.event("ntp.encode",
                                   attrs={"server": str(address)})
            return NtpPacket(origin=state["t1"]).encode()

        def classify(datagram: Datagram,
                     attempt: AttemptInfo) -> Optional[NtpSample]:
            try:
                reply = NtpPacket.decode(datagram.payload)
            except NtpFormatError:
                return None
            if reply.mode != MODE_SERVER or reply.origin != state["t1"]:
                return None  # not our transaction
            if datagram.src != destination:
                return None
            t4 = self._clock.now()
            offset, delay = offset_and_delay(state["t1"], reply.receive,
                                             reply.transmit, t4)
            if self._tracer is not None:
                self._tracer.event("ntp.decode",
                                   attrs={"server": str(address),
                                          "offset": offset, "delay": delay})
            return NtpSample(server=address, offset=offset, delay=delay)

        def on_complete(report: ExchangeReport) -> None:
            telemetry = self._telemetry
            if telemetry is not None:
                telemetry.counter("ntp.samples").inc()
            if report.timed_out:
                self._timeouts += 1
                if telemetry is not None:
                    telemetry.counter("ntp.timeouts").inc()
                callback(NtpSample(server=address, offset=None, delay=None,
                                   timed_out=True))
                return
            sample: NtpSample = report.value
            if telemetry is not None and sample.ok:
                telemetry.histogram("ntp.delay").observe(sample.delay)
                telemetry.histogram("ntp.offset_abs").observe(
                    abs(sample.offset))
                telemetry.timeseries("ntp.offset").record(
                    self._simulator.now, sample.offset)
            callback(sample)

        self._transport.exchange(
            destination, build_request=build_request, classify=classify,
            on_complete=on_complete, policy=self._policy,
            label="ntp-sample", want_txid=False)
