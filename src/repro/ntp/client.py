"""SNTP-style sampling client: one query, one offset sample."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator, Timer
from repro.ntp.clock import SimClock
from repro.ntp.packet import (
    MODE_SERVER,
    NTP_PORT,
    NtpFormatError,
    NtpPacket,
    offset_and_delay,
)


@dataclass
class NtpSample:
    """One measured (offset, delay) pair from one server."""

    server: IPAddress
    offset: Optional[float]
    delay: Optional[float]
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.timed_out and self.offset is not None


SampleCallback = Callable[[NtpSample], None]


class NtpClient:
    """Issues NTP queries from a host and reads offsets against a clock.

    :param host: the client machine.
    :param simulator: for timeouts.
    :param clock: the local clock being disciplined; all four
        timestamps are taken from it (t1/t4) and the server (t2/t3).
    :param timeout: per-query timeout in seconds.
    """

    def __init__(self, host: Host, simulator: Simulator, clock: SimClock,
                 timeout: float = 1.0) -> None:
        self._host = host
        self._simulator = simulator
        self._clock = clock
        self._timeout = timeout
        self._queries = 0
        self._timeouts = 0

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def queries(self) -> int:
        return self._queries

    @property
    def timeouts(self) -> int:
        return self._timeouts

    def sample(self, server: "IPAddress | str",
               callback: SampleCallback) -> None:
        """Measure offset/delay against one server; fires once."""
        address = IPAddress(server)
        self._queries += 1
        state = {"done": False}
        socket = self._host.ephemeral_socket()
        t1 = self._clock.now()
        request = NtpPacket(origin=t1)

        def finish(sample: NtpSample) -> None:
            if state["done"]:
                return
            state["done"] = True
            timer.cancel()
            socket.close()
            callback(sample)

        def on_datagram(datagram: Datagram) -> None:
            if state["done"]:
                return
            try:
                reply = NtpPacket.decode(datagram.payload)
            except NtpFormatError:
                return
            if reply.mode != MODE_SERVER or reply.origin != t1:
                return  # not our transaction
            if datagram.src != Endpoint(address, NTP_PORT):
                return
            t4 = self._clock.now()
            offset, delay = offset_and_delay(t1, reply.receive,
                                             reply.transmit, t4)
            finish(NtpSample(server=address, offset=offset, delay=delay))

        def on_timeout() -> None:
            self._timeouts += 1
            finish(NtpSample(server=address, offset=None, delay=None,
                             timed_out=True))

        socket.on_datagram(on_datagram)
        timer = Timer(self._simulator, on_timeout, label="ntp-sample")
        timer.start(self._timeout)
        socket.sendto(Endpoint(address, NTP_PORT), request.encode())
