"""Deploying the fleet of NTP pool servers behind the DNS directory.

The scenario builder creates the *directory* (which addresses exist in
pool.ntp.org); this module stands up the actual servers on those
addresses, honest ones with small clock errors and — when an experiment
asks for them — malicious ones lying by a configured shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.netsim.address import IPAddress
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.ntp.clock import SimClock
from repro.ntp.server import NtpServer
from repro.scenarios.workload import PoolDirectory
from repro.util.rng import RngRegistry


@dataclass
class NtpFleet:
    """The deployed pool-server fleet, indexed by address."""

    servers: Dict[IPAddress, NtpServer] = field(default_factory=dict)

    def server_for(self, address: "IPAddress | str") -> NtpServer:
        return self.servers[IPAddress(address)]

    @property
    def honest_servers(self) -> List[NtpServer]:
        return [s for s in self.servers.values() if not s.is_malicious]

    @property
    def malicious_servers(self) -> List[NtpServer]:
        return [s for s in self.servers.values() if s.is_malicious]

    def corrupt(self, address: "IPAddress | str", lie_offset: float) -> None:
        """Turn one deployed server malicious."""
        self.server_for(address).set_lie_offset(lie_offset)


def deploy_ntp_fleet(
    internet: Internet,
    directory: PoolDirectory,
    rng_registry: RngRegistry,
    regions: Optional[Sequence[str]] = None,
    honest_clock_error: float = 0.010,
    honest_drift_ppm: float = 50.0,
    malicious_lie_offset: float = 10.0,
    extra_addresses: Sequence["IPAddress | str"] = (),
) -> NtpFleet:
    """Create a host + :class:`NtpServer` for every directory member.

    Honest members get clocks with errors uniform in
    ``±honest_clock_error`` and drift uniform in ``±honest_drift_ppm``;
    members the directory marks malicious serve time shifted by
    ``malicious_lie_offset`` seconds.

    :param extra_addresses: additional addresses (e.g. attacker-hosted
        servers outside the directory) deployed as malicious.
    """
    if regions is None:
        regions = [node for node in internet.topology.nodes]
    rng = rng_registry.stream("ntp-fleet")
    fleet = NtpFleet()
    simulator = internet.simulator

    def deploy_one(address: IPAddress, index: int, malicious: bool) -> None:
        region = regions[index % len(regions)]
        host = internet.add_host(Host(
            f"ntp-{address}", region, [address],
            rng=rng_registry.stream("ntp-ports", str(address))))
        if malicious:
            # A malicious server keeps an accurate clock and lies on
            # top of it, so its shift is exactly the configured value.
            clock = SimClock(lambda: simulator.now)
            server = NtpServer(host, clock,
                               lie_offset=malicious_lie_offset)
        else:
            clock = SimClock(
                lambda: simulator.now,
                offset=rng.uniform(-honest_clock_error, honest_clock_error),
                drift_ppm=rng.uniform(-honest_drift_ppm, honest_drift_ppm))
            server = NtpServer(host, clock)
        fleet.servers[address] = server

    for index, address in enumerate(directory.benign):
        deploy_one(address, index, malicious=False)
    offset = len(directory.benign)
    for index, address in enumerate(directory.malicious):
        deploy_one(address, offset + index, malicious=True)
    offset += len(directory.malicious)
    for index, address in enumerate(extra_addresses):
        deploy_one(IPAddress(address), offset + index, malicious=True)
    return fleet
