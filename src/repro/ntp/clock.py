"""Simulated clocks.

A :class:`SimClock` reads the simulator's virtual time ("true time") and
reports it with a configurable offset and frequency error (drift). NTP
clients *steer* their clock by applying measured offsets; NTP servers
just read theirs; malicious servers use a clock constructed with a large
deliberate offset.
"""

from __future__ import annotations

from typing import Callable

TrueTime = Callable[[], float]


class SimClock:
    """A drifting, steerable clock over virtual true time.

    :param true_time: callable returning the simulator's current time.
    :param offset: initial clock error in seconds (reported - true).
    :param drift_ppm: frequency error in parts per million; a clock with
        drift 100 ppm gains 100 µs of error per simulated second.
    """

    def __init__(self, true_time: TrueTime, offset: float = 0.0,
                 drift_ppm: float = 0.0) -> None:
        self._true_time = true_time
        self._offset = offset
        self._drift = drift_ppm * 1e-6
        self._drift_reference = true_time()
        self._steps_applied = 0

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def now(self) -> float:
        """The time this clock *believes* it is."""
        true = self._true_time()
        drift_error = (true - self._drift_reference) * self._drift
        return true + self._offset + drift_error

    def error(self) -> float:
        """Current deviation from true time (positive = fast)."""
        return self.now() - self._true_time()

    @property
    def drift_ppm(self) -> float:
        return self._drift / 1e-6

    @property
    def steps_applied(self) -> int:
        """How many times the clock has been stepped/slewed."""
        return self._steps_applied

    # ------------------------------------------------------------------
    # Steering.
    # ------------------------------------------------------------------

    def step(self, adjustment: float) -> None:
        """Apply an immediate correction (NTP 'step').

        ``adjustment`` is added to the reported time; an NTP client that
        measured its clock to be 50 ms slow calls ``step(+0.050)``.
        """
        # Fold accumulated drift error into the offset so the correction
        # is exact at this instant.
        true = self._true_time()
        drift_error = (true - self._drift_reference) * self._drift
        self._offset += drift_error + adjustment
        self._drift_reference = true
        self._steps_applied += 1

    def set_drift_ppm(self, drift_ppm: float) -> None:
        """Change the frequency error (e.g. after NTP disciplining)."""
        true = self._true_time()
        drift_error = (true - self._drift_reference) * self._drift
        self._offset += drift_error
        self._drift_reference = true
        self._drift = drift_ppm * 1e-6

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SimClock(error={self.error() * 1000:.3f}ms, "
                f"drift={self.drift_ppm:.1f}ppm)")
