"""The Chronos watchdog (Deutsch, Rotenberg Schiff, Dolev, Schapira —
NDSS 2018), as the paper's downstream consumer of the server pool.

Chronos hardens an NTP client against malicious *servers*:

1. sample ``m`` servers uniformly from the pool;
2. discard the ``d`` lowest and ``d`` highest offsets (cropping);
3. if the surviving offsets agree (span ≤ ``agreement_window``) and
   their average is within ``panic_threshold`` of the local clock,
   apply the average;
4. otherwise retry with a fresh sample; after ``max_retries`` failures
   enter **panic mode**: query *every* server in the pool, crop a third
   from each end, and apply the average of the middle third.

Its guarantee assumes the pool holds a honest majority (in fact ≥ 2/3
honest for panic mode). [1] broke that assumption upstream by poisoning
the DNS step that builds the pool; this paper's Algorithm 1 restores it.
The implementation follows the NDSS'18 description at the level of
detail the security argument needs; NTP-layer crypto is out of scope.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.netsim.address import IPAddress
from repro.ntp.client import NtpClient, NtpSample
from repro.util.validation import check_positive


class ChronosStatus(enum.Enum):
    """How a synchronisation round concluded."""

    UPDATED = "updated"              # normal round succeeded
    PANIC_UPDATED = "panic-updated"  # panic mode applied a correction
    FAILED = "failed"                # not enough responsive servers


@dataclass(frozen=True)
class ChronosConfig:
    """Chronos parameters (NDSS'18 §4, simulation-scaled defaults).

    :param sample_size: ``m``, servers sampled per round.
    :param crop: ``d``, samples cropped from each end of the sorted
        offsets. Chronos uses m/3 so that up to a third of sampled
        servers may lie without moving the surviving set.
    :param agreement_window: ``w``, max allowed span of surviving
        offsets in seconds.
    :param panic_threshold: ``ERR``, max |average offset| accepted
        without panicking, in seconds.
    :param max_retries: resamples before panic mode.
    :param min_responses: samples that must answer for a round to count.
    """

    sample_size: int = 9
    crop: Optional[int] = None
    agreement_window: float = 0.050
    panic_threshold: float = 0.200
    max_retries: int = 2
    min_responses: int = 5

    def __post_init__(self) -> None:
        check_positive(self.sample_size, "sample_size")
        check_positive(self.agreement_window, "agreement_window")
        check_positive(self.panic_threshold, "panic_threshold")
        if self.crop is not None and self.crop < 0:
            raise ValueError(f"crop must be >= 0, got {self.crop}")

    @property
    def effective_crop(self) -> int:
        """``d``; defaults to a third of the sample size."""
        if self.crop is not None:
            return self.crop
        return self.sample_size // 3


@dataclass
class ChronosOutcome:
    """Result of one synchronisation round."""

    status: ChronosStatus
    offset_applied: Optional[float] = None
    samples: List[NtpSample] = field(default_factory=list)
    rounds_used: int = 0
    panicked: bool = False

    @property
    def ok(self) -> bool:
        return self.status is not ChronosStatus.FAILED


SyncCallback = Callable[[ChronosOutcome], None]


class ChronosClient:
    """A Chronos-protected NTP client.

    :param ntp_client: transport + local clock.
    :param pool: the server pool (addresses, possibly with duplicates —
        duplicates are sampled as distinct entries, matching §IV of the
        DoH paper).
    :param config: Chronos parameters.
    :param rng: sampling randomness.
    """

    def __init__(self, ntp_client: NtpClient,
                 pool: Sequence["IPAddress | str"],
                 config: Optional[ChronosConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not pool:
            raise ValueError("Chronos needs a non-empty server pool")
        self._ntp = ntp_client
        self._pool = [IPAddress(address) for address in pool]
        self._config = config or ChronosConfig()
        self._rng = rng or random.Random(0)
        self._syncs = 0
        self._panics = 0

    @property
    def pool(self) -> List[IPAddress]:
        return list(self._pool)

    @property
    def config(self) -> ChronosConfig:
        return self._config

    @property
    def panics(self) -> int:
        return self._panics

    def set_pool(self, pool: Sequence["IPAddress | str"]) -> None:
        """Replace the pool (e.g. after a fresh DNS generation)."""
        if not pool:
            raise ValueError("Chronos needs a non-empty server pool")
        self._pool = [IPAddress(address) for address in pool]

    # ------------------------------------------------------------------
    # Synchronisation.
    # ------------------------------------------------------------------

    def sync(self, callback: SyncCallback) -> None:
        """Run one Chronos round (with retries/panic); fires once."""
        self._syncs += 1
        self._round(attempt=0, callback=callback)

    def _round(self, attempt: int, callback: SyncCallback) -> None:
        count = min(self._config.sample_size, len(self._pool))
        chosen = self._rng.sample(range(len(self._pool)), count)
        servers = [self._pool[i] for i in chosen]
        self._collect(servers, lambda samples: self._evaluate(
            samples, attempt, callback))

    def _collect(self, servers: List[IPAddress],
                 done: Callable[[List[NtpSample]], None]) -> None:
        samples: List[NtpSample] = []
        expected = len(servers)

        def on_sample(sample: NtpSample) -> None:
            samples.append(sample)
            if len(samples) == expected:
                done(samples)

        for server in servers:
            self._ntp.sample(server, on_sample)

    def _evaluate(self, samples: List[NtpSample], attempt: int,
                  callback: SyncCallback) -> None:
        offsets = sorted(s.offset for s in samples if s.ok)
        config = self._config
        if len(offsets) >= config.min_responses:
            d = min(config.effective_crop, (len(offsets) - 1) // 2)
            surviving = offsets[d:len(offsets) - d] if d else offsets
            span = surviving[-1] - surviving[0]
            average = sum(surviving) / len(surviving)
            if (span <= config.agreement_window
                    and abs(average) <= config.panic_threshold):
                self._ntp.clock.step(average)
                callback(ChronosOutcome(status=ChronosStatus.UPDATED,
                                        offset_applied=average,
                                        samples=samples,
                                        rounds_used=attempt + 1))
                return
        if attempt < config.max_retries:
            self._round(attempt + 1, callback)
            return
        self._panic(attempt + 1, callback)

    def _panic(self, rounds_used: int, callback: SyncCallback) -> None:
        """Panic mode: query the whole pool, trim a third per side."""
        self._panics += 1

        def on_all(samples: List[NtpSample]) -> None:
            offsets = sorted(s.offset for s in samples if s.ok)
            if not offsets:
                callback(ChronosOutcome(status=ChronosStatus.FAILED,
                                        samples=samples,
                                        rounds_used=rounds_used,
                                        panicked=True))
                return
            third = len(offsets) // 3
            middle = offsets[third:len(offsets) - third] or offsets
            average = sum(middle) / len(middle)
            self._ntp.clock.step(average)
            callback(ChronosOutcome(status=ChronosStatus.PANIC_UPDATED,
                                    offset_applied=average,
                                    samples=samples,
                                    rounds_used=rounds_used + 1,
                                    panicked=True))

        self._collect(list(self._pool), on_all)
