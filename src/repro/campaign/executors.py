"""Executor subsystem: how a campaign's trial specs actually run.

Three interchangeable executors — serial, a thread pool, a fork/process
pool — all drive the same module-level :func:`execute_spec`, and the
runner reassembles whatever they emit into spec order by ``(point key,
trial)`` identity. Every trial's seed derives from that same identity,
never from execution order or worker assignment, which is what keeps
the three modes' records bit-identical.

The interesting part is :func:`choose_executor`, the adaptive policy
that fixed the 0.9× parallel-campaign regression: the old runner paid
fork-pool startup and per-chunk IPC unconditionally, which *loses* to
serial for short sweeps and on low-core machines. The adaptive policy
instead projects the campaign's remaining serial cost from a measured
per-trial cost (the runner times its first executed spec as a
calibration probe) and only parallelises when the projected saving
exceeds what the pool costs to stand up:

* below the amortisation threshold — run serially; nothing can be won;
* tiny trials (sub-millisecond) — use the thread pool: no fork, no
  pickling, and per-chunk IPC would dominate the actual work. Pure-GIL
  trials pace serial execution; GIL-releasing ones genuinely overlap;
* otherwise — pay for the fork pool, because the projected saving
  covers it.

Worker counts are capped by ``os.cpu_count()`` in adaptive mode (a
4-worker pool on a 1-core box is strictly overhead — the measured
regression), while the forced executors honour whatever they're given.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.aggregate import TrialRecord

TrialFn = Callable[[Mapping[str, Any], int], Union[float, Mapping[str, float]]]

#: One trial spec: (trial_fn, point_index, point_key, params, trial, seed).
Spec = Tuple[TrialFn, int, str, Mapping[str, Any], int, int]

#: Sink the executors emit finished records into, in completion order.
EmitFn = Callable[[TrialRecord], None]

#: Approximate cost of standing up a fork pool and tearing it down
#: (process spawn + interpreter/module state duplication). A campaign
#: whose projected parallel saving is below this runs serially.
POOL_STARTUP_S = 0.25

#: Per-trial cost below which fork-pool IPC dominates the work itself;
#: such campaigns go to the thread pool (no pickling, no fork).
TINY_TRIAL_S = 0.002


def execute_spec(spec: Spec) -> TrialRecord:
    """Run one trial spec (module-level so worker processes can run it).

    A trial function may return a bare scalar, a metrics mapping, a
    ``(metrics, telemetry_json)`` pair, or a ``(metrics,
    telemetry_json, trace_json)`` triple — the extras attach the
    trial's registry snapshot (``include_telemetry`` exports) and its
    trace snapshot (traced runs) to the record.

    A trial function that *raises* is contained here: the exception
    becomes the record's ``error`` field (empty metrics) instead of
    aborting the sweep, so a chaos timeline that crashes one grid
    point still leaves every other point's records intact. Only
    ``Exception`` is caught — ``KeyboardInterrupt`` and friends still
    tear the campaign down.
    """
    trial_fn, point_index, point_key, params, trial, seed = spec
    try:
        outcome = trial_fn(params, seed)
    except Exception as error:
        return TrialRecord(point_index=point_index, point_key=point_key,
                           params=params, trial=trial, seed=seed, metrics={},
                           error=f"{type(error).__name__}: {error}")
    telemetry = None
    trace = None
    if isinstance(outcome, tuple):
        if len(outcome) == 3:
            outcome, telemetry, trace = outcome
        else:
            outcome, telemetry = outcome
    if isinstance(outcome, Mapping):
        metrics = {name: float(value) for name, value in outcome.items()}
    else:
        metrics = {"value": float(outcome)}
    return TrialRecord(point_index=point_index, point_key=point_key,
                       params=params, trial=trial, seed=seed, metrics=metrics,
                       telemetry=telemetry, trace=trace)


def execute_chunk(chunk: List[Spec]) -> List[TrialRecord]:
    """Run one worker-sized batch of specs (one IPC round-trip each
    way per *chunk*, not per trial)."""
    return [execute_spec(spec) for spec in chunk]


@dataclass(frozen=True)
class ExecutorChoice:
    """The executor a campaign (or its remainder) will run on."""

    kind: str      # "serial" | "threads" | "processes"
    workers: int

    @property
    def mode(self) -> str:
        """The :class:`CampaignResult.mode` string this choice reports."""
        if self.kind == "serial":
            return "serial"
        return f"{self.kind}:{self.workers}"


def choose_executor(per_spec_s: float, pending: int, workers_cap: int,
                    cpu_count: Optional[int] = None) -> ExecutorChoice:
    """Pick the executor for ``pending`` specs of measured per-spec cost.

    :param per_spec_s: wall-clock of one trial, measured by the runner's
        calibration probe (its first executed spec).
    :param pending: how many specs remain to execute.
    :param workers_cap: the runner's worker budget (explicit ``workers``
        or ``os.cpu_count()``).
    :param cpu_count: core count override for tests; parallelism beyond
        the machine's cores is pure overhead for CPU-bound trials, so
        the adaptive choice is capped by it.
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers_cap, cores, pending))
    if workers <= 1 or pending <= 1:
        return ExecutorChoice("serial", 1)
    projected_serial = per_spec_s * pending
    saving = projected_serial * (1.0 - 1.0 / workers)
    if saving <= POOL_STARTUP_S:
        return ExecutorChoice("serial", 1)
    if per_spec_s < TINY_TRIAL_S:
        return ExecutorChoice("threads", workers)
    return ExecutorChoice("processes", workers)


def chunk_specs(specs: Sequence[Spec], workers: int,
                chunk_size: Optional[int]) -> List[List[Spec]]:
    """Group specs into worker-sized chunks (default: ~4 per worker, so
    slow grid points do not serialise the whole campaign behind them)."""
    chunk = chunk_size or max(1, math.ceil(len(specs) / (workers * 4)))
    return [list(specs[start:start + chunk])
            for start in range(0, len(specs), chunk)]


def probe_picklable(specs: Sequence[Spec]) -> bool:
    """Whether specs can cross a process boundary, probed on *one*
    representative spec — the one with the most parameters (every spec
    shares the trial function, and axis value types repeat across
    points, so one spec stands in for the grid without serialising all
    of it)."""
    if not specs:
        return True
    representative = max(specs, key=lambda spec: len(spec[3]))
    try:
        pickle.dumps(representative)
    except Exception:
        return False
    return True


def run_serial(specs: Sequence[Spec], emit: EmitFn) -> None:
    """The reference executor: one spec after another, in order."""
    for spec in specs:
        emit(execute_spec(spec))


def run_threads(specs: Sequence[Spec], workers: int,
                chunk_size: Optional[int], emit: EmitFn) -> None:
    """Thread-pool executor: no pickling, no fork, shared memory.

    Chunks complete out of order (the runner reassembles by identity).
    Trial exceptions are contained by :func:`execute_spec`; anything
    that still reaches here is infrastructure failure and cancels the
    not-yet-started chunks before propagating.
    """
    from concurrent.futures import ThreadPoolExecutor, as_completed

    chunks = chunk_specs(specs, workers, chunk_size)
    with ThreadPoolExecutor(max_workers=workers) as executor:
        futures = [executor.submit(execute_chunk, chunk) for chunk in chunks]
        try:
            for future in as_completed(futures):
                for record in future.result():   # re-raises trial errors
                    emit(record)
        except BaseException:
            for future in futures:
                future.cancel()
            raise


def run_processes(specs: Sequence[Spec], workers: int,
                  chunk_size: Optional[int], emit: EmitFn) -> Optional[bool]:
    """Fork-pool executor; ``None`` means "unavailable, fall back".

    Chunks go through ``imap_unordered`` — each is one task submission
    and one result message, amortising IPC over many trials, and no
    worker idles waiting for an in-order result to be consumed.

    Teardown is an explicit ``close()``/``join()`` so workers drain and
    exit cleanly; ``terminate()`` is reserved for the exception path
    (``Pool.__exit__`` would terminate unconditionally, killing workers
    mid-teardown).
    """
    if not probe_picklable(specs):
        return None
    try:
        import multiprocessing

        pool = multiprocessing.Pool(processes=workers)
    except (ImportError, OSError, PermissionError):
        # No usable process support (restricted sandboxes, missing
        # semaphores): the serial path gives identical results.
        return None
    chunks = chunk_specs(specs, workers, chunk_size)
    # Trial exceptions are contained inside execute_spec; errors raised
    # past this point are pool infrastructure failures and must
    # propagate, not silently trigger a serial re-run.
    try:
        for batch in pool.imap_unordered(execute_chunk, chunks):
            for record in batch:
                emit(record)
    except BaseException:
        pool.terminate()
        raise
    else:
        pool.close()
    finally:
        pool.join()
    return True
