"""Adaptive sampling: spend the trial budget where the variance lives.

With a plain :class:`~repro.campaign.runner.CampaignRunner`,
``trials_per_point`` buys every grid point the same number of trials —
deterministic points burn budget proving what one trial already showed,
while noisy points stay under-sampled. :class:`AdaptiveSampling` turns
``trials_per_point`` into a *floor*: after the base pass the runner
keeps adding deterministically-seeded trials (indices continue upward
from the floor, seeds derive from ``(point key, trial)`` exactly like
the base trials') to any point whose confidence interval is still wider
than the requested width, until it converges or hits ``max_trials``.

The loop is deterministic end to end: which points get extra trials —
and how many — depends only on the records, which depend only on the
seeds. Rerunning an adaptive campaign reproduces the same trial set and
the same records bit-for-bit, serial or parallel, and the result cache
and completion journal both apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AdaptiveSampling:
    """CI-targeted trial allocation policy for a campaign.

    :param max_trials: hard per-point budget; no point exceeds it.
    :param ci_width: target full width (``ci_high - ci_low``) of the
        confidence interval on the mean. A point stops receiving trials
        once every watched metric's interval is at most this wide. The
        confidence level is the runner's ``confidence``.
    :param metric: the metric to converge, or ``None`` to require every
        metric the point reports to converge. A named metric absent
        from a point's records counts as converged (width 0) for that
        point.

    Variance needs at least two samples to estimate, so the effective
    floor under adaptive sampling is ``max(trials_per_point, 2)``.
    Unconverged points grow by half their current trial count per round
    (minimum one trial), so a far-from-target point reaches its budget
    in O(log) rounds instead of one trial at a time.
    """

    max_trials: int
    ci_width: float
    metric: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_trials < 2:
            raise ValueError(
                f"max_trials must be >= 2, got {self.max_trials}")
        if not self.ci_width > 0.0:
            raise ValueError(
                f"ci_width must be > 0, got {self.ci_width}")

    def next_batch(self, trials_now: int) -> int:
        """How many trials to add to an unconverged point this round."""
        remaining = self.max_trials - trials_now
        if remaining <= 0:
            return 0
        return min(remaining, max(1, trials_now // 2))
