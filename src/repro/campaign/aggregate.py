"""Folding per-trial records into per-grid-point statistics.

The :class:`Aggregator` consumes :class:`TrialRecord`\\ s in order and
maintains one :class:`repro.util.stats.RunningStats` per (grid point,
metric). Because Welford accumulation is fold-order dependent at the
floating-point level, the campaign runner feeds records in expansion
order in both serial and multiprocessing modes — which is what makes
serial and parallel campaigns bit-identical.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.util.stats import RunningStats, normal_ci


@dataclass(frozen=True)
class TrialRecord:
    """The outcome of one trial at one grid point.

    ``telemetry`` carries the trial's
    :meth:`repro.telemetry.MetricsRegistry.snapshot_json` when the
    trial function exported one (see
    :class:`Aggregator` ``include_telemetry``); ``trace`` carries the
    trial's :meth:`repro.telemetry.Tracer.snapshot_json` when the
    runner traced it (``CampaignRunner(include_traces=True)``).

    ``error`` is ``None`` for a successful trial; a crashed trial
    records ``"ExceptionType: message"`` instead of metrics, so one
    bad grid point cannot take down a long sweep. Errored records are
    excluded from aggregation, journals and result caches — re-running
    (or resuming) the campaign re-executes exactly those trials.
    """

    point_index: int
    point_key: str
    params: Mapping[str, Any] = field(hash=False)
    trial: int = 0
    seed: int = 0
    metrics: Mapping[str, float] = field(default_factory=dict, hash=False)
    telemetry: Optional[str] = None
    trace: Optional[str] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics for one metric at one grid point."""

    count: int
    mean: float
    stddev: float
    stderr: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "stderr": self.stderr,
            "ci95": [self.ci_low, self.ci_high],
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass(frozen=True)
class PointSummary:
    """All metric summaries for one grid point.

    ``telemetry`` maps trial index to that trial's parsed registry
    snapshot — populated only by an :class:`Aggregator` constructed
    with ``include_telemetry=True``. ``traces`` maps trial index to
    that trial's parsed trace snapshot (``include_traces=True``; only
    head-sampled trials appear).
    """

    point_index: int
    point_key: str
    params: Mapping[str, Any] = field(hash=False)
    trials: int = 0
    metrics: Mapping[str, MetricSummary] = field(default_factory=dict,
                                                 hash=False)
    telemetry: Mapping[int, Any] = field(default_factory=dict, hash=False)
    traces: Mapping[int, Any] = field(default_factory=dict, hash=False)

    def __getitem__(self, metric: str) -> MetricSummary:
        return self.metrics[metric]

    def matches(self, subset: Mapping[str, Any]) -> bool:
        """Whether this point's parameters agree with ``subset``."""
        return all(name in self.params and self.params[name] == value
                   for name, value in subset.items())


class Aggregator:
    """Fold trial records into per-point, per-metric summaries.

    :param confidence: confidence level for the normal-approximation
        interval on each metric's mean.
    :param include_telemetry: keep each trial's registry snapshot (the
        ``telemetry`` JSON trial functions may attach to their records)
        and export it per point, so ``results/<name>.json`` lets
        benches assert on transport-level aggregates directly.
    :param include_traces: keep each sampled trial's trace snapshot
        (the ``trace`` JSON the traced runner attaches) and export it
        per point, so ``results/<name>.json`` carries replayable causal
        chains next to the statistics.
    """

    def __init__(self, confidence: float = 0.95,
                 include_telemetry: bool = False,
                 include_traces: bool = False) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self._confidence = confidence
        self._include_telemetry = include_telemetry
        self._include_traces = include_traces
        # point_key -> (point_index, params, trial count)
        self._points: Dict[str, Tuple[int, Mapping[str, Any], int]] = {}
        self._stats: Dict[Tuple[str, str], RunningStats] = {}
        # Metric names in first-seen order per point key.
        self._metric_order: Dict[str, List[str]] = {}
        # point_key -> {trial index: parsed snapshot}
        self._telemetry: Dict[str, Dict[int, Any]] = {}
        # point_key -> {trial index: parsed trace snapshot}
        self._traces: Dict[str, Dict[int, Any]] = {}

    def add(self, record: TrialRecord) -> None:
        """Fold one trial record into the running summaries."""
        if record.error is not None:
            # Crashed trials carry no metrics; folding them would only
            # deflate the per-point trial counts the CIs divide by.
            return
        entry = self._points.get(record.point_key)
        if entry is None:
            self._points[record.point_key] = (record.point_index,
                                              record.params, 1)
            self._metric_order[record.point_key] = []
        else:
            self._points[record.point_key] = (entry[0], entry[1], entry[2] + 1)
        if self._include_telemetry and record.telemetry is not None:
            self._telemetry.setdefault(record.point_key, {})[record.trial] = (
                json.loads(record.telemetry))
        if self._include_traces and record.trace is not None:
            self._traces.setdefault(record.point_key, {})[record.trial] = (
                json.loads(record.trace))
        order = self._metric_order[record.point_key]
        for metric, value in record.metrics.items():
            stats_key = (record.point_key, metric)
            if stats_key not in self._stats:
                self._stats[stats_key] = RunningStats()
                order.append(metric)
            self._stats[stats_key].add(float(value))

    def extend(self, records) -> None:
        for record in records:
            self.add(record)

    def summaries(self) -> List[PointSummary]:
        """Per-point summaries in first-seen (grid expansion) order."""
        result = []
        for key, (index, params, trials) in self._points.items():
            metrics: Dict[str, MetricSummary] = {}
            for metric in self._metric_order[key]:
                stats = self._stats[(key, metric)]
                stderr = (stats.stddev / math.sqrt(stats.count)
                          if stats.count else 0.0)
                ci_low, ci_high = normal_ci(stats.mean, stats.stddev,
                                            stats.count, self._confidence)
                metrics[metric] = MetricSummary(
                    count=stats.count, mean=stats.mean, stddev=stats.stddev,
                    stderr=stderr, ci_low=ci_low, ci_high=ci_high,
                    minimum=stats.minimum, maximum=stats.maximum)
            result.append(PointSummary(point_index=index, point_key=key,
                                       params=params, trials=trials,
                                       metrics=metrics,
                                       telemetry=self._telemetry.get(key, {}),
                                       traces=self._traces.get(key, {})))
        result.sort(key=lambda summary: summary.point_index)
        return result


def json_value(value: Any) -> Any:
    """Make one parameter value JSON-serialisable.

    Spec objects (anything exposing ``to_dict``) render as their full
    nested dict, which is what makes grid-over-spec result files
    self-describing.
    """
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "to_dict"):
        return json_value(value.to_dict())
    if isinstance(value, (list, tuple)):
        return [json_value(item) for item in value]
    if isinstance(value, Mapping):
        return {str(k): json_value(v) for k, v in value.items()}
    return str(value)


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Records stay available for custom post-processing; ``summaries``
    carry the folded statistics in grid expansion order. ``mode`` is
    the executor that actually ran (``"serial"``, ``"threads:<n>"``,
    ``"processes:<n>"``, ``"cached"``, or ``"resumed"`` when every
    record came out of a completion journal); ``executor`` is the
    configured policy (usually ``"adaptive"``) and ``resumed`` counts
    journal-recovered records — all three are provenance only and never
    affect the records themselves. ``failed`` counts records whose
    trial function raised (their ``error`` fields say why); the
    summaries cover only the successful trials.
    """

    name: str
    base_seed: int
    trials_per_point: int
    mode: str
    records: List[TrialRecord]
    summaries: List[PointSummary]
    executor: str = "adaptive"
    resumed: int = 0
    failed: int = 0

    def summary(self, **subset: Any) -> PointSummary:
        """The unique point summary whose params match ``subset``."""
        matching = [s for s in self.summaries if s.matches(subset)]
        if not matching:
            raise KeyError(f"no grid point matches {subset!r}")
        if len(matching) > 1:
            raise KeyError(f"{len(matching)} grid points match {subset!r}")
        return matching[0]

    def metric(self, metric: str, **subset: Any) -> MetricSummary:
        """Shorthand for ``summary(**subset).metrics[metric]``."""
        return self.summary(**subset).metrics[metric]

    def to_json(self) -> Dict[str, Any]:
        """The campaign's exportable form (``BENCH_*.json`` compatible:
        a flat ``results`` list of per-point stat dicts)."""
        return {
            "campaign": self.name,
            "seed": self.base_seed,
            "trials_per_point": self.trials_per_point,
            "mode": self.mode,
            "executor": self.executor,
            "resumed": self.resumed,
            "failed": self.failed,
            "results": [
                {
                    "params": {name: json_value(value)
                               for name, value in summary.params.items()},
                    "key": summary.point_key,
                    "trials": summary.trials,
                    "metrics": {metric: stats.to_json()
                                for metric, stats in summary.metrics.items()},
                    **({"telemetry": {str(trial): snapshot
                                      for trial, snapshot
                                      in sorted(summary.telemetry.items())}}
                       if summary.telemetry else {}),
                    **({"traces": {str(trial): snapshot
                                   for trial, snapshot
                                   in sorted(summary.traces.items())}}
                       if summary.traces else {}),
                }
                for summary in self.summaries
            ],
        }

    def write_json(self, path: "Path | str") -> Path:
        """Serialise :meth:`to_json` to ``path`` (creating parents)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True)
                        + "\n")
        return path
