"""Declarative parameter grids for scenario sweeps.

A :class:`ParameterGrid` names the axes of an experiment (presets,
attack strengths, pool sizes, resolver configurations, ...) and expands
them into an ordered sequence of :class:`GridPoint`\\ s. The expansion
order is part of the contract: axes vary like an odometer, the **last
declared axis fastest**, so a grid declared as ``{"n": (3, 5), "p":
(0.1, 0.3)}`` yields ``(3, 0.1), (3, 0.3), (5, 0.1), (5, 0.3)``. Seed
derivation and aggregation key off each point's stable :attr:`GridPoint.key`,
never off its position, so inserting an axis value does not reseed the
other points.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

Params = Mapping[str, Any]
Predicate = Callable[[Params], bool]


def format_param(value: Any) -> str:
    """Render one parameter value into a stable key fragment.

    Enums render as their ``.value`` so keys survive refactors of the
    enum's module path; everything else uses ``repr`` (``repr`` of
    ints, floats and strings is stable across processes and runs).
    """
    if isinstance(value, enum.Enum):
        return str(value.value)
    if isinstance(value, str):
        return value
    return repr(value)


def point_key(params: Params) -> str:
    """The stable identity of a grid point, e.g. ``"n=3,corrupted=1"``.

    Built from the point's own parameters in declaration order; fixed
    (shared) parameters are excluded so that tweaking a campaign-wide
    constant does not silently reseed every trial.
    """
    return ",".join(f"{name}={format_param(value)}"
                    for name, value in params.items())


@dataclass(frozen=True)
class GridPoint:
    """One expanded grid point.

    :param index: position in expansion order (0-based).
    :param params: the point's full parameter mapping — axis values
        merged over the grid's fixed parameters.
    :param key: stable identity string built from the axis values only.
    """

    index: int
    params: Dict[str, Any] = field(hash=False)
    key: str = ""

    def __post_init__(self) -> None:
        if not self.key:
            object.__setattr__(self, "key", point_key(self.params))


class ParameterGrid:
    """A declarative cartesian sweep (or explicit point list).

    >>> grid = ParameterGrid({"n": (3, 5), "p": (0.1, 0.3)})
    >>> [(pt.params["n"], pt.params["p"]) for pt in grid]
    [(3, 0.1), (3, 0.3), (5, 0.1), (5, 0.3)]

    :param axes: ordered mapping of axis name to its values. Declaration
        order is expansion order (last axis varies fastest).
    :param fixed: parameters shared by every point. They appear in each
        point's ``params`` but not in its ``key``.
    :param name: optional label carried into results/JSON.
    """

    def __init__(self, axes: Mapping[str, Sequence[Any]],
                 fixed: Optional[Params] = None,
                 name: str = "") -> None:
        self._axes: Dict[str, Tuple[Any, ...]] = {}
        for axis, values in axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            self._axes[axis] = values
        self._fixed: Dict[str, Any] = dict(fixed or {})
        overlap = set(self._axes) & set(self._fixed)
        if overlap:
            raise ValueError(f"parameters both axis and fixed: {sorted(overlap)}")
        self._explicit: Optional[List[Dict[str, Any]]] = None
        self._predicates: List[Predicate] = []
        self._base_spec: Optional[Any] = None
        self._expanded: Optional[List[GridPoint]] = None
        self.name = name

    @classmethod
    def from_points(cls, points: Sequence[Params],
                    fixed: Optional[Params] = None,
                    name: str = "") -> "ParameterGrid":
        """A grid over an explicit point list (non-cartesian sweeps).

        >>> grid = ParameterGrid.from_points([{"n": 3}, {"n": 9}])
        >>> len(grid)
        2
        """
        if not points:
            raise ValueError("from_points() needs at least one point")
        grid = cls({}, fixed=fixed, name=name)
        grid._explicit = [dict(point) for point in points]
        for point in grid._explicit:
            overlap = set(point) & set(grid._fixed)
            if overlap:
                raise ValueError(
                    f"parameters both point and fixed: {sorted(overlap)}")
        return grid

    @classmethod
    def over_spec(cls, spec: Any, axes: Mapping[str, Sequence[Any]],
                  fixed: Optional[Params] = None,
                  name: str = "") -> "ParameterGrid":
        """A grid whose axes (and fixed parameters) are *dotted spec
        paths* into a base :class:`repro.scenarios.spec.ScenarioSpec`.

        >>> from repro.scenarios.spec import population_spec
        >>> grid = ParameterGrid.over_spec(
        ...     population_spec(),
        ...     {"fleet.size": (250, 1000), "provider.corrupted": (0, 1)})
        >>> grid.points()[1].params["spec"].provider.corrupted
        1

        Every expanded point's ``params`` carries the axis values under
        their dotted names (so point keys — and therefore per-trial
        seeds — depend only on what the sweep varies) plus the fully
        materialized per-point spec under the reserved key ``"spec"``,
        which is what :func:`repro.campaign.trials.spec_trial` compiles
        and what result/cache JSON records verbatim.  Paths are applied
        fixed-first, then axes in declaration order; every path is
        validated against the base spec at declaration time.
        """
        from repro.scenarios.spec import get_path
        grid = cls(axes, fixed=fixed, name=name)
        reserved = {"spec"} & (set(grid._axes) | set(grid._fixed))
        if reserved:
            raise ValueError("'spec' is reserved for the expanded "
                             "per-point spec; rename the parameter")
        for path in list(grid._fixed) + list(grid._axes):
            get_path(spec, path)   # raises on a path the spec lacks
        grid._base_spec = spec
        return grid

    @property
    def base_spec(self) -> Optional[Any]:
        """The spec swept by :meth:`over_spec`, if any."""
        return self._base_spec

    @property
    def axes(self) -> Dict[str, Tuple[Any, ...]]:
        """The declared axes (copy; empty for explicit point lists)."""
        return dict(self._axes)

    @property
    def fixed(self) -> Dict[str, Any]:
        """The shared parameters (copy)."""
        return dict(self._fixed)

    def where(self, predicate: Predicate) -> "ParameterGrid":
        """Restrict the grid to points satisfying ``predicate``.

        The predicate sees the *axis* parameters (not the fixed ones)
        so dependent axes can be expressed, e.g. ``corrupted <= n``::

            ParameterGrid({"n": (3, 5), "corrupted": range(6)}).where(
                lambda p: p["corrupted"] <= p["n"])

        Returns ``self`` for chaining (the grid is mutated in place,
        matching its declarative build-then-run lifecycle).
        """
        self._predicates.append(predicate)
        self._expanded = None     # the memoised expansion is now stale
        return self

    # ------------------------------------------------------------------
    # Expansion.
    # ------------------------------------------------------------------

    def _raw_points(self) -> Iterator[Dict[str, Any]]:
        if self._explicit is not None:
            for point in self._explicit:
                yield dict(point)
            return
        if not self._axes:
            raise ValueError("grid has no axes and no explicit points")
        names = list(self._axes)
        for combo in itertools.product(*self._axes.values()):
            yield dict(zip(names, combo))

    def points(self) -> List[GridPoint]:
        """Expand the grid into its ordered list of points.

        The expansion is memoised (``where()`` invalidates it): grids
        are expanded once per ``len``/iteration/run, and spec grids in
        particular compile one ``ScenarioSpec`` per point — work worth
        doing once, not once per ``len(grid)``. Returns a fresh list
        each call; the frozen points themselves are shared.
        """
        if self._expanded is not None:
            return list(self._expanded)
        expanded: List[GridPoint] = []
        for raw in self._raw_points():
            if not all(predicate(raw) for predicate in self._predicates):
                continue
            params = dict(self._fixed)
            params.update(raw)
            if self._base_spec is not None:
                from repro.scenarios.spec import apply_paths
                params["spec"] = apply_paths(self._base_spec, params)
            expanded.append(GridPoint(index=len(expanded), params=params,
                                      key=point_key(raw)))
        if not expanded:
            raise ValueError("grid expanded to zero points")
        keys = [point.key for point in expanded]
        if len(set(keys)) != len(keys):
            raise ValueError("grid points do not have unique keys")
        self._expanded = expanded
        return list(expanded)

    def __iter__(self) -> Iterator[GridPoint]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.points())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._explicit is not None:
            return f"ParameterGrid({len(self._explicit)} explicit points)"
        axes = ", ".join(f"{k}×{len(v)}" for k, v in self._axes.items())
        return f"ParameterGrid({axes})"
