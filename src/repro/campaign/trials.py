"""Reusable trial functions for campaign sweeps.

These are the bridge between the declarative campaign layer and the
simulation stack: a grid point's parameters select a scenario preset
(:mod:`repro.scenarios.presets`), an attacker configuration
(:mod:`repro.attacks.compromise`) and generation policies
(:mod:`repro.core.policy`), and one trial builds the world, runs one
Algorithm 1 generation and returns scalar metrics.

Everything here is module-level and picklable so campaigns can shard
trials across worker processes. The closed-form Monte-Carlo trials live
next to their models in :mod:`repro.analysis.montecarlo` and are
re-exported from :mod:`repro.campaign`.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Mapping

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.majority import MajorityVoteCombiner
from repro.core.policy import DualStackPolicy, TruncationPolicy
from repro.core.pool import PoolGeneratorConfig
from repro.netsim.address import IPAddress
from repro.scenarios.builders import PoolScenario
from repro.scenarios.presets import get_preset


def build_scenario(params: Mapping[str, Any], seed: int) -> PoolScenario:
    """Build the scenario a grid point describes.

    ``params["preset"]`` (default ``"custom"``) names a builder in the
    :data:`repro.scenarios.presets.PRESETS` registry; every other
    parameter the builder's signature accepts is passed through, so one
    grid can sweep presets and their knobs together.
    """
    builder = get_preset(params.get("preset", "custom"))
    accepted = inspect.signature(builder).parameters
    kwargs = {name: value for name, value in params.items()
              if name in accepted and name != "seed"}
    return builder(seed=seed, **kwargs)


# Parameters pool_attack_trial consumes itself (everything else must be
# accepted by the selected scenario builder).
_ATTACK_KEYS = frozenset({"preset", "corrupted", "behavior", "forged",
                          "inflate_to", "policy", "truncation"})


def _reject_unknown_params(params: Mapping[str, Any]) -> None:
    """Fail loudly on parameters nothing would consume.

    A declarative sweep with a typo'd axis name (``answers_per_qeury``)
    would otherwise run every point against defaults and present a
    sweep that never happened.
    """
    builder = get_preset(params.get("preset", "custom"))
    accepted = set(inspect.signature(builder).parameters)
    unknown = set(params) - _ATTACK_KEYS - accepted
    if unknown:
        raise ValueError(
            f"unrecognised trial parameters: {sorted(unknown)} "
            f"(not attack knobs, not accepted by the "
            f"{params.get('preset', 'custom')!r} scenario builder)")


def _coerce_behavior(value: Any) -> CompromisedResolverBehavior:
    if isinstance(value, CompromisedResolverBehavior):
        return value
    return CompromisedResolverBehavior(value)


def _coerce_dual_stack(value: Any) -> "DualStackPolicy | None":
    if value is None or isinstance(value, DualStackPolicy):
        return value
    return DualStackPolicy(value)


def _coerce_truncation(value: Any) -> TruncationPolicy:
    if isinstance(value, TruncationPolicy):
        return value
    return TruncationPolicy(value)


def _share(addresses, forged: set) -> float:
    if not addresses:
        return 0.0
    return sum(1 for a in addresses if a in forged) / len(addresses)


def pool_attack_trial(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """One end-to-end pool generation under resolver compromise.

    Recognised parameters (all optional unless noted):

    ``preset`` + builder kwargs
        scenario selection, see :func:`build_scenario`.
    ``corrupted``
        how many providers to corrupt (default 0).
    ``behavior``
        a :class:`CompromisedResolverBehavior` or its string value
        (default ``"substitute"``).
    ``forged``
        the attacker's addresses (required when ``corrupted > 0`` and
        the behaviour needs them).
    ``inflate_to``
        answer inflation for the ``inflate`` behaviour.
    ``policy``
        a :class:`DualStackPolicy` (or value) for dual-stack lookups.
    ``truncation``
        a :class:`TruncationPolicy` (or value), default SHORTEST.

    Returned metrics: ``pool_size``, ``truncate_length``,
    ``attacker_share``, ``v4_share``, ``v6_share``, ``voted_size`` and
    ``voted_attacker_share`` (per-address majority vote over the same
    contributions), plus ``benign_fraction`` scored against the
    scenario's pool directory.
    """
    _reject_unknown_params(params)
    scenario = build_scenario(params, seed)
    # Keep the caller's declared order: with the inflate behaviour the
    # compromised resolver serves forged[:inflate_to], so order is
    # semantically meaningful. The set is only for share counting.
    forged_list = [IPAddress(a) for a in params.get("forged", ())]
    forged = set(forged_list)
    corrupted = int(params.get("corrupted", 0))
    if corrupted:
        config = CompromiseConfig(
            target=scenario.pool_domain,
            behavior=_coerce_behavior(params.get("behavior", "substitute")),
            forged_addresses=forged_list,
            inflate_to=int(params.get("inflate_to", 20)))
        corrupt_first_k(scenario.providers, corrupted, config)

    generator_config = PoolGeneratorConfig(
        truncation=_coerce_truncation(params.get("truncation",
                                                 TruncationPolicy.SHORTEST)),
        dual_stack=_coerce_dual_stack(params.get("policy")))
    pool = scenario.generate_pool_sync(
        scenario.make_generator(config=generator_config))

    voted = (MajorityVoteCombiner().combine(pool.contributions)
             if pool.contributions else [])
    v4 = [a for a in pool.addresses if a.family == 4]
    v6 = [a for a in pool.addresses if a.family == 6]
    benign_fraction = (scenario.directory.benign_fraction(pool.addresses)
                       if pool.addresses else 0.0)
    return {
        "pool_size": float(len(pool.addresses)),
        "truncate_length": float(pool.truncate_length),
        "attacker_share": _share(pool.addresses, forged),
        "v4_share": _share(v4, forged),
        "v6_share": _share(v6, forged),
        "voted_size": float(len(voted)),
        "voted_attacker_share": _share(voted, forged),
        "benign_fraction": benign_fraction,
    }
