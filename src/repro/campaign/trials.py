"""Reusable trial functions for campaign sweeps.

These are the bridge between the declarative campaign layer and the
simulation stack: a grid point's parameters select a scenario preset
(:mod:`repro.scenarios.presets`), an attacker configuration
(:mod:`repro.attacks.compromise`) and generation policies
(:mod:`repro.core.policy`), and one trial builds the world, runs one
experiment and returns scalar metrics. Besides the pool-generation
trial there are end-to-end trials for the whole Figure 1 pipeline
(E1), the time-shift attack (E7), the off-path spray ablation (A1),
the closed-form advantage (E4) and the distribution overhead (E10).

Everything here is module-level and picklable so campaigns can shard
trials across worker processes. The closed-form Monte-Carlo trials live
next to their models in :mod:`repro.analysis.montecarlo` and are
re-exported from :mod:`repro.campaign`.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, List, Mapping

from repro.analysis.advantage import security_bits
from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.attacks.offpath import OffPathPoisoner, SprayPlan
from repro.attacks.timeshift import TimeShiftExperiment
from repro.core.majority import MajorityVoteCombiner
from repro.core.policy import DualStackPolicy, TruncationPolicy
from repro.core.pool import PoolGeneratorConfig
from repro.dns.client import StubResolver
from repro.dns.message import Question
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.ntp.chronos import ChronosClient, ChronosConfig
from repro.ntp.client import NtpClient
from repro.ntp.clock import SimClock
from repro.ntp.pool import deploy_ntp_fleet
from repro.scenarios import PoolScenario
from repro.scenarios.presets import get_preset
from repro.scenarios.spec import (
    ScenarioSpec,
    effective_forged,
    get_path,
    materialize,
    pool_spec,
    population_spec,
)


def build_scenario(params: Mapping[str, Any], seed: int) -> PoolScenario:
    """Build the scenario a grid point describes.

    ``params["preset"]`` (default ``"custom"``) names a builder in the
    :data:`repro.scenarios.presets.PRESETS` registry; every other
    parameter the builder's signature accepts is passed through, so one
    grid can sweep presets and their knobs together.
    """
    builder = get_preset(params.get("preset", "custom"))
    accepted = inspect.signature(builder).parameters
    kwargs = {name: value for name, value in params.items()
              if name in accepted and name != "seed"}
    return builder(seed=seed, **kwargs)


# Parameters pool_attack_trial consumes itself (everything else must be
# accepted by the selected scenario builder).
_ATTACK_KEYS = frozenset({"preset", "corrupted", "behavior", "forged",
                          "inflate_to", "policy", "truncation",
                          "min_answers"})


def _reject_unknown_params(params: Mapping[str, Any],
                           known: frozenset = _ATTACK_KEYS) -> None:
    """Fail loudly on parameters nothing would consume.

    A declarative sweep with a typo'd axis name (``answers_per_qeury``)
    would otherwise run every point against defaults and present a
    sweep that never happened.
    """
    builder = get_preset(params.get("preset", "custom"))
    accepted = set(inspect.signature(builder).parameters)
    unknown = set(params) - known - accepted
    if unknown:
        raise ValueError(
            f"unrecognised trial parameters: {sorted(unknown)} "
            f"(not trial knobs, not accepted by the "
            f"{params.get('preset', 'custom')!r} scenario builder)")


def _coerce_behavior(value: Any) -> CompromisedResolverBehavior:
    if isinstance(value, CompromisedResolverBehavior):
        return value
    return CompromisedResolverBehavior(value)


def _coerce_dual_stack(value: Any) -> "DualStackPolicy | None":
    if value is None or isinstance(value, DualStackPolicy):
        return value
    return DualStackPolicy(value)


def _coerce_truncation(value: Any) -> TruncationPolicy:
    if isinstance(value, TruncationPolicy):
        return value
    return TruncationPolicy(value)


def _share(addresses, forged: set) -> float:
    if not addresses:
        return 0.0
    return sum(1 for a in addresses if a in forged) / len(addresses)


def _pool_generation_metrics(scenario: PoolScenario, pool,
                             forged: set) -> Dict[str, float]:
    """The standard metric set for one Algorithm 1 generation (shared
    by :func:`pool_attack_trial` and single-client :func:`spec_trial`)."""
    voted = (MajorityVoteCombiner().combine(pool.contributions)
             if pool.contributions else [])
    v4 = [a for a in pool.addresses if a.family == 4]
    v6 = [a for a in pool.addresses if a.family == 6]
    benign_fraction = (scenario.directory.benign_fraction(pool.addresses)
                       if pool.addresses else 0.0)
    return {
        "ok": 1.0 if pool.ok else 0.0,
        "degraded": 1.0 if pool.degraded else 0.0,
        "elapsed": pool.elapsed,
        "pool_size": float(len(pool.addresses)),
        "truncate_length": float(pool.truncate_length),
        "attacker_share": _share(pool.addresses, forged),
        "v4_share": _share(v4, forged),
        "v6_share": _share(v6, forged),
        "voted_size": float(len(voted)),
        "voted_attacker_share": _share(voted, forged),
        "benign_fraction": benign_fraction,
    }


def pool_attack_trial(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """One end-to-end pool generation under resolver compromise.

    Recognised parameters (all optional unless noted):

    ``preset`` + builder kwargs
        scenario selection, see :func:`build_scenario`.
    ``corrupted``
        how many providers to corrupt (default 0).
    ``behavior``
        a :class:`CompromisedResolverBehavior` or its string value
        (default ``"substitute"``).
    ``forged``
        the attacker's addresses (required when ``corrupted > 0`` and
        the behaviour needs them).
    ``inflate_to``
        answer inflation for the ``inflate`` behaviour.
    ``policy``
        a :class:`DualStackPolicy` (or value) for dual-stack lookups.
    ``truncation``
        a :class:`TruncationPolicy` (or value), default SHORTEST.
    ``min_answers``
        ``None`` for the paper's strict all-must-answer semantics, or
        the quorum of the E6 availability extension (pairs with
        ``ignore_empty_answers``).

    Returned metrics: ``ok`` and ``degraded`` (availability),
    ``pool_size``, ``truncate_length``, ``attacker_share``,
    ``v4_share``, ``v6_share``, ``voted_size`` and
    ``voted_attacker_share`` (per-address majority vote over the same
    contributions), plus ``benign_fraction`` scored against the
    scenario's pool directory.
    """
    _reject_unknown_params(params)
    scenario = build_scenario(params, seed)
    # Keep the caller's declared order: with the inflate behaviour the
    # compromised resolver serves forged[:inflate_to], so order is
    # semantically meaningful. The set is only for share counting.
    forged_list = [IPAddress(a) for a in params.get("forged", ())]
    forged = set(forged_list)
    corrupted = int(params.get("corrupted", 0))
    if corrupted:
        config = CompromiseConfig(
            target=scenario.pool_domain,
            behavior=_coerce_behavior(params.get("behavior", "substitute")),
            forged_addresses=forged_list,
            inflate_to=int(params.get("inflate_to", 20)))
        corrupt_first_k(scenario.providers, corrupted, config)

    min_answers = params.get("min_answers")
    generator_config = PoolGeneratorConfig(
        truncation=_coerce_truncation(params.get("truncation",
                                                 TruncationPolicy.SHORTEST)),
        dual_stack=_coerce_dual_stack(params.get("policy")),
        min_answers=min_answers,
        ignore_empty_answers=min_answers is not None)
    pool = scenario.generate_pool_sync(
        scenario.make_generator(config=generator_config))
    return _pool_generation_metrics(scenario, pool, forged)


# ----------------------------------------------------------------------
# P1 — population-scale fleets measured through the telemetry registry.
# ----------------------------------------------------------------------

# ``seed`` is campaign-derived and the registry must stay per-trial (a
# shared one would fold metrics across trials and break the
# serial==parallel bit-identity), so neither is a valid grid axis.
_POPULATION_KEYS = frozenset(inspect.signature(population_spec).parameters)


def _population_metrics(scenario) -> Dict[str, float]:
    """The standard metric set for one driven population world."""
    outcomes = scenario.run()
    registry = scenario.telemetry
    return {
        "victim_fraction": outcomes.victim_fraction,
        "availability": outcomes.availability,
        "shifted_fraction": outcomes.shifted_fraction,
        "sync_fraction": (outcomes.syncs / outcomes.rounds_ok
                          if outcomes.rounds_ok else 0.0),
        "mean_abs_clock_error": outcomes.mean_abs_clock_error,
        "p90_abs_clock_error": outcomes.p90_abs_clock_error,
        "rounds": float(outcomes.rounds),
        "rounds_ok": float(outcomes.rounds_ok),
        "churn_leaves": float(outcomes.churn_leaves),
        "churn_joins": float(outcomes.churn_joins),
        "datagrams": registry.value("net.datagrams_sent"),
        "bytes": registry.value("net.bytes_sent"),
        "stub_timeouts": registry.value("dns.stub.timeouts"),
    }


def population_trial(params: Mapping[str, Any], seed: int):
    """One whole client population in one world.

    Every parameter is a keyword of
    :func:`repro.scenarios.spec.population_spec` (``num_clients``,
    ``rounds``, ``corrupted``, ``behavior``, ``churn_rate``,
    ``arrival``, fault axes, ...), so campaign grids sweep the
    population surface directly. Metrics are read from the scenario's
    private telemetry registry after the run, which is what keeps
    serial and sharded campaign executions bit-identical: each trial
    owns its registry and folds nothing across trials.

    Returned metrics: ``victim_fraction`` (of rounds that completed an
    NTP sync, how many synced against an attacker server),
    ``availability``, ``shifted_fraction``, ``sync_fraction``, clock
    error stats, churn counts, and network/transport totals from the
    registry (datagrams, bytes, stub timeouts).  The trial also attaches
    the registry's snapshot JSON to its record, exported by runners
    configured with ``include_telemetry=True``.
    """
    unknown = set(params) - _POPULATION_KEYS
    if unknown:
        raise ValueError(
            f"unrecognised trial parameters: {sorted(unknown)} "
            f"(not accepted by population_spec)")
    scenario = materialize(population_spec(**dict(params)), seed)
    metrics = _population_metrics(scenario)
    return metrics, scenario.telemetry.snapshot_json()


# ----------------------------------------------------------------------
# The generic grid-over-spec trial.
# ----------------------------------------------------------------------


def spec_trial(params: Mapping[str, Any], seed: int):
    """One trial of whatever world ``params["spec"]`` describes.

    The bridge for :meth:`repro.campaign.ParameterGrid.over_spec`
    grids: each point carries its fully applied
    :class:`~repro.scenarios.spec.ScenarioSpec` under the reserved
    ``"spec"`` key (a spec object or its ``to_dict`` form) plus its
    swept dotted paths, which are validated against the spec so a
    point whose sweep silently failed to land cannot run.

    Population specs run the whole fleet and report the
    :func:`population_trial` metric set; single-client specs run one
    Algorithm 1 generation under the spec's combine policy
    (``pool.truncation`` / ``pool.min_answers`` /
    ``pool.dual_stack_policy``) and report the
    :func:`pool_attack_trial` metric set.  Either way the registry
    snapshot rides along when the world has telemetry.
    """
    if "spec" not in params:
        raise ValueError("spec_trial needs params['spec'] "
                         "(use ParameterGrid.over_spec)")
    spec = params["spec"]
    if isinstance(spec, Mapping):
        spec = ScenarioSpec.from_dict(spec)
    for name, value in params.items():
        if name == "spec":
            continue
        applied = get_path(spec, name)   # raises on a path the spec lacks
        expected = tuple(value) if isinstance(value, list) else value
        if applied != expected:
            raise ValueError(
                f"spec path {name!r} carries {applied!r} but the grid "
                f"point says {expected!r}; was the spec edited after "
                f"expansion?")

    world = materialize(spec, seed)
    if spec.fleet is not None:
        metrics = _population_metrics(world)
        return metrics, world.telemetry.snapshot_json()

    # Score attacker shares against what the compiler actually serves:
    # the spec's forged set plus the default synthesis for corruption
    # behaviours that need addresses but declared none.
    forged = {IPAddress(a) for a in effective_forged(spec)}
    for attack in spec.attacks:
        forged.update(IPAddress(a) for a in attack.param("forged", ()))
    min_answers = spec.pool.min_answers
    generator_config = PoolGeneratorConfig(
        truncation=TruncationPolicy(spec.pool.truncation),
        dual_stack=_coerce_dual_stack(spec.pool.dual_stack_policy),
        min_answers=min_answers,
        ignore_empty_answers=min_answers is not None)
    pool = world.generate_pool_sync(
        world.make_generator(config=generator_config))
    metrics = _pool_generation_metrics(world, pool, forged)
    if world.telemetry is not None:
        return metrics, world.telemetry.snapshot_json()
    return metrics


# ----------------------------------------------------------------------
# H1 — exposure windows and hijack over the iterative hierarchy.
# ----------------------------------------------------------------------


def hierarchy_trial(params: Mapping[str, Any], seed: int):
    """One measured population over the iterative resolution hierarchy.

    A :func:`spec_trial`-shaped bridge (``params["spec"]`` + validated
    swept paths) specialised for hierarchy worlds: the spec must carry a
    :class:`~repro.scenarios.spec.FleetSpec` and an iterative
    :class:`~repro.scenarios.spec.ResolverSpec`, so the providers'
    recursors walk real root→TLD→authoritative referral chains with TTL
    caching.  On top of the :func:`population_trial` metric set it
    reports the poisoning-exposure surface ``bench_h1`` sweeps:

    ``exposure_windows`` / ``exposure_open_s`` / ``windows_per_hour``
        cache-miss resolution windows (count, total open seconds, rate
        per virtual hour) summed over every provider — the intervals an
        off-path forgery can race.
    ``referrals_followed``, ``cache_hits`` / ``cache_misses``
        referral and cache traffic (cache counters read from the
        telemetry registry, so they equal the fold of any sharded
        execution of the same world).
    ``poisoned_acceptances``, ``spoofs_rejected``, ``hijacked``
        the race outcome: forged responses accepted/rejected by the
        victim's resolver, and whether any acceptance occurred.
    ``spray_bursts`` / ``spray_packets``
        attacker cost, from the installed off-path sprayers.
    """
    if "spec" not in params:
        raise ValueError("hierarchy_trial needs params['spec'] "
                         "(use ParameterGrid.over_spec)")
    spec = params["spec"]
    if isinstance(spec, Mapping):
        spec = ScenarioSpec.from_dict(spec)
    for name, value in params.items():
        if name == "spec":
            continue
        applied = get_path(spec, name)
        expected = tuple(value) if isinstance(value, list) else value
        if applied != expected:
            raise ValueError(
                f"spec path {name!r} carries {applied!r} but the grid "
                f"point says {expected!r}; was the spec edited after "
                f"expansion?")
    if spec.fleet is None:
        raise ValueError("hierarchy_trial needs a population spec "
                         "(add a FleetSpec)")
    if spec.provider.resolver is None \
            or spec.provider.resolver.mode != "iterative":
        raise ValueError("hierarchy_trial needs an iterative ResolverSpec "
                         "(mode='iterative'); use "
                         "repro.scenarios.presets.hierarchy_population_spec")
    if spec.fleet.shards > 1:
        raise ValueError(
            "hierarchy_trial runs one world per trial; shard the campaign, "
            "not the fleet (the cache counters it reads fold bit-identically "
            "across shards — see repro.telemetry.fold_snapshots)")

    world = materialize(spec, seed)
    metrics = _population_metrics(world)

    snapshot = world.telemetry.snapshot()

    def _summed(name: str) -> float:
        counters = snapshot.get("counter", {})
        return float(sum(state for key, state in counters.items()
                         if key == name or key.startswith(name + "{")))

    stats = [deployment.resolver.stats
             for deployment in world.pool.providers]
    hours = world.pool.simulator.now / 3600.0
    windows = sum(s.exposure_windows for s in stats)
    poisoned = sum(s.poisoned_acceptances for s in stats)
    metrics.update({
        "exposure_windows": float(windows),
        "exposure_open_s": sum(s.exposure_open_s for s in stats),
        "windows_per_hour": windows / hours if hours > 0 else 0.0,
        "referrals_followed": float(sum(s.referrals_followed
                                        for s in stats)),
        "cache_hits": _summed("dns.cache.hits"),
        "cache_misses": _summed("dns.cache.misses"),
        "poisoned_acceptances": float(poisoned),
        "spoofs_rejected": float(sum(s.spoofs_rejected for s in stats)),
        "hijacked": 1.0 if poisoned else 0.0,
        "spray_bursts": float(sum(
            attack.bursts for _, attack in world.attacks
            if hasattr(attack, "bursts"))),
        "spray_packets": float(sum(
            attack.packets_injected for _, attack in world.attacks
            if hasattr(attack, "packets_injected"))),
    })
    return metrics, world.telemetry.snapshot_json()


# ----------------------------------------------------------------------
# C1 — chaos timelines and graceful degradation.
# ----------------------------------------------------------------------

#: An availability bin at or above this mean counts as "recovered" when
#: chaos_trial measures time-to-recovery after a failure window.
RECOVERY_THRESHOLD = 0.99


def chaos_trial(params: Mapping[str, Any], seed: int):
    """One measured population under a declared chaos timeline.

    A :func:`spec_trial`-shaped bridge (``params["spec"]`` + validated
    swept paths) specialised for chaos worlds: the spec must carry a
    :class:`~repro.scenarios.spec.FleetSpec` and a
    :class:`~repro.chaos.ChaosSpec` with at least one event, so sweeps
    like ``chaos.events[0].fraction`` or ``chaos.events[0].duration``
    land on real failure windows.  On top of the
    :func:`population_trial` metric set it reports the
    graceful-degradation surface ``bench_c1`` sweeps:

    ``availability``
        the whole-run sync SLO (from the base metric set) — quorum
        policies (``fleet.min_answers``) should hold it above the
        strict all-providers policy at every outage point.
    ``mttr``
        mean time-to-recovery over the windowed chaos events: per
        event, the delay from its ``at`` until the first
        ``pop.availability`` bin ending after the window whose mean is
        at least :data:`RECOVERY_THRESHOLD` (the run horizon when the
        population never recovers).
    ``availability_floor`` / ``degraded_victim_fraction``
        the worst availability bin and the mean victim fraction inside
        the degraded windows — how far the population sagged while the
        failure was live.
    ``chaos_events``
        how many events the controller actually applied.
    """
    if "spec" not in params:
        raise ValueError("chaos_trial needs params['spec'] "
                         "(use ParameterGrid.over_spec)")
    spec = params["spec"]
    if isinstance(spec, Mapping):
        spec = ScenarioSpec.from_dict(spec)
    for name, value in params.items():
        if name == "spec":
            continue
        applied = get_path(spec, name)
        expected = tuple(value) if isinstance(value, list) else value
        if applied != expected:
            raise ValueError(
                f"spec path {name!r} carries {applied!r} but the grid "
                f"point says {expected!r}; was the spec edited after "
                f"expansion?")
    if spec.fleet is None:
        raise ValueError("chaos_trial needs a population spec "
                         "(add a FleetSpec)")
    if spec.chaos is None or not spec.chaos.events:
        raise ValueError("chaos_trial needs spec.chaos with at least one "
                         "event (attach a repro.chaos.ChaosSpec)")
    if spec.fleet.shards > 1:
        raise ValueError(
            "chaos_trial runs one world per trial; shard the campaign, "
            "not the fleet (infrastructure chaos replays identically in "
            "every shard, so pop.* metrics fold bit-identically anyway)")

    world = materialize(spec, seed)
    metrics = _population_metrics(world)
    registry = world.telemetry
    horizon = world.simulator.now
    bin_width = spec.telemetry.time_bin
    avail = registry.get("pop.availability")
    avail_series = avail.series() if avail is not None else []
    victim = registry.get("pop.victim_fraction")
    victim_series = victim.series() if victim is not None else []

    windows = [(event.at, event.at + event.duration)
               for event in spec.chaos.events
               if getattr(event, "duration", 0.0) > 0.0]

    def _degraded(t: float) -> bool:
        return any(at < t + bin_width and t < end for at, end in windows)

    ttrs = []
    for at, end in windows:
        recovered = next(
            (t for t, mean in avail_series
             if t + bin_width > end and mean >= RECOVERY_THRESHOLD), None)
        ttrs.append(max(0.0, (horizon if recovered is None else recovered)
                        - at))
    floor = [mean for t, mean in avail_series if _degraded(t)]
    degraded_victims = [mean for t, mean in victim_series if _degraded(t)]
    metrics.update({
        "chaos_events": float(len(world.chaos.windows))
        if world.chaos is not None else 0.0,
        "mttr": sum(ttrs) / len(ttrs) if ttrs else 0.0,
        "availability_floor": min(floor) if floor
        else metrics["availability"],
        "degraded_victim_fraction": (sum(degraded_victims)
                                     / len(degraded_victims)
                                     if degraded_victims else 0.0),
    })
    return metrics, registry.snapshot_json()


# ----------------------------------------------------------------------
# E1 — the whole Figure 1 pipeline, DNS→DoH→pool→Chronos.
# ----------------------------------------------------------------------

_FIGURE1_KEYS = frozenset({"preset", "clock_offset", "sample_size",
                           "agreement_window", "min_responses"})


def figure1_system_trial(params: Mapping[str, Any],
                         seed: int) -> Dict[str, float]:
    """One end-to-end system run: generate a pool through the
    distributed DoH resolvers, then discipline a skewed clock with
    Chronos over the generated pool.

    Recognised parameters: ``preset`` + builder kwargs, plus
    ``clock_offset`` (initial clock error, default 80 ms) and the
    Chronos knobs ``sample_size`` / ``agreement_window`` /
    ``min_responses``.

    Returned metrics: ``pool_size``, ``truncate_length``, ``elapsed``
    (pool generation, virtual seconds), ``benign_fraction``,
    ``chronos_ok``, ``clock_error`` and ``clock_error_before``
    (seconds), plus per-resolver ``answers[<name>]`` and
    ``latency[<name>]`` so tables can reproduce Figure 1's per-resolver
    rows.
    """
    _reject_unknown_params(params, _FIGURE1_KEYS)
    scenario = build_scenario(params, seed)
    deploy_ntp_fleet(scenario.internet, scenario.directory, scenario.rng)
    pool = scenario.generate_pool_sync()
    offset = float(params.get("clock_offset", 0.080))
    clock = SimClock(lambda: scenario.simulator.now, offset=offset)
    ntp_client = NtpClient(scenario.client, scenario.simulator, clock)
    chronos = ChronosClient(
        ntp_client, pool.addresses,
        config=ChronosConfig(
            sample_size=int(params.get("sample_size", 9)),
            agreement_window=float(params.get("agreement_window", 0.060)),
            min_responses=int(params.get("min_responses", 5))),
        rng=scenario.rng.stream("bench-chronos"))
    outcomes: List = []
    chronos.sync(outcomes.append)
    scenario.simulator.run()
    sync = outcomes[0]
    metrics = {
        "pool_size": float(len(pool.addresses)),
        "truncate_length": float(pool.truncate_length),
        "elapsed": pool.elapsed,
        "benign_fraction": scenario.directory.benign_fraction(pool.addresses),
        "chronos_ok": 1.0 if sync.ok else 0.0,
        "clock_error": clock.error(),
        "clock_error_before": offset,
    }
    for answer in pool.answers:
        name = answer.resolver.name
        metrics[f"answers[{name}]"] = float(len(answer.addresses))
        metrics[f"latency[{name}]"] = answer.outcome.latency or 0.0
    return metrics


# ----------------------------------------------------------------------
# E7 — the end-to-end time-shift attack, one configuration per point.
# ----------------------------------------------------------------------

TIMESHIFT_CONFIGURATIONS = {
    "plain-dns+naive-sntp": (False, False),
    "plain-dns+chronos": (False, True),
    "distributed-doh+naive-sntp": (True, False),
    "distributed-doh+chronos": (True, True),
}

_TIMESHIFT_KEYS = frozenset({"configuration", "lie_offset", "num_providers",
                             "corrupted_providers", "pool_size"})


def timeshift_trial(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """One E7 configuration in a fresh world (trial index = world seed).

    ``configuration`` must be one of :data:`TIMESHIFT_CONFIGURATIONS`;
    ``lie_offset``, ``num_providers``, ``corrupted_providers`` and
    ``pool_size`` pass through to
    :class:`repro.attacks.timeshift.TimeShiftExperiment`.
    """
    unknown = set(params) - _TIMESHIFT_KEYS
    if unknown:
        raise ValueError(f"unrecognised trial parameters: {sorted(unknown)}; "
                         f"known: {sorted(_TIMESHIFT_KEYS)}")
    configuration = params["configuration"]
    try:
        use_doh, use_chronos = TIMESHIFT_CONFIGURATIONS[configuration]
    except KeyError:
        raise ValueError(
            f"unknown configuration {configuration!r}; known: "
            f"{sorted(TIMESHIFT_CONFIGURATIONS)}") from None
    experiment = TimeShiftExperiment(
        seed=seed, lie_offset=float(params.get("lie_offset", 10.0)),
        num_providers=int(params.get("num_providers", 3)),
        corrupted_providers=int(params.get("corrupted_providers", 1)),
        pool_size=int(params.get("pool_size", 20)))
    result = experiment.run(use_distributed_doh=use_doh,
                            use_chronos=use_chronos)
    return {
        "clock_error": result.clock_error_after,
        "abs_clock_error": abs(result.clock_error_after),
        "pool_malicious_fraction": result.pool_malicious_fraction,
        "shifted": 1.0 if result.shifted else 0.0,
        "synced": 1.0 if result.synced else 0.0,
        "pool_size": float(result.pool_size),
    }


# ----------------------------------------------------------------------
# A1 — off-path poisoning rate vs covered (TXID × port) entropy.
# ----------------------------------------------------------------------

_OFFPATH_KEYS = frozenset({"covered_bits", "txid_bits", "port_guesses",
                           "forged"})


def offpath_spray_trial(params: Mapping[str, Any],
                        seed: int) -> Dict[str, float]:
    """One off-path poisoning race against a deliberately weak resolver
    (``txid_bits``-bit transaction IDs, sequential ephemeral ports).

    The attacker sprays ``2**covered_bits`` transaction IDs across
    ``port_guesses`` predicted ports while the resolver recurses for
    the pool domain. Returns ``poisoned`` (1.0 when any forgery was
    accepted) and ``packets`` (spray cost).
    """
    unknown = set(params) - _OFFPATH_KEYS
    if unknown:
        raise ValueError(f"unrecognised trial parameters: {sorted(unknown)}; "
                         f"known: {sorted(_OFFPATH_KEYS)}")
    txid_bits = int(params.get("txid_bits", 8))
    covered_bits = int(params["covered_bits"])
    scenario = materialize(pool_spec(
        num_providers=1,
        resolver_config=ResolverConfig(txid_bits=txid_bits,
                                       randomize_txid=True)), seed)
    victim = scenario.providers[0]
    victim.host.randomize_ports = False
    poisoner = OffPathPoisoner(scenario.internet,
                               injection_node=victim.host.node)
    outcomes: List = []
    victim.resolver.resolve(scenario.pool_domain, RRType.A, outcomes.append)
    plan = SprayPlan(
        question=Question(scenario.pool_domain, RRType.A),
        spoofed_server=Endpoint(IPAddress("10.0.0.1"), 53),
        target_ports=poisoner.sequential_port_guesses(
            int(params.get("port_guesses", 2))),
        txid_guesses=poisoner.txid_space(covered_bits),
        forged_addresses=[IPAddress(a) for a in
                          params.get("forged", ("203.0.113.200",))],
    )
    poisoner.spray(victim.address, plan)
    scenario.simulator.run()
    return {
        "poisoned": 1.0 if victim.resolver.stats.poisoned_acceptances else 0.0,
        "packets": float(plan.packet_count),
    }


# ----------------------------------------------------------------------
# E4 — closed-form security bits (campaign-shaped for table uniformity).
# ----------------------------------------------------------------------


def advantage_bits_trial(params: Mapping[str, Any],
                         seed: int) -> Dict[str, float]:
    """Security bits ``-log2 P[attack]`` for one ``(n, x, p_attack)``
    point. Deterministic closed form — one trial per point suffices."""
    return {"bits": security_bits(int(params["n"]),
                                  float(params.get("x", 0.5)),
                                  float(params["p_attack"]))}


# ----------------------------------------------------------------------
# E10 — the cost of distribution vs the plain-DNS baseline.
# ----------------------------------------------------------------------

_OVERHEAD_KEYS = frozenset({"mechanism", "preset"})


def overhead_trial(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """Measure one pool acquisition's latency/bytes/packets.

    ``mechanism`` selects ``"plain-dns"`` (one stub query to the first
    provider over spoofable UDP) or ``"distributed-doh"`` (Algorithm 1
    across all providers); every other parameter reaches the scenario
    builder.
    """
    _reject_unknown_params(params, _OVERHEAD_KEYS)
    mechanism = params["mechanism"]
    if mechanism not in ("plain-dns", "distributed-doh"):
        raise ValueError(f"unknown mechanism {mechanism!r}")
    scenario = build_scenario(params, seed)
    bytes_before = scenario.internet.bytes_sent
    packets_before = scenario.internet.datagrams_sent
    if mechanism == "plain-dns":
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        started = scenario.simulator.now
        outcomes: List = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        latency = scenario.simulator.now - started
        pool_size = len(outcomes[0].addresses) if outcomes else 0
    else:
        pool = scenario.generate_pool_sync()
        latency = pool.elapsed
        pool_size = len(pool.addresses)
    return {
        "latency": latency,
        "bytes": float(scenario.internet.bytes_sent - bytes_before),
        "packets": float(scenario.internet.datagrams_sent - packets_before),
        "pool_size": float(pool_size),
    }
