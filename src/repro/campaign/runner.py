"""Campaign execution: shard trials across workers, deterministically.

The runner expands a :class:`~repro.campaign.grid.ParameterGrid` into
``len(grid) * trials_per_point`` trial specs, derives every trial's seed
from ``(base_seed, point key, trial index)`` via
:func:`repro.util.rng.derive_seed`, and executes the specs either
serially or on a chunked ``multiprocessing.Pool``. Because seeds depend
only on the campaign's base seed and each trial's identity — never on
execution order or worker assignment — the two modes produce identical
records, and the aggregation (performed in spec order in both modes) is
bit-identical.

Trial functions must be module-level callables of the form
``trial_fn(params, seed) -> float | Mapping[str, float]`` so they can be
pickled to workers; anything unpicklable silently degrades to the serial
path (the results are the same, only slower).

Long sweeps get two conveniences:

* **progress** — pass ``on_progress`` and the runner reports one
  :class:`CampaignProgress` (completed/total, elapsed, ETA) per
  finished trial, in both serial and parallel modes;
* **result caching** — pass ``cache_dir`` and finished campaigns are
  written to disk keyed by a content hash of the campaign's identity
  (trial-function source, grid points, per-trial seeds, statistics
  configuration). Re-running an identical campaign is a no-op: the
  records are rehydrated from the cache (``mode == "cached"``, hit
  logged on the ``repro.campaign`` logger) and any drift in the code or
  the grid changes the hash and forces recomputation. The directory is
  bounded: after every write an LRU sweep (mtime order; hits refresh a
  file's mtime) evicts the least-recently-used entries above
  ``cache_max_bytes``, logging each eviction.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import logging
import math
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.campaign.aggregate import Aggregator, CampaignResult, TrialRecord
from repro.campaign.grid import ParameterGrid
from repro.util.rng import derive_seed

TrialFn = Callable[[Mapping[str, Any], int], Union[float, Mapping[str, float]]]

_Spec = Tuple[TrialFn, int, str, Mapping[str, Any], int, int]

logger = logging.getLogger("repro.campaign")


@dataclass(frozen=True)
class CampaignProgress:
    """One progress tick, delivered after each finished trial."""

    name: str
    completed: int
    total: int
    elapsed_s: float
    eta_s: Optional[float]        # None until at least one trial lands
    cached: bool = False          # whole campaign served from cache

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


ProgressCallback = Callable[[CampaignProgress], None]


def trial_seed(base_seed: int, point_key: str, trial: int) -> int:
    """The deterministic seed for one trial of one grid point."""
    return derive_seed(base_seed, "campaign", point_key, str(trial))


_source_fingerprint_cache: Optional[str] = None


def _source_tree_fingerprint() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Trial results depend on the whole simulation stack, so the result
    cache must key on all of it — not just the trial function's own
    source. ~100 small files hash in a few milliseconds, once.
    """
    global _source_fingerprint_cache
    if _source_fingerprint_cache is None:
        import repro

        hasher = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode("utf-8"))
            try:
                hasher.update(path.read_bytes())
            except OSError:
                hasher.update(b"<unreadable>")
        _source_fingerprint_cache = hasher.hexdigest()
    return _source_fingerprint_cache


def _execute_spec(spec: _Spec) -> TrialRecord:
    """Run one trial spec (module-level so worker processes can run it).

    A trial function may return a bare scalar, a metrics mapping, or a
    ``(metrics, telemetry_json)`` pair — the last attaches the trial's
    registry snapshot to its record for ``include_telemetry`` exports.
    """
    trial_fn, point_index, point_key, params, trial, seed = spec
    outcome = trial_fn(params, seed)
    telemetry = None
    if isinstance(outcome, tuple):
        outcome, telemetry = outcome
    if isinstance(outcome, Mapping):
        metrics = {name: float(value) for name, value in outcome.items()}
    else:
        metrics = {"value": float(outcome)}
    return TrialRecord(point_index=point_index, point_key=point_key,
                       params=params, trial=trial, seed=seed, metrics=metrics,
                       telemetry=telemetry)


def _execute_chunk(chunk: List[_Spec]) -> List[TrialRecord]:
    """Run one worker-sized batch of specs (one IPC round-trip each
    way per *chunk*, not per trial)."""
    return [_execute_spec(spec) for spec in chunk]


class CampaignRunner:
    """Run every trial of a parameter grid and aggregate the results.

    :param trial_fn: module-level callable ``(params, seed) -> metrics``.
        A scalar return value becomes the metric ``"value"``.
    :param trials_per_point: how many independently seeded trials to run
        at each grid point.
    :param base_seed: root of the per-trial seed derivation.
    :param workers: worker processes. ``None`` uses ``os.cpu_count()``
        but drops to serial for campaigns too small to amortise pool
        startup (fewer than two specs per worker); ``0`` or ``1``
        forces the serial path; any explicit count is honoured.
    :param chunk_size: trials per work unit handed to a worker. Defaults
        to spreading the specs roughly four chunks per worker, so slow
        grid points do not serialise the whole campaign behind them.
    :param confidence: confidence level for aggregate intervals.
    :param include_telemetry: export each trial's registry snapshot
        (when the trial function attaches one) into the aggregated
        result and its JSON — see ``Aggregator``.
    :param name: campaign label carried into the result/JSON.
    :param cache_dir: directory for content-hashed result caching; when
        set, rerunning an identical campaign loads its records instead
        of recomputing them.
    :param cache_max_bytes: size cap on ``cache_dir``. After each cache
        write, least-recently-used entries (by mtime; cache hits touch
        their file) are evicted until the directory fits. ``None``
        disables the sweep.
    :param on_progress: default progress callback (see
        :class:`CampaignProgress`); :meth:`run` can override per run.
    """

    #: Default cache size cap: plenty for every stock benchmark's
    #: records while keeping an unattended results/.cache bounded.
    DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024

    def __init__(self, trial_fn: TrialFn, *, trials_per_point: int = 1,
                 base_seed: int = 0, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 confidence: float = 0.95,
                 include_telemetry: bool = False, name: str = "campaign",
                 cache_dir: "Optional[Path | str]" = None,
                 cache_max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
                 on_progress: Optional[ProgressCallback] = None) -> None:
        if trials_per_point < 1:
            raise ValueError("trials_per_point must be >= 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_max_bytes is not None and cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be >= 1 (or None)")
        self._trial_fn = trial_fn
        self._trials_per_point = trials_per_point
        self._base_seed = int(base_seed)
        self._workers = workers
        self._chunk_size = chunk_size
        self._confidence = confidence
        self._include_telemetry = include_telemetry
        self._name = name
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._cache_max_bytes = cache_max_bytes
        self._on_progress = on_progress

    # ------------------------------------------------------------------
    # Spec expansion.
    # ------------------------------------------------------------------

    def specs(self, grid: ParameterGrid) -> List[_Spec]:
        """Every (point, trial) pair in deterministic expansion order."""
        expanded = []
        for point in grid.points():
            for trial in range(self._trials_per_point):
                expanded.append((
                    self._trial_fn, point.index, point.key, point.params,
                    trial, trial_seed(self._base_seed, point.key, trial),
                ))
        return expanded

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, grid: ParameterGrid,
            on_progress: Optional[ProgressCallback] = None) -> CampaignResult:
        """Execute the campaign and return its aggregated result.

        With ``cache_dir`` configured, an identical earlier run is
        served from its cache file (``mode == "cached"``) instead of
        recomputing anything.
        """
        progress = on_progress or self._on_progress
        specs = self.specs(grid)
        name = grid.name or self._name
        cache_path = self._cache_path(name, specs)

        cached = self._load_cache(cache_path, specs)
        if cached is not None:
            logger.info("campaign %r: cache hit (%d records at %s); "
                        "skipping execution", name, len(cached), cache_path)
            self._touch_cache(cache_path)
            if progress is not None:
                progress(CampaignProgress(name=name, completed=len(specs),
                                          total=len(specs), elapsed_s=0.0,
                                          eta_s=0.0, cached=True))
            return self._finalise(name, cached, mode="cached")

        started = time.monotonic()

        def tick(completed: int) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta = (elapsed / completed * (len(specs) - completed)
                   if completed else None)
            progress(CampaignProgress(name=name, completed=completed,
                                      total=len(specs), elapsed_s=elapsed,
                                      eta_s=eta))

        workers = self._resolve_workers(len(specs))
        records: Optional[List[TrialRecord]] = None
        mode = "serial"
        if workers > 1:
            records = self._run_parallel(specs, workers, tick)
            if records is not None:
                mode = f"processes:{workers}"
        if records is None:
            records = []
            for spec in specs:
                records.append(_execute_spec(spec))
                tick(len(records))

        self._write_cache(cache_path, records)
        return self._finalise(name, records, mode=mode)

    def _finalise(self, name: str, records: List[TrialRecord],
                  mode: str) -> CampaignResult:
        aggregator = Aggregator(confidence=self._confidence,
                                include_telemetry=self._include_telemetry)
        aggregator.extend(records)
        return CampaignResult(
            name=name, base_seed=self._base_seed,
            trials_per_point=self._trials_per_point, mode=mode,
            records=records, summaries=aggregator.summaries())

    # ------------------------------------------------------------------
    # Content-hash result caching.
    # ------------------------------------------------------------------

    def _fingerprint(self, name: str, specs: List[_Spec]) -> str:
        """Content hash of everything that determines the records.

        Covers the whole ``repro`` source tree (a trial function's
        results depend on the entire simulation stack beneath it, so
        *any* code edit must invalidate the cache), the trial function's
        identity, the statistics configuration, and every spec's
        identity — point key, canonical parameter rendering, trial
        index and derived seed (which folds in the base seed).

        Known limits: helpers a trial function calls *outside* the
        ``repro`` tree are only covered through the function's own
        source, and the tree hash is memoised per process — keep trial
        logic inside ``repro`` (all stock trials are) and don't edit
        sources mid-run if you rely on invalidation.
        """
        try:
            fn_identity = inspect.getsource(self._trial_fn)
        except (OSError, TypeError):
            fn_identity = repr(self._trial_fn)
        hasher = hashlib.sha256()
        payload = {
            "name": name,
            "code": _source_tree_fingerprint(),
            "trial_fn": f"{getattr(self._trial_fn, '__module__', '?')}."
                        f"{getattr(self._trial_fn, '__qualname__', '?')}",
            "source": fn_identity,
            "confidence": self._confidence,
            "specs": [
                [key, trial, seed,
                 repr(sorted(params.items(), key=lambda kv: kv[0]))]
                for _, _, key, params, trial, seed in specs
            ],
        }
        hasher.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
        return hasher.hexdigest()

    def _cache_path(self, name: str, specs: List[_Spec]) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        fingerprint = self._fingerprint(name, specs)
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        return self._cache_dir / f"{safe}-{fingerprint[:16]}.json"

    def _load_cache(self, cache_path: Optional[Path],
                    specs: List[_Spec]) -> Optional[List[TrialRecord]]:
        """Rehydrate records from a cache file, or ``None`` on any
        mismatch (missing file, corrupt JSON, changed specs)."""
        if cache_path is None or not cache_path.exists():
            return None
        try:
            payload = json.loads(cache_path.read_text())
            by_identity: Dict[Tuple[str, int], Dict[str, Any]] = {
                (entry["point_key"], entry["trial"]): entry
                for entry in payload["records"]
            }
        except (OSError, ValueError, KeyError, TypeError):
            return None
        records = []
        for _, point_index, key, params, trial, seed in specs:
            entry = by_identity.get((key, trial))
            if entry is None or entry.get("seed") != seed:
                return None
            metrics = entry.get("metrics")
            if not isinstance(metrics, dict):
                return None
            records.append(TrialRecord(
                point_index=point_index, point_key=key, params=params,
                trial=trial, seed=seed,
                metrics={str(k): float(v) for k, v in metrics.items()},
                telemetry=entry.get("telemetry")))
        return records

    def _write_cache(self, cache_path: Optional[Path],
                     records: List[TrialRecord]) -> None:
        if cache_path is None:
            return
        from repro.campaign.aggregate import json_value

        payload = {
            # Self-description: each record carries its parameters
            # (specs render as their full nested dict), so a cache file
            # alone says exactly which worlds produced it.  Only
            # point_key/trial/seed/metrics/telemetry are read back.
            "records": [
                {"point_key": record.point_key, "trial": record.trial,
                 "seed": record.seed, "metrics": dict(record.metrics),
                 "params": {name: json_value(value)
                            for name, value in record.params.items()},
                 **({"telemetry": record.telemetry}
                    if record.telemetry is not None else {})}
                for record in records
            ],
        }
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(json.dumps(payload, sort_keys=True))
        except OSError:  # caching is best-effort, never fatal
            logger.warning("campaign cache write failed at %s", cache_path)
            return
        self._sweep_cache()

    @staticmethod
    def _touch_cache(cache_path: Optional[Path]) -> None:
        """Refresh a hit entry's mtime so the LRU sweep keeps it."""
        if cache_path is None:
            return
        try:
            os.utime(cache_path, None)
        except OSError:
            pass

    def _sweep_cache(self) -> None:
        """Evict least-recently-used cache files above the size cap.

        mtime is the recency signal: writes create files and hits touch
        them, so eviction order tracks actual use. Ties break on name
        for determinism. Best-effort like the rest of the cache — a
        vanished file (concurrent campaign) is simply skipped.
        """
        if self._cache_dir is None or self._cache_max_bytes is None:
            return
        entries = []
        for path in self._cache_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        total = sum(size for _, _, size, _ in entries)
        if total <= self._cache_max_bytes:
            return
        for _, _, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            logger.info(
                "campaign cache: evicted %s (%d bytes, LRU sweep; "
                "%d bytes still cached, cap %d)",
                path, size, total, self._cache_max_bytes)
            if total <= self._cache_max_bytes:
                return

    def _resolve_workers(self, spec_count: int) -> int:
        workers = self._workers
        if workers is None:
            workers = os.cpu_count() or 1
            # Auto mode: a campaign smaller than two specs per worker
            # cannot amortise pool startup; run it serially. An explicit
            # workers count is always honoured.
            if spec_count < workers * 2:
                return 1
        return max(1, min(workers, spec_count))

    def _run_parallel(self, specs: List[_Spec], workers: int,
                      tick: Callable[[int], None]) -> Optional[List[TrialRecord]]:
        """Shard specs over a process pool; ``None`` → use serial path.

        Specs are grouped into worker-sized chunks executed via
        ``imap_unordered`` — each chunk is one task submission and one
        result message, amortizing the pool's IPC over many trials, and
        no worker ever idles waiting for an in-order result to be
        consumed. Completion order is nondeterministic, so records are
        reassembled into spec-expansion order by their ``(point key,
        trial)`` identity; every trial's seed is derived from that same
        identity, which is what makes the reassembled records
        bit-identical to a serial run's.
        """
        try:
            # Covers the trial function and every point's parameters, so
            # nothing refuses to cross the process boundary mid-run.
            pickle.dumps(specs)
        except Exception:
            return None
        chunk = self._chunk_size or max(
            1, math.ceil(len(specs) / (workers * 4)))
        chunks = [specs[start:start + chunk]
                  for start in range(0, len(specs), chunk)]
        try:
            import multiprocessing

            pool = multiprocessing.Pool(processes=workers)
        except (ImportError, OSError, PermissionError):
            # No usable process support (restricted sandboxes, missing
            # semaphores): the serial path gives identical results.
            return None
        # Errors raised past this point come from the trial function
        # itself and must propagate, not silently trigger a serial
        # re-run of the whole campaign.
        slot_of = {(key, trial): index
                   for index, (_, _, key, _, trial, _) in enumerate(specs)}
        records: List[Optional[TrialRecord]] = [None] * len(specs)
        completed = 0
        with pool:
            for batch in pool.imap_unordered(_execute_chunk, chunks):
                for record in batch:
                    records[slot_of[record.point_key, record.trial]] = record
                    completed += 1
                    tick(completed)
        return records
