"""Campaign execution: shard trials across workers, deterministically.

The runner expands a :class:`~repro.campaign.grid.ParameterGrid` into
``len(grid) * trials_per_point`` trial specs, derives every trial's seed
from ``(base_seed, point key, trial index)`` via
:func:`repro.util.rng.derive_seed`, and executes the specs either
serially or on a chunked ``multiprocessing.Pool``. Because seeds depend
only on the campaign's base seed and each trial's identity — never on
execution order or worker assignment — the two modes produce identical
records, and the aggregation (performed in spec order in both modes) is
bit-identical.

Trial functions must be module-level callables of the form
``trial_fn(params, seed) -> float | Mapping[str, float]`` so they can be
pickled to workers; anything unpicklable silently degrades to the serial
path (the results are the same, only slower).
"""

from __future__ import annotations

import math
import os
import pickle
from typing import Any, Callable, List, Mapping, Optional, Tuple, Union

from repro.campaign.aggregate import Aggregator, CampaignResult, TrialRecord
from repro.campaign.grid import ParameterGrid
from repro.util.rng import derive_seed

TrialFn = Callable[[Mapping[str, Any], int], Union[float, Mapping[str, float]]]

_Spec = Tuple[TrialFn, int, str, Mapping[str, Any], int, int]


def trial_seed(base_seed: int, point_key: str, trial: int) -> int:
    """The deterministic seed for one trial of one grid point."""
    return derive_seed(base_seed, "campaign", point_key, str(trial))


def _execute_spec(spec: _Spec) -> TrialRecord:
    """Run one trial spec (module-level so worker processes can run it)."""
    trial_fn, point_index, point_key, params, trial, seed = spec
    outcome = trial_fn(params, seed)
    if isinstance(outcome, Mapping):
        metrics = {name: float(value) for name, value in outcome.items()}
    else:
        metrics = {"value": float(outcome)}
    return TrialRecord(point_index=point_index, point_key=point_key,
                       params=params, trial=trial, seed=seed, metrics=metrics)


class CampaignRunner:
    """Run every trial of a parameter grid and aggregate the results.

    :param trial_fn: module-level callable ``(params, seed) -> metrics``.
        A scalar return value becomes the metric ``"value"``.
    :param trials_per_point: how many independently seeded trials to run
        at each grid point.
    :param base_seed: root of the per-trial seed derivation.
    :param workers: worker processes. ``None`` uses ``os.cpu_count()``
        but drops to serial for campaigns too small to amortise pool
        startup (fewer than two specs per worker); ``0`` or ``1``
        forces the serial path; any explicit count is honoured.
    :param chunk_size: trials per work unit handed to a worker. Defaults
        to spreading the specs roughly four chunks per worker, so slow
        grid points do not serialise the whole campaign behind them.
    :param confidence: confidence level for aggregate intervals.
    :param name: campaign label carried into the result/JSON.
    """

    def __init__(self, trial_fn: TrialFn, *, trials_per_point: int = 1,
                 base_seed: int = 0, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 confidence: float = 0.95, name: str = "campaign") -> None:
        if trials_per_point < 1:
            raise ValueError("trials_per_point must be >= 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._trial_fn = trial_fn
        self._trials_per_point = trials_per_point
        self._base_seed = int(base_seed)
        self._workers = workers
        self._chunk_size = chunk_size
        self._confidence = confidence
        self._name = name

    # ------------------------------------------------------------------
    # Spec expansion.
    # ------------------------------------------------------------------

    def specs(self, grid: ParameterGrid) -> List[_Spec]:
        """Every (point, trial) pair in deterministic expansion order."""
        expanded = []
        for point in grid.points():
            for trial in range(self._trials_per_point):
                expanded.append((
                    self._trial_fn, point.index, point.key, point.params,
                    trial, trial_seed(self._base_seed, point.key, trial),
                ))
        return expanded

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, grid: ParameterGrid) -> CampaignResult:
        """Execute the campaign and return its aggregated result."""
        specs = self.specs(grid)
        workers = self._resolve_workers(len(specs))
        records: Optional[List[TrialRecord]] = None
        mode = "serial"
        if workers > 1:
            records = self._run_parallel(specs, workers)
            if records is not None:
                mode = f"processes:{workers}"
        if records is None:
            records = [_execute_spec(spec) for spec in specs]

        aggregator = Aggregator(confidence=self._confidence)
        aggregator.extend(records)
        return CampaignResult(
            name=grid.name or self._name, base_seed=self._base_seed,
            trials_per_point=self._trials_per_point, mode=mode,
            records=records, summaries=aggregator.summaries())

    def _resolve_workers(self, spec_count: int) -> int:
        workers = self._workers
        if workers is None:
            workers = os.cpu_count() or 1
            # Auto mode: a campaign smaller than two specs per worker
            # cannot amortise pool startup; run it serially. An explicit
            # workers count is always honoured.
            if spec_count < workers * 2:
                return 1
        return max(1, min(workers, spec_count))

    def _run_parallel(self, specs: List[_Spec],
                      workers: int) -> Optional[List[TrialRecord]]:
        """Shard specs over a process pool; ``None`` → use serial path.

        ``Pool.map`` preserves input order, so the returned records are
        in the same order the serial path would produce.
        """
        try:
            # Covers the trial function and every point's parameters, so
            # nothing refuses to cross the process boundary mid-run.
            pickle.dumps(specs)
        except Exception:
            return None
        chunk = self._chunk_size or max(
            1, math.ceil(len(specs) / (workers * 4)))
        try:
            import multiprocessing

            pool = multiprocessing.Pool(processes=workers)
        except (ImportError, OSError, PermissionError):
            # No usable process support (restricted sandboxes, missing
            # semaphores): the serial path gives identical results.
            return None
        # Errors raised past this point come from the trial function
        # itself and must propagate, not silently trigger a serial
        # re-run of the whole campaign.
        with pool:
            return pool.map(_execute_spec, specs, chunksize=chunk)
