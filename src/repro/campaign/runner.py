"""Campaign execution: adaptive sharding, resumable, deterministic.

The runner expands a :class:`~repro.campaign.grid.ParameterGrid` into
``len(grid) * trials_per_point`` trial specs, derives every trial's seed
from ``(base_seed, point key, trial index)`` via
:func:`repro.util.rng.derive_seed`, and executes the specs on one of the
executors in :mod:`repro.campaign.executors` — serial, a thread pool,
or a fork/process pool. Because seeds depend only on the campaign's
base seed and each trial's identity — never on execution order, worker
assignment, or executor kind — all three modes produce identical
records, and the aggregation (performed in spec order in every mode) is
bit-identical.

By default the executor is chosen *adaptively*: the first executed spec
doubles as a calibration probe, and the measured per-trial cost decides
whether parallelism can amortise pool startup at all (serial below the
threshold), whether trials are too tiny for process IPC (thread pool),
or whether the fork pool pays for itself (process pool) — see
:func:`repro.campaign.executors.choose_executor`. Pass ``executor=`` to
force a specific mode; ``workers=0/1`` always forces serial.

Trial functions must be module-level callables of the form
``trial_fn(params, seed) -> float | Mapping[str, float]`` so they can be
pickled to workers; anything unpicklable silently degrades to the serial
path (the results are the same, only slower).

Long sweeps get four conveniences:

* **progress** — pass ``on_progress`` and the runner reports one
  :class:`CampaignProgress` (completed/total, elapsed, ETA) per
  finished trial, in every mode;
* **result caching** — pass ``cache_dir`` and finished campaigns are
  written to disk keyed by a content hash of the campaign's identity
  (trial-function source, grid points, per-trial seeds, statistics and
  sampling configuration). Re-running an identical campaign is a no-op:
  the records are rehydrated from the cache (``mode == "cached"``, hit
  logged on the ``repro.campaign`` logger) and any drift in the code or
  the grid changes the hash and forces recomputation. The directory is
  bounded: after every write an LRU sweep (mtime order; hits refresh a
  file's mtime; the just-written entry is exempt) evicts the
  least-recently-used entries above ``cache_max_bytes``;
* **resumability** — pass ``journal_dir`` and every finished trial is
  appended to a per-campaign completion journal
  (``<journal_dir>/<name>-<fingerprint16>.jsonl``) as it lands. A
  killed sweep restarts where it stopped: recovered ``(point key,
  trial)`` identities are not re-executed, and the resumed records are
  bit-identical to an uninterrupted run's. The journal is deleted when
  the campaign completes — see :mod:`repro.campaign.journal`;
* **adaptive sampling** — pass
  ``adaptive=AdaptiveSampling(max_trials=..., ci_width=...)`` and
  ``trials_per_point`` becomes a floor: points whose confidence
  interval is still wider than ``ci_width`` keep receiving
  deterministically-seeded extra trials (up to ``max_trials``), so the
  trial budget concentrates where the variance lives — see
  :mod:`repro.campaign.sampling`.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.campaign.aggregate import Aggregator, CampaignResult, TrialRecord
from repro.campaign.executors import (
    ExecutorChoice,
    Spec,
    TrialFn,
    choose_executor,
    execute_spec,
    run_processes,
    run_serial,
    run_threads,
)
from repro.campaign.grid import GridPoint, ParameterGrid
from repro.campaign.journal import CampaignJournal, journal_path
from repro.campaign.sampling import AdaptiveSampling
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats

_Spec = Spec

logger = logging.getLogger("repro.campaign")

#: The executor policies ``CampaignRunner(executor=...)`` accepts.
EXECUTORS = ("adaptive", "serial", "threads", "processes")


@dataclass(frozen=True)
class CampaignProgress:
    """One progress tick, delivered after each finished trial.

    Under adaptive sampling ``total`` can grow between ticks as
    unconverged points request extra trials; ``completed`` counts both
    executed and journal-resumed trials.
    """

    name: str
    completed: int
    total: int
    elapsed_s: float
    eta_s: Optional[float]        # None until at least one trial lands
    cached: bool = False          # whole campaign served from cache

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


ProgressCallback = Callable[[CampaignProgress], None]


def trial_seed(base_seed: int, point_key: str, trial: int) -> int:
    """The deterministic seed for one trial of one grid point."""
    return derive_seed(base_seed, "campaign", point_key, str(trial))


class TracedTrial:
    """A trial function wrapped with a per-trial :class:`Tracer`.

    Module-level and picklable (the wrapped ``trial_fn`` must be, like
    any campaign trial function), so traced sweeps run on every
    executor. The head-sampling decision is made from the trial's
    ``(point key, trial)`` identity — the same identity that keys
    seeds, caches and journals — so a sampled sweep resumes and caches
    exactly like an unsampled one, and a sampled-out trial runs with
    *no* tracer installed (zero per-event cost, bit-identical results).
    """

    def __init__(self, trial_fn: TrialFn, point_key: str, trial: int,
                 sample: float) -> None:
        self.trial_fn = trial_fn
        self.point_key = point_key
        self.trial = trial
        self.sample = sample

    def __call__(self, params: Mapping[str, Any], seed: int):
        from repro.telemetry.trace import Tracer, should_sample, use_tracer

        if not should_sample(self.point_key, self.trial, self.sample):
            return self.trial_fn(params, seed)
        tracer = Tracer()
        with use_tracer(tracer):
            root = tracer.begin("campaign.trial",
                                attrs={"point": self.point_key,
                                       "trial": self.trial, "seed": seed})
            with tracer.scope(root):
                outcome = self.trial_fn(params, seed)
            tracer.finish(root)
        telemetry = None
        if isinstance(outcome, tuple):
            outcome, telemetry = outcome[0], outcome[1]
        return outcome, telemetry, tracer.snapshot_json()


_source_fingerprint_cache: Optional[str] = None


def _source_tree_fingerprint() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Trial results depend on the whole simulation stack, so the result
    cache must key on all of it — not just the trial function's own
    source. ~100 small files hash in a few milliseconds, once.
    """
    global _source_fingerprint_cache
    if _source_fingerprint_cache is None:
        import repro

        hasher = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode("utf-8"))
            try:
                hasher.update(path.read_bytes())
            except OSError:
                hasher.update(b"<unreadable>")
        _source_fingerprint_cache = hasher.hexdigest()
    return _source_fingerprint_cache


class _Execution:
    """Shared execution state across a campaign's base pass and its
    adaptive-sampling rounds: one executor decision (made once, from
    the calibration probe), one journal, one progress stream, one
    growing completed/total count."""

    def __init__(self, runner: "CampaignRunner", name: str,
                 journal: Optional[CampaignJournal],
                 recovered: Mapping[Tuple[str, int], Mapping[str, Any]],
                 progress: Optional[ProgressCallback]) -> None:
        self._runner = runner
        self._name = name
        self._journal = journal
        self._recovered = recovered
        self._progress = progress
        self._started = time.monotonic()
        self._choice: Optional[ExecutorChoice] = None
        self._completed = 0
        self._total = 0
        self.resumed = 0

    @property
    def mode(self) -> str:
        if self._choice is not None:
            return self._choice.mode
        return "resumed" if self.resumed else "serial"

    # ------------------------------------------------------------------

    def run_specs(self, specs: List[Spec]) -> List[TrialRecord]:
        """Execute ``specs`` (skipping journal-recovered identities) and
        return their records in spec order."""
        self._total += len(specs)
        slots: List[Optional[TrialRecord]] = [None] * len(specs)
        slot_of: Dict[Tuple[str, int], int] = {}
        pending: List[Spec] = []
        for index, spec in enumerate(specs):
            record = self._recover_record(spec)
            if record is not None:
                slots[index] = record
                self.resumed += 1
                self._tick()
            else:
                slot_of[(spec[2], spec[4])] = index
                pending.append(spec)

        def emit(record: TrialRecord) -> None:
            slots[slot_of[(record.point_key, record.trial)]] = record
            if self._journal is not None and record.error is None:
                # Errored trials stay out of the journal so a resumed
                # run re-executes them instead of trusting the crash.
                self._journal.append(record)
            self._tick()

        if pending:
            if self._choice is None:
                pending = self._decide(pending, emit)
            self._dispatch(pending, emit)
        assert all(record is not None for record in slots)
        return slots  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _recover_record(self, spec: Spec) -> Optional[TrialRecord]:
        """A journal entry rehydrated against the live spec, or ``None``.

        The entry's seed must equal the spec's own derivation — a
        journal whose fingerprint matched but whose content drifted is
        simply re-executed. Params come from the live spec, so resumed
        records keep their Python types exactly like cached ones do.
        """
        entry = self._recovered.get((spec[2], spec[4]))
        if entry is None or entry.get("seed") != spec[5]:
            return None
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            return None
        try:
            metrics = {str(k): float(v) for k, v in metrics.items()}
        except (TypeError, ValueError):
            return None
        return TrialRecord(point_index=spec[1], point_key=spec[2],
                           params=spec[3], trial=spec[4], seed=spec[5],
                           metrics=metrics, telemetry=entry.get("telemetry"),
                           trace=entry.get("trace"))

    def _decide(self, pending: List[Spec],
                emit: Callable[[TrialRecord], None]) -> List[Spec]:
        """Fix the executor choice; returns the specs still to run
        (adaptive mode consumes the first one as its timing probe)."""
        runner = self._runner
        cap = runner._workers if runner._workers is not None \
            else (os.cpu_count() or 1)
        if cap <= 1 or runner._executor == "serial" or len(pending) == 1:
            self._choice = ExecutorChoice("serial", 1)
            return pending
        if runner._executor in ("threads", "processes"):
            # Forced executors honour the explicit worker count (capped
            # only by the amount of work there is to share).
            workers = max(1, min(cap, len(pending)))
            self._choice = ExecutorChoice(runner._executor, workers)
            return pending
        started = time.perf_counter()
        emit(execute_spec(pending[0]))
        per_spec_s = time.perf_counter() - started
        self._choice = choose_executor(per_spec_s, len(pending) - 1, cap)
        logger.debug("campaign %r: calibration probe %.3gs/trial -> %s",
                     self._name, per_spec_s, self._choice.mode)
        return pending[1:]

    def _dispatch(self, pending: List[Spec],
                  emit: Callable[[TrialRecord], None]) -> None:
        if not pending:
            return
        choice = self._choice
        assert choice is not None
        if choice.kind == "threads":
            run_threads(pending, choice.workers, self._runner._chunk_size,
                        emit)
            return
        if choice.kind == "processes":
            if run_processes(pending, choice.workers,
                             self._runner._chunk_size, emit) is not None:
                return
            # Unpicklable specs or no process support: the serial path
            # gives identical results, only slower.
            self._choice = ExecutorChoice("serial", 1)
        run_serial(pending, emit)

    def _tick(self) -> None:
        self._completed += 1
        if self._progress is None:
            return
        elapsed = time.monotonic() - self._started
        remaining = self._total - self._completed
        eta = (elapsed / self._completed * remaining
               if self._completed else None)
        self._progress(CampaignProgress(
            name=self._name, completed=self._completed, total=self._total,
            elapsed_s=elapsed, eta_s=eta))


class CampaignRunner:
    """Run every trial of a parameter grid and aggregate the results.

    :param trial_fn: module-level callable ``(params, seed) -> metrics``.
        A scalar return value becomes the metric ``"value"``.
    :param trials_per_point: how many independently seeded trials to run
        at each grid point. With ``adaptive`` set this is a *floor*
        (effective minimum 2 — variance needs two samples).
    :param base_seed: root of the per-trial seed derivation.
    :param workers: worker budget. ``None`` uses ``os.cpu_count()``;
        ``0`` or ``1`` forces the serial path; an explicit count is
        honoured by the forced executors and treated as a cap by the
        adaptive one (which also never exceeds the machine's cores).
    :param executor: ``"adaptive"`` (default: measure the first trial,
        then pick serial / threads / processes — see
        :func:`repro.campaign.executors.choose_executor`), or force
        ``"serial"``, ``"threads"`` or ``"processes"``. All modes
        produce bit-identical records.
    :param chunk_size: trials per work unit handed to a worker. Defaults
        to spreading the specs roughly four chunks per worker, so slow
        grid points do not serialise the whole campaign behind them.
    :param confidence: confidence level for aggregate intervals (and
        for ``adaptive``'s convergence test).
    :param adaptive: an :class:`~repro.campaign.sampling.AdaptiveSampling`
        policy, or ``None`` for the classic fixed trial count.
    :param include_telemetry: export each trial's registry snapshot
        (when the trial function attaches one) into the aggregated
        result and its JSON — see ``Aggregator``.
    :param include_traces: run each trial under a per-trial
        :class:`~repro.telemetry.Tracer` and export the trace snapshot
        into the record, the aggregated result and its JSON. Traces are
        deterministic (virtual timestamps, counter span IDs) so all
        executors produce identical ones.
    :param trace_sample: head-sampling rate for traced runs — the
        fraction of ``(point, trial)`` identities that actually carry a
        tracer (default 1.0, everything). Sampling is keyed on the same
        identity as the seeds, so it is stable across executors,
        resumes and cache hits; sampled-out trials run tracer-free at
        zero cost.
    :param name: campaign label carried into the result/JSON.
    :param cache_dir: directory for content-hashed result caching; when
        set, rerunning an identical campaign loads its records instead
        of recomputing them.
    :param cache_max_bytes: size cap on ``cache_dir``. After each cache
        write, least-recently-used entries (by mtime; cache hits touch
        their file; the entry just written is exempt) are evicted until
        the directory fits. ``None`` disables the sweep.
    :param journal_dir: directory for per-campaign completion journals;
        when set, an interrupted campaign resumes where it stopped on
        the next run — see :mod:`repro.campaign.journal`.
    :param on_progress: default progress callback (see
        :class:`CampaignProgress`); :meth:`run` can override per run.
    """

    #: Default cache size cap: plenty for every stock benchmark's
    #: records while keeping an unattended results/.cache bounded.
    DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024

    def __init__(self, trial_fn: TrialFn, *, trials_per_point: int = 1,
                 base_seed: int = 0, workers: Optional[int] = None,
                 executor: str = "adaptive",
                 chunk_size: Optional[int] = None,
                 confidence: float = 0.95,
                 adaptive: Optional[AdaptiveSampling] = None,
                 include_telemetry: bool = False,
                 include_traces: bool = False, trace_sample: float = 1.0,
                 name: str = "campaign",
                 cache_dir: "Optional[Path | str]" = None,
                 cache_max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
                 journal_dir: "Optional[Path | str]" = None,
                 on_progress: Optional[ProgressCallback] = None) -> None:
        if trials_per_point < 1:
            raise ValueError("trials_per_point must be >= 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, "
                             f"got {executor!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_max_bytes is not None and cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be >= 1 (or None)")
        if adaptive is not None and not isinstance(adaptive, AdaptiveSampling):
            raise TypeError("adaptive must be an AdaptiveSampling (or None)")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {trace_sample}")
        self._trial_fn = trial_fn
        self._trials_per_point = trials_per_point
        self._base_seed = int(base_seed)
        self._workers = workers
        self._executor = executor
        self._chunk_size = chunk_size
        self._confidence = confidence
        self._adaptive = adaptive
        self._include_telemetry = include_telemetry
        self._include_traces = include_traces
        self._trace_sample = float(trace_sample)
        self._name = name
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._cache_max_bytes = cache_max_bytes
        self._journal_dir = (Path(journal_dir) if journal_dir is not None
                             else None)
        self._on_progress = on_progress
        if adaptive is not None and adaptive.max_trials < self._floor:
            raise ValueError(
                f"adaptive.max_trials ({adaptive.max_trials}) is below the "
                f"per-point floor ({self._floor})")

    @property
    def _floor(self) -> int:
        """Trials every point starts with. Adaptive sampling needs two
        samples before a variance estimate exists, hence the minimum."""
        if self._adaptive is not None:
            return max(self._trials_per_point, 2)
        return self._trials_per_point

    # ------------------------------------------------------------------
    # Spec expansion.
    # ------------------------------------------------------------------

    def specs(self, grid: ParameterGrid) -> List[Spec]:
        """Every base (point, trial) pair in deterministic expansion
        order (the floor only — adaptive rounds extend this)."""
        return self._base_specs(grid.points())

    def _base_specs(self, points: List[GridPoint]) -> List[Spec]:
        return [self._make_spec(point, trial)
                for point in points
                for trial in range(self._floor)]

    def _make_spec(self, point: GridPoint, trial: int) -> Spec:
        trial_fn = self._trial_fn
        if self._include_traces:
            trial_fn = TracedTrial(trial_fn, point.key, trial,
                                   self._trace_sample)
        return (trial_fn, point.index, point.key, point.params,
                trial, trial_seed(self._base_seed, point.key, trial))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, grid: ParameterGrid,
            on_progress: Optional[ProgressCallback] = None) -> CampaignResult:
        """Execute the campaign and return its aggregated result.

        With ``cache_dir`` configured, an identical earlier run is
        served from its cache file (``mode == "cached"``) instead of
        recomputing anything; with ``journal_dir`` configured, an
        earlier *interrupted* run is resumed instead of restarted.
        """
        progress = on_progress or self._on_progress
        points = grid.points()
        specs = self._base_specs(points)
        name = grid.name or self._name
        fingerprint = self._fingerprint(name, specs)
        cache_path = self._cache_path(name, fingerprint)

        cached = self._load_cache(cache_path, specs, points)
        if cached is not None:
            logger.info("campaign %r: cache hit (%d records at %s); "
                        "skipping execution", name, len(cached), cache_path)
            self._touch_cache(cache_path)
            if progress is not None:
                progress(CampaignProgress(name=name, completed=len(cached),
                                          total=len(cached), elapsed_s=0.0,
                                          eta_s=0.0, cached=True))
            return self._finalise(name, cached, mode="cached")

        journal = None
        recovered: Dict[Tuple[str, int], Any] = {}
        if self._journal_dir is not None:
            journal = CampaignJournal(
                journal_path(self._journal_dir, name, fingerprint))
            recovered = journal.recover()

        execution = _Execution(self, name, journal, recovered, progress)
        try:
            records = execution.run_specs(specs)
            if self._adaptive is not None:
                records = self._adaptive_rounds(points, records, execution)
        finally:
            if journal is not None:
                journal.close()
        if all(record.error is None for record in records):
            self._write_cache(cache_path, records)
            if journal is not None:
                journal.discard()
        # A sweep with crashed trials keeps its journal and writes no
        # cache: the next run resumes the successful records and
        # re-executes exactly the failed identities.
        return self._finalise(name, records, mode=execution.mode,
                              resumed=execution.resumed)

    def _adaptive_rounds(self, points: List[GridPoint],
                         records: List[TrialRecord],
                         execution: _Execution) -> List[TrialRecord]:
        """Keep adding trials to unconverged points until every point's
        CI is narrow enough or its ``max_trials`` budget is spent.

        Deterministic end to end: the decision to add trials depends
        only on the records, which depend only on the seeds — so serial,
        threaded, process and resumed runs all expand (and record) the
        exact same trial set.
        """
        adaptive = self._adaptive
        assert adaptive is not None
        stats: Dict[str, Dict[str, RunningStats]] = {}
        trials_done: Dict[str, int] = {}

        def fold(record: TrialRecord) -> None:
            trials_done[record.point_key] = \
                trials_done.get(record.point_key, 0) + 1
            per_metric = stats.setdefault(record.point_key, {})
            for metric, value in record.metrics.items():
                per_metric.setdefault(metric, RunningStats()).add(value)

        for record in records:
            fold(record)
        while True:
            requests: List[Spec] = []
            for point in points:
                done = trials_done.get(point.key, 0)
                if done >= adaptive.max_trials:
                    continue
                if self._converged(stats.get(point.key, {}), done):
                    continue
                batch = adaptive.next_batch(done)
                requests.extend(self._make_spec(point, trial)
                                for trial in range(done, done + batch))
            if not requests:
                break
            fresh = execution.run_specs(requests)
            records.extend(fresh)
            for record in fresh:
                fold(record)
        # Canonical record order: base specs land point-major already;
        # adaptive rounds interleave, so normalise before aggregation —
        # every mode folds the same records in the same order.
        records.sort(key=lambda record: (record.point_index, record.trial))
        return records

    def _converged(self, per_metric: Mapping[str, RunningStats],
                   done: int) -> bool:
        """Whether a point's CI is already narrow enough to stop."""
        adaptive = self._adaptive
        assert adaptive is not None
        if done < 2:
            return False
        if adaptive.metric is not None:
            watched = per_metric.get(adaptive.metric)
            if watched is None:      # point never reports it: nothing to do
                return True
            return watched.ci_width(self._confidence) <= adaptive.ci_width
        return all(stats.ci_width(self._confidence) <= adaptive.ci_width
                   for stats in per_metric.values())

    def _finalise(self, name: str, records: List[TrialRecord],
                  mode: str, resumed: int = 0) -> CampaignResult:
        aggregator = Aggregator(confidence=self._confidence,
                                include_telemetry=self._include_telemetry,
                                include_traces=self._include_traces)
        aggregator.extend(records)
        return CampaignResult(
            name=name, base_seed=self._base_seed,
            trials_per_point=self._trials_per_point, mode=mode,
            records=records, summaries=aggregator.summaries(),
            executor=self._executor, resumed=resumed,
            failed=sum(1 for record in records if record.error is not None))

    # ------------------------------------------------------------------
    # Content-hash result caching.
    # ------------------------------------------------------------------

    def _fingerprint(self, name: str, specs: List[Spec]) -> str:
        """Content hash of everything that determines the records.

        Covers the whole ``repro`` source tree (a trial function's
        results depend on the entire simulation stack beneath it, so
        *any* code edit must invalidate the cache), the trial function's
        identity, the statistics and sampling configuration, and every
        base spec's identity — point key, canonical parameter rendering,
        trial index and derived seed (which folds in the base seed).
        The executor and worker count are deliberately excluded: they
        cannot change the records.

        Known limits: helpers a trial function calls *outside* the
        ``repro`` tree are only covered through the function's own
        source, and the tree hash is memoised per process — keep trial
        logic inside ``repro`` (all stock trials are) and don't edit
        sources mid-run if you rely on invalidation.
        """
        try:
            fn_identity = inspect.getsource(self._trial_fn)
        except (OSError, TypeError):
            fn_identity = repr(self._trial_fn)
        hasher = hashlib.sha256()
        adaptive = self._adaptive
        payload = {
            "name": name,
            "code": _source_tree_fingerprint(),
            "trial_fn": f"{getattr(self._trial_fn, '__module__', '?')}."
                        f"{getattr(self._trial_fn, '__qualname__', '?')}",
            "source": fn_identity,
            "confidence": self._confidence,
            "adaptive": ([adaptive.max_trials, adaptive.ci_width,
                          adaptive.metric] if adaptive is not None else None),
            # Tracing changes record *content* (unlike the executor or
            # worker count), so traced and untraced runs must not share
            # a cache entry or a journal.
            "traces": ([self._trace_sample]
                       if self._include_traces else None),
            "specs": [
                [key, trial, seed,
                 repr(sorted(params.items(), key=lambda kv: kv[0]))]
                for _, _, key, params, trial, seed in specs
            ],
        }
        hasher.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
        return hasher.hexdigest()

    def _cache_path(self, name: str, fingerprint: str) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        return self._cache_dir / f"{safe}-{fingerprint[:16]}.json"

    def _load_cache(self, cache_path: Optional[Path], specs: List[Spec],
                    points: List[GridPoint]) -> Optional[List[TrialRecord]]:
        """Rehydrate records from a cache file, or ``None`` on any
        mismatch (missing file, corrupt JSON, changed specs)."""
        if cache_path is None or not cache_path.exists():
            return None
        try:
            payload = json.loads(cache_path.read_text())
            by_identity: Dict[Tuple[str, int], Dict[str, Any]] = {
                (entry["point_key"], entry["trial"]): entry
                for entry in payload["records"]
            }
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if self._adaptive is not None:
            return self._load_adaptive_cache(by_identity, points)
        records = []
        for _, point_index, key, params, trial, seed in specs:
            record = self._rehydrate(by_identity.get((key, trial)),
                                     point_index, key, params, trial, seed)
            if record is None:
                return None
            records.append(record)
        return records

    def _load_adaptive_cache(
            self, by_identity: Dict[Tuple[str, int], Dict[str, Any]],
            points: List[GridPoint]) -> Optional[List[TrialRecord]]:
        """Adaptive campaigns cache a *variable* number of trials per
        point. The cached set is trusted iff each point's trials are
        contiguous from 0, within ``[floor, max_trials]``, and every
        seed matches its derivation — determinism guarantees a re-run
        would reproduce exactly that set."""
        adaptive = self._adaptive
        assert adaptive is not None
        records = []
        for point in points:
            trials = sorted(trial for key, trial in by_identity
                            if key == point.key)
            count = len(trials)
            if (count < self._floor or count > adaptive.max_trials
                    or trials != list(range(count))):
                return None
            for trial in trials:
                record = self._rehydrate(
                    by_identity[(point.key, trial)], point.index, point.key,
                    point.params, trial,
                    trial_seed(self._base_seed, point.key, trial))
                if record is None:
                    return None
                records.append(record)
        return records

    @staticmethod
    def _rehydrate(entry: Optional[Dict[str, Any]], point_index: int,
                   key: str, params: Mapping[str, Any], trial: int,
                   seed: int) -> Optional[TrialRecord]:
        """One cached/journaled entry as a live record (live params, so
        Python types survive the JSON round trip), or ``None``."""
        if entry is None or entry.get("seed") != seed:
            return None
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            return None
        return TrialRecord(
            point_index=point_index, point_key=key, params=params,
            trial=trial, seed=seed,
            metrics={str(k): float(v) for k, v in metrics.items()},
            telemetry=entry.get("telemetry"), trace=entry.get("trace"))

    def _write_cache(self, cache_path: Optional[Path],
                     records: List[TrialRecord]) -> None:
        if cache_path is None:
            return
        from repro.campaign.aggregate import json_value

        payload = {
            # Self-description: each record carries its parameters
            # (specs render as their full nested dict), so a cache file
            # alone says exactly which worlds produced it.  Only
            # point_key/trial/seed/metrics/telemetry are read back.
            "records": [
                {"point_key": record.point_key, "trial": record.trial,
                 "seed": record.seed, "metrics": dict(record.metrics),
                 "params": {name: json_value(value)
                            for name, value in record.params.items()},
                 **({"telemetry": record.telemetry}
                    if record.telemetry is not None else {}),
                 **({"trace": record.trace}
                    if record.trace is not None else {})}
                for record in records
            ],
        }
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(json.dumps(payload, sort_keys=True))
        except OSError:  # caching is best-effort, never fatal
            logger.warning("campaign cache write failed at %s", cache_path)
            return
        self._sweep_cache(protect=cache_path)

    @staticmethod
    def _touch_cache(cache_path: Optional[Path]) -> None:
        """Refresh a hit entry's mtime so the LRU sweep keeps it."""
        if cache_path is None:
            return
        try:
            os.utime(cache_path, None)
        except OSError:
            pass

    def _sweep_cache(self, protect: Optional[Path] = None) -> None:
        """Evict least-recently-used cache files above the size cap.

        mtime is the recency signal: writes create files and hits touch
        them, so eviction order tracks actual use. Ties break on name
        for determinism. ``protect`` (the entry this sweep is running
        on behalf of) is always exempt — without it, a single entry
        larger than the cap would evict *itself* immediately after
        being written, turning every run into a write/evict loop.
        Best-effort like the rest of the cache — a vanished file
        (concurrent campaign) is simply skipped.
        """
        if self._cache_dir is None or self._cache_max_bytes is None:
            return
        entries = []
        for path in self._cache_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        total = sum(size for _, _, size, _ in entries)
        if total <= self._cache_max_bytes:
            return
        for _, _, size, path in sorted(entries):
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            logger.info(
                "campaign cache: evicted %s (%d bytes, LRU sweep; "
                "%d bytes still cached, cap %d)",
                path, size, total, self._cache_max_bytes)
            if total <= self._cache_max_bytes:
                return
