"""Campaign engine: declarative parallel scenario sweeps.

The paper's results are all parameter sweeps; this package turns each
one into three declarative pieces instead of a hand-rolled nested loop:

* a :class:`ParameterGrid` naming the axes (presets × attacks × pool
  sizes × resolver configurations × dual-stack families, ...);
* a picklable trial function ``(params, seed) -> metrics`` — stock ones
  for end-to-end pool generation and the §III Monte-Carlos are provided;
* a :class:`CampaignRunner` that executes the trials on an adaptively
  chosen executor (serial / thread pool / process pool, picked from a
  measured per-trial cost) with deterministic per-trial seeds derived
  from :func:`repro.util.rng.derive_seed`, journals completions so
  killed sweeps resume (``journal_dir=``), optionally concentrates the
  trial budget on high-variance points (:class:`AdaptiveSampling`),
  and an :class:`Aggregator` that folds the records into
  :class:`repro.util.stats.RunningStats` summaries with confidence
  intervals and JSON export.

Serial, threaded and multiprocessing executions of the same campaign
are bit-identical: seeds depend only on ``(base_seed, point key, trial
index)`` and records are folded in grid order in every mode.

Quick start::

    from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

    grid = ParameterGrid({"num_providers": (3, 5, 9),
                          "corrupted": (0, 1, 2)},
                         fixed={"pool_size": 40,
                                "forged": ("203.0.113.1",)},
                         name="share-sweep").where(
        lambda p: p["corrupted"] <= p["num_providers"])
    result = CampaignRunner(pool_attack_trial, trials_per_point=3,
                            base_seed=7).run(grid)
    result.metric("attacker_share", num_providers=3, corrupted=1).mean
"""

from repro.analysis.montecarlo import (
    attack_probability_trial,
    pool_fraction_trial,
)
from repro.campaign.aggregate import (
    Aggregator,
    CampaignResult,
    MetricSummary,
    PointSummary,
    TrialRecord,
)
from repro.campaign.executors import ExecutorChoice, choose_executor
from repro.campaign.grid import GridPoint, ParameterGrid, point_key
from repro.campaign.journal import CampaignJournal, journal_path
from repro.campaign.runner import CampaignProgress, CampaignRunner, trial_seed
from repro.campaign.sampling import AdaptiveSampling
from repro.campaign.trials import (
    advantage_bits_trial,
    build_scenario,
    chaos_trial,
    figure1_system_trial,
    hierarchy_trial,
    offpath_spray_trial,
    overhead_trial,
    pool_attack_trial,
    population_trial,
    spec_trial,
    timeshift_trial,
)

__all__ = [
    "AdaptiveSampling",
    "Aggregator",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignResult",
    "CampaignRunner",
    "ExecutorChoice",
    "GridPoint",
    "MetricSummary",
    "ParameterGrid",
    "PointSummary",
    "TrialRecord",
    "advantage_bits_trial",
    "attack_probability_trial",
    "build_scenario",
    "chaos_trial",
    "choose_executor",
    "figure1_system_trial",
    "hierarchy_trial",
    "journal_path",
    "offpath_spray_trial",
    "overhead_trial",
    "point_key",
    "pool_attack_trial",
    "pool_fraction_trial",
    "population_trial",
    "spec_trial",
    "timeshift_trial",
    "trial_seed",
]
