"""Per-point completion journal: campaigns that survive being killed.

A :class:`CampaignJournal` is an append-only JSONL file recording every
finished trial of one campaign *while it runs* — one line per record,
flushed as it lands — keyed on disk by the same content-hash
fingerprint the result cache uses (``<name>-<fingerprint16>.jsonl``).
A killed sweep therefore restarts where it stopped: on the next run the
runner recovers the journal, skips every recovered ``(point key,
trial)`` identity, and executes only what is missing. Because per-trial
seeds derive from that identity — never from execution order — the
resumed campaign's records are bit-identical to an uninterrupted run's.

The journal's lifecycle brackets the result cache's: it exists only
while its campaign is incomplete. A run that finishes writes the cache
entry and deletes its journal; a fingerprint change (code edit, grid
change, different base seed) changes the journal *filename*, so a stale
journal can never leak records into a different campaign. A trailing
line cut short by the kill simply fails to parse and is dropped — the
trial it described re-runs.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, IO, Optional, Tuple

from repro.campaign.aggregate import TrialRecord

logger = logging.getLogger("repro.campaign")

#: One recovered journal entry, pre-validation: the raw dict of a line.
Entry = Dict[str, Any]


def journal_path(journal_dir: Path, name: str, fingerprint: str) -> Path:
    """Where the journal for campaign ``name``/``fingerprint`` lives."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return journal_dir / f"{safe}-{fingerprint[:16]}.jsonl"


class CampaignJournal:
    """Append-only completion journal for one campaign fingerprint."""

    def __init__(self, path: Path) -> None:
        self._path = path
        self._handle: Optional[IO[str]] = None

    @property
    def path(self) -> Path:
        return self._path

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def recover(self) -> Dict[Tuple[str, int], Entry]:
        """Entries from a previous interrupted run, latest line wins.

        Lines that fail to parse (the torn tail of a killed write) or
        lack the identity fields are dropped; the runner re-validates
        each entry's seed against its own derivation before trusting it.
        """
        if not self._path.exists():
            return {}
        recovered: Dict[Tuple[str, int], Entry] = {}
        try:
            text = self._path.read_text()
        except OSError:
            return {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                identity = (str(entry["point_key"]), int(entry["trial"]))
                int(entry["seed"])
                if not isinstance(entry["metrics"], dict):
                    continue
            except (ValueError, KeyError, TypeError):
                continue
            recovered[identity] = entry
        if recovered:
            logger.info("campaign journal: recovered %d completed trial(s) "
                        "from %s", len(recovered), self._path)
        return recovered

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------

    def append(self, record: TrialRecord) -> None:
        """Journal one finished trial (flushed so a kill loses at most
        the in-flight line). Best-effort like the result cache — an
        unwritable journal degrades to a non-resumable campaign."""
        entry = {"point_key": record.point_key, "trial": record.trial,
                 "seed": record.seed, "metrics": dict(record.metrics)}
        if record.telemetry is not None:
            entry["telemetry"] = record.telemetry
        if record.trace is not None:
            entry["trace"] = record.trace
        try:
            if self._handle is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self._path.open("a")
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError:
            logger.warning("campaign journal write failed at %s", self._path)
            self.close()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def discard(self) -> None:
        """Delete the journal — its campaign completed (the result
        cache, when configured, now owns the records)."""
        self.close()
        try:
            self._path.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            logger.warning("campaign journal: could not remove %s",
                           self._path)
