"""On-path (MitM) attackers controlling a subset of links.

The paper's realistic adversary "can control some of the servers and
some of the links in the Internet but not all". An
:class:`OnPathAttacker` owns a set of link names and derives its
capabilities mechanically from what crosses them:

* plaintext DNS: read, drop, delay, or *rewrite* responses — full
  poisoning power over controlled paths;
* TLS records: the ciphertext is opaque and MAC-protected, so the only
  available actions are dropping and delaying (observable as DoS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.dns.message import Message, ResourceRecord, make_response
from repro.dns.name import Name
from repro.dns.rdata import address_rdata
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.netsim.address import IPAddress
from repro.netsim.internet import Internet, TapAction
from repro.netsim.link import Link
from repro.netsim.packet import Datagram


@dataclass
class MitmStats:
    packets_observed: int = 0
    dns_responses_rewritten: int = 0
    packets_dropped: int = 0
    tls_records_seen: int = 0


class OnPathAttacker:
    """Controls the given links; capabilities are per-packet.

    :param internet: the network to tap.
    :param links: canonical link names ("a--b") under attacker control.
    """

    def __init__(self, internet: Internet, links: Sequence[str]) -> None:
        self._internet = internet
        self._links = list(links)
        self._stats = MitmStats()
        self._dns_rewrites: List[Callable[[Message, Datagram], Optional[Message]]] = []
        self._drop_tls = False
        self._tls_delay = 0.0
        self._drop_all = False
        for link_name in self._links:
            internet.add_tap(link_name, self._tap)

    @property
    def stats(self) -> MitmStats:
        return self._stats

    @property
    def links(self) -> List[str]:
        return list(self._links)

    # ------------------------------------------------------------------
    # Capability configuration.
    # ------------------------------------------------------------------

    def poison_a_records(self, qname: "Name | str",
                         forged_addresses: Sequence["IPAddress | str"],
                         inflate_to: Optional[int] = None) -> None:
        """Rewrite every plaintext DNS response for ``qname``/A crossing
        a controlled link to carry the forged addresses.

        :param inflate_to: if set, pad the answer to this many records
            by repeating forged addresses (the over-population attack).
        """
        target = Name(qname)
        addresses = [IPAddress(a) for a in forged_addresses]

        def rewrite(message: Message, datagram: Datagram) -> Optional[Message]:
            if not message.is_response or len(message.questions) != 1:
                return None
            question = message.questions[0]
            if question.qname != target or question.qtype is not RRType.A:
                return None
            chosen = list(addresses)
            if inflate_to is not None:
                while len(chosen) < inflate_to:
                    chosen.append(addresses[len(chosen) % len(addresses)])
            answers = [
                ResourceRecord(question.qname, RRType.A, 86_400,
                               address_rdata(address))
                for address in chosen
            ]
            forged = make_response(message, answers=answers,
                                   authoritative=message.flags.aa,
                                   recursion_available=message.flags.ra)
            return forged

        self._dns_rewrites.append(rewrite)

    def empty_a_answers(self, qname: "Name | str") -> None:
        """Rewrite responses for ``qname``/A to carry zero answers —
        the empty-answer DoS of §II footnote 2."""
        target = Name(qname)

        def rewrite(message: Message, datagram: Datagram) -> Optional[Message]:
            if not message.is_response or len(message.questions) != 1:
                return None
            question = message.questions[0]
            if question.qname != target or question.qtype is not RRType.A:
                return None
            return make_response(message, answers=[],
                                 authoritative=message.flags.aa,
                                 recursion_available=message.flags.ra)

        self._dns_rewrites.append(rewrite)

    def block_tls(self, enabled: bool = True) -> None:
        """Drop every TLS record crossing controlled links (DoS)."""
        self._drop_tls = enabled

    def delay_tls(self, seconds: float) -> None:
        """Hold TLS records back by ``seconds`` (degradation, not DoS)."""
        self._tls_delay = seconds

    def block_everything(self, enabled: bool = True) -> None:
        """Full blackhole of controlled links."""
        self._drop_all = enabled

    # ------------------------------------------------------------------
    # The tap.
    # ------------------------------------------------------------------

    def _tap(self, link: Link, datagram: Datagram) -> TapAction:
        self._stats.packets_observed += 1
        if self._drop_all:
            self._stats.packets_dropped += 1
            return TapAction.drop()

        if self._looks_like_tls(datagram):
            self._stats.tls_records_seen += 1
            if self._drop_tls:
                self._stats.packets_dropped += 1
                return TapAction.drop()
            if self._tls_delay > 0:
                return TapAction.rewrite(datagram.payload,
                                         extra_delay=self._tls_delay)
            return TapAction.passthrough()

        if self._dns_rewrites:
            try:
                message = Message.decode(datagram.payload)
            except WireFormatError:
                return TapAction.passthrough()
            for rewrite in self._dns_rewrites:
                forged = rewrite(message, datagram)
                if forged is not None:
                    self._stats.dns_responses_rewritten += 1
                    return TapAction.rewrite(forged.encode())
        return TapAction.passthrough()

    @staticmethod
    def _looks_like_tls(datagram: Datagram) -> bool:
        """Traffic classification, the way real middleboxes do it: by
        transport port. HTTPS/DoH traffic involves port 443."""
        return datagram.dst.port == 443 or datagram.src.port == 443