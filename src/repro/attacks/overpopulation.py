"""The over-population attack ([1] against Chronos) and its defence.

The move: the attacker answers the pool query with *many* addresses —
far more than pool.ntp.org's usual four — so that even if the client
also hears honest answers, attacker addresses dominate the combined
pool and Chronos's honest-majority assumption breaks.

The paper's counter (§II footnote 2) is shortest-list truncation: a
resolver can only ever contribute K = min-length addresses, so inflating
an answer changes nothing. This module packages the attack so E5 can
run it against both the paper's policy and the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.policy import TruncationPolicy
from repro.core.pool import GeneratedPool, PoolGeneratorConfig
from repro.netsim.address import IPAddress
from repro.scenarios import PoolScenario


@dataclass
class OverPopulationResult:
    """Composition of the pool under the attack."""

    pool: GeneratedPool
    attacker_addresses: List[IPAddress]
    attacker_fraction: float
    truncation: TruncationPolicy

    @property
    def attacker_controls_majority(self) -> bool:
        return self.attacker_fraction > 0.5


class OverPopulationAttack:
    """Run the inflation attack through ``corrupted`` of N resolvers.

    :param scenario: the Figure 1 world.
    :param corrupted: how many providers the attacker controls.
    :param inflate_to: answer-list length the corrupted providers use
        (honest ones return the pool's usual rotation size).
    :param attacker_addresses: the malicious server addresses injected.
    """

    def __init__(self, scenario: PoolScenario, corrupted: int,
                 inflate_to: int = 20,
                 attacker_addresses: Sequence["IPAddress | str"] = ()) -> None:
        if corrupted < 1:
            raise ValueError("over-population needs ≥ 1 corrupted resolver")
        self._scenario = scenario
        self._attacker_addresses = ([IPAddress(a) for a in attacker_addresses]
                                    or [IPAddress(f"203.0.113.{i + 1}")
                                        for i in range(8)])
        config = CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.INFLATE,
            forged_addresses=self._attacker_addresses,
            inflate_to=inflate_to,
        )
        self._engines = corrupt_first_k(scenario.providers, corrupted, config)

    @property
    def attacker_addresses(self) -> List[IPAddress]:
        return list(self._attacker_addresses)

    def run(self, truncation: TruncationPolicy) -> OverPopulationResult:
        """Generate a pool under the attack with the given policy."""
        generator = self._scenario.make_generator(
            config=PoolGeneratorConfig(truncation=truncation))
        pool = self._scenario.generate_pool_sync(generator)
        attacker_set = set(self._attacker_addresses)
        if pool.addresses:
            fraction = (sum(1 for a in pool.addresses if a in attacker_set)
                        / len(pool.addresses))
        else:
            fraction = 0.0
        return OverPopulationResult(pool=pool,
                                    attacker_addresses=self.attacker_addresses,
                                    attacker_fraction=fraction,
                                    truncation=truncation)
