"""Compromised DoH providers.

The paper's assumption is that the attacker corrupts *up to* a fraction
``1 - x`` of the trusted resolvers. A compromised provider still speaks
perfect TLS with its genuine certificate — the corruption is behind the
API: its answers for targeted names are attacker-chosen.

``compromise_provider`` swaps the provider's recursion engine for a
:class:`_MaliciousResolver` wrapper; everything else (the DoH front-end,
the TLS identity) stays untouched, which is what makes the attack
invisible to the transport layer and why only majority logic can defeat
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.resolverset import ResolverRef
from repro.dns.message import Message, Question, ResourceRecord
from repro.dns.name import Name
from repro.dns.rdata import address_rdata
from repro.dns.resolver import RecursiveResolver, ResolveOutcome, ResolveStatus
from repro.dns.rrtype import RRType
from repro.doh.providers import ProviderDeployment
from repro.netsim.address import IPAddress


class CompromisedResolverBehavior(enum.Enum):
    """What the corrupted provider does to targeted lookups."""

    SUBSTITUTE = "substitute"     # answer with attacker addresses
    INFLATE = "inflate"           # attacker addresses, many of them ([1])
    EMPTY = "empty"               # zero-record NOERROR (fn.2 DoS)
    TRUTHFUL = "truthful"         # behave (e.g. while evading detection)


@dataclass
class CompromiseConfig:
    """Attack parameters for one compromised provider."""

    target: Name
    behavior: CompromisedResolverBehavior
    forged_addresses: List[IPAddress] = field(default_factory=list)
    inflate_to: int = 20
    ttl: int = 86_400

    def __post_init__(self) -> None:
        self.target = Name(self.target)
        self.forged_addresses = [IPAddress(a) for a in self.forged_addresses]
        needs_addresses = self.behavior in (
            CompromisedResolverBehavior.SUBSTITUTE,
            CompromisedResolverBehavior.INFLATE)
        if needs_addresses and not self.forged_addresses:
            raise ValueError(
                f"{self.behavior.value} behaviour needs forged addresses")


class _MaliciousResolver:
    """Duck-typed stand-in for :class:`RecursiveResolver`.

    Honest lookups are delegated to the provider's original engine, so
    the compromise is *selective* — exactly what a stealthy attacker
    (or a coerced operator) would deploy.
    """

    def __init__(self, genuine: RecursiveResolver,
                 config: CompromiseConfig) -> None:
        self._genuine = genuine
        self._config = config
        self.poisoned_answers = 0

    # The DoH server only uses .resolve(); keep the surface minimal.
    def resolve(self, qname, qtype, callback) -> None:
        qname = Name(qname)
        config = self._config
        is_target = (qname == config.target
                     and qtype in (RRType.A, RRType.AAAA)
                     and config.behavior
                     is not CompromisedResolverBehavior.TRUTHFUL)
        if not is_target:
            self._genuine.resolve(qname, qtype, callback)
            return
        self.poisoned_answers += 1
        if config.behavior is CompromisedResolverBehavior.EMPTY:
            callback(ResolveOutcome(status=ResolveStatus.NODATA))
            return
        addresses = list(config.forged_addresses)
        if config.behavior is CompromisedResolverBehavior.INFLATE:
            # Exactly inflate_to records: repeat the attacker's servers
            # as needed, or trim if it owns more than it wants to show.
            addresses = addresses[:config.inflate_to]
            while len(addresses) < config.inflate_to:
                addresses.append(
                    config.forged_addresses[len(addresses)
                                            % len(config.forged_addresses)])
        wanted_family = 4 if qtype is RRType.A else 6
        records = [
            ResourceRecord(qname, qtype, config.ttl, address_rdata(address))
            for address in addresses if address.family == wanted_family
        ]
        if not records:
            # The attacker holds no servers in this address family, so
            # lying here would only produce a conspicuous empty answer;
            # a stealthy compromise answers truthfully instead (this is
            # the per-family poisoning case of §II footnote 1 / E9).
            self.poisoned_answers -= 1
            self._genuine.resolve(qname, qtype, callback)
            return
        callback(ResolveOutcome(status=ResolveStatus.SUCCESS,
                                records=records))


def compromise_provider(deployment: ProviderDeployment,
                        config: CompromiseConfig) -> _MaliciousResolver:
    """Corrupt one deployed provider in place.

    Returns the malicious engine (exposes ``poisoned_answers`` for
    experiment accounting).
    """
    malicious = _MaliciousResolver(deployment.resolver, config)
    # Hook every interface the provider serves: the DoH front-end's
    # resolver reference (when one is deployed) and the recursion engine
    # behind the provider's plain-DNS port (population-scale clients
    # query the latter).
    if deployment.doh_server is not None:
        deployment.doh_server._resolver = malicious  # noqa: SLF001 - attack model
    deployment.resolver.serve_engine = malicious
    return malicious


def corrupt_first_k(providers: Sequence[ProviderDeployment], k: int,
                    config: CompromiseConfig) -> List[_MaliciousResolver]:
    """Corrupt ``k`` of the given providers (deterministically the first
    k — which ones does not matter by symmetry)."""
    if not 0 <= k <= len(providers):
        raise ValueError(f"k must be in [0, {len(providers)}], got {k}")
    return [compromise_provider(provider, config)
            for provider in providers[:k]]
