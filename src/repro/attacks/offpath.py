"""Off-path DNS response forgery.

The attacker cannot see the resolver's query, so it must guess the
transaction ID and the ephemeral source port, and its forgeries must
arrive before the genuine answer. Everything else — the spoofed source
address, the plausible answer section — it controls freely.

The attack needs a *trigger* (the attacker makes, or predicts, a client
query so it knows roughly when the resolver's upstream query happens);
experiments model the trigger by launching the spray at resolution time.

Against a modern resolver (random 16-bit TXID × ~28k ports) a blind
burst is hopeless, which the experiments confirm; against the weakened
configurations (`ResolverConfig(txid_bits=...)`, sequential ports) that
model historical stacks, it succeeds — reproducing why [1] is a real
threat for pool generation over plain DNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.dns.message import Flags, Message, Question, ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import address_rdata
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import EPHEMERAL_RANGE
from repro.netsim.internet import Internet
from repro.netsim.packet import Datagram


@dataclass
class SprayPlan:
    """What the attacker sprays: the guess space and the lie.

    :param question: the (name, type) being poisoned.
    :param spoofed_server: the authoritative/upstream endpoint the
        forgeries claim to come from.
    :param target_ports: destination (resolver ephemeral) ports to try.
    :param txid_guesses: transaction IDs to try per port.
    :param forged_addresses: addresses the lie carries.
    :param ttl: TTL of the forged records (long = sticky poison).
    """

    question: Question
    spoofed_server: Endpoint
    target_ports: Sequence[int]
    txid_guesses: Sequence[int]
    forged_addresses: Sequence[IPAddress]
    ttl: int = 86_400

    @property
    def packet_count(self) -> int:
        return len(self.target_ports) * len(self.txid_guesses)


@dataclass
class SprayReport:
    """Accounting for one spray burst."""

    packets_injected: int = 0
    ports_covered: int = 0
    txids_covered: int = 0


class OffPathPoisoner:
    """An attacker that can inject spoofed UDP but observe nothing.

    :param internet: the network (injection entry point).
    :param injection_node: topology node the attacker sends from; it
        only affects latency, since sources are spoofed.
    """

    def __init__(self, internet: Internet, injection_node: str) -> None:
        self._internet = internet
        self._node = injection_node
        self._reports: List[SprayReport] = []

    @property
    def reports(self) -> List[SprayReport]:
        return list(self._reports)

    @property
    def total_packets_injected(self) -> int:
        return sum(report.packets_injected for report in self._reports)

    # ------------------------------------------------------------------
    # Forgery construction.
    # ------------------------------------------------------------------

    def forge_response(self, txid: int, question: Question,
                       addresses: Iterable[IPAddress],
                       ttl: int = 86_400) -> Message:
        """A NOERROR answer for the question carrying the attacker's
        addresses."""
        answers = [
            ResourceRecord(question.qname, question.qtype, ttl,
                           address_rdata(address))
            for address in addresses
        ]
        return Message(txid=txid,
                       flags=Flags(qr=True, aa=True, rcode=RCode.NOERROR),
                       questions=[question], answers=answers)

    # ------------------------------------------------------------------
    # The spray.
    # ------------------------------------------------------------------

    def spray(self, victim_address: IPAddress, plan: SprayPlan) -> SprayReport:
        """Inject the full guess burst toward ``victim_address``.

        All packets are injected at the current instant; network latency
        from the injection node determines whether they win the race
        against the genuine answer.
        """
        report = SprayReport(ports_covered=len(plan.target_ports),
                             txids_covered=len(plan.txid_guesses))
        for port in plan.target_ports:
            for txid in plan.txid_guesses:
                forged = self.forge_response(txid, plan.question,
                                             plan.forged_addresses, plan.ttl)
                datagram = Datagram(
                    src=plan.spoofed_server,
                    dst=Endpoint(victim_address, port),
                    payload=forged.encode())
                self._internet.inject(datagram, at_node=self._node)
                report.packets_injected += 1
        self._reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Guess-space helpers.
    # ------------------------------------------------------------------

    @staticmethod
    def sequential_port_guesses(window: int,
                                start: int = EPHEMERAL_RANGE[0]) -> List[int]:
        """Ports a sequential-allocation stack will use next."""
        low, high = EPHEMERAL_RANGE
        return [low + ((start - low + index) % (high - low + 1))
                for index in range(window)]

    @staticmethod
    def txid_space(bits: int) -> List[int]:
        """Every TXID of a ``bits``-wide transaction-ID space."""
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        return list(range(1 << bits))

    def poison_resolver_lookup(
        self, victim_address: IPAddress, qname: "Name | str", qtype: RRType,
        spoofed_server: Endpoint, forged_addresses: Sequence[IPAddress],
        port_window: int = 8, txid_bits: int = 16,
        port_start: Optional[int] = None,
    ) -> SprayReport:
        """Convenience wrapper: build and fire a spray for one lookup."""
        plan = SprayPlan(
            question=Question(Name(qname), qtype),
            spoofed_server=spoofed_server,
            target_ports=self.sequential_port_guesses(
                port_window,
                start=port_start if port_start is not None
                else EPHEMERAL_RANGE[0]),
            txid_guesses=self.txid_space(txid_bits),
            forged_addresses=list(forged_addresses),
        )
        return self.spray(victim_address, plan)
