"""Off-path DNS response forgery.

The attacker cannot see the resolver's query, so it must guess the
transaction ID and the ephemeral source port, and its forgeries must
arrive before the genuine answer. Everything else — the spoofed source
address, the plausible answer section — it controls freely.

The attack needs a *trigger* (the attacker makes, or predicts, a client
query so it knows roughly when the resolver's upstream query happens);
experiments model the trigger by launching the spray at resolution time.

Against a modern resolver (random 16-bit TXID × ~28k ports) a blind
burst is hopeless, which the experiments confirm; against the weakened
configurations (`ResolverConfig(txid_bits=...)`, sequential ports) that
model historical stacks, it succeeds — reproducing why [1] is a real
threat for pool generation over plain DNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.dns.message import Flags, Message, Question, ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import address_rdata
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import EPHEMERAL_RANGE
from repro.netsim.internet import Internet
from repro.netsim.packet import Datagram


@dataclass
class SprayPlan:
    """What the attacker sprays: the guess space and the lie.

    :param question: the (name, type) being poisoned.
    :param spoofed_server: the authoritative/upstream endpoint the
        forgeries claim to come from.
    :param target_ports: destination (resolver ephemeral) ports to try.
    :param txid_guesses: transaction IDs to try per port.
    :param forged_addresses: addresses the lie carries.
    :param ttl: TTL of the forged records (long = sticky poison).
    """

    question: Question
    spoofed_server: Endpoint
    target_ports: Sequence[int]
    txid_guesses: Sequence[int]
    forged_addresses: Sequence[IPAddress]
    ttl: int = 86_400

    @property
    def packet_count(self) -> int:
        return len(self.target_ports) * len(self.txid_guesses)


@dataclass
class SprayReport:
    """Accounting for one spray burst."""

    packets_injected: int = 0
    ports_covered: int = 0
    txids_covered: int = 0


class OffPathPoisoner:
    """An attacker that can inject spoofed UDP but observe nothing.

    :param internet: the network (injection entry point).
    :param injection_node: topology node the attacker sends from; it
        only affects latency, since sources are spoofed.
    """

    def __init__(self, internet: Internet, injection_node: str) -> None:
        self._internet = internet
        self._node = injection_node
        self._reports: List[SprayReport] = []

    @property
    def reports(self) -> List[SprayReport]:
        return list(self._reports)

    @property
    def total_packets_injected(self) -> int:
        return sum(report.packets_injected for report in self._reports)

    # ------------------------------------------------------------------
    # Forgery construction.
    # ------------------------------------------------------------------

    def forge_response(self, txid: int, question: Question,
                       addresses: Iterable[IPAddress],
                       ttl: int = 86_400) -> Message:
        """A NOERROR answer for the question carrying the attacker's
        addresses."""
        answers = [
            ResourceRecord(question.qname, question.qtype, ttl,
                           address_rdata(address))
            for address in addresses
        ]
        return Message(txid=txid,
                       flags=Flags(qr=True, aa=True, rcode=RCode.NOERROR),
                       questions=[question], answers=answers)

    # ------------------------------------------------------------------
    # The spray.
    # ------------------------------------------------------------------

    def spray(self, victim_address: IPAddress, plan: SprayPlan) -> SprayReport:
        """Inject the full guess burst toward ``victim_address``.

        All packets are injected at the current instant; network latency
        from the injection node determines whether they win the race
        against the genuine answer.
        """
        report = SprayReport(ports_covered=len(plan.target_ports),
                             txids_covered=len(plan.txid_guesses))
        for port in plan.target_ports:
            for txid in plan.txid_guesses:
                forged = self.forge_response(txid, plan.question,
                                             plan.forged_addresses, plan.ttl)
                datagram = Datagram(
                    src=plan.spoofed_server,
                    dst=Endpoint(victim_address, port),
                    payload=forged.encode())
                self._internet.inject(datagram, at_node=self._node)
                report.packets_injected += 1
        self._reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Guess-space helpers.
    # ------------------------------------------------------------------

    @staticmethod
    def sequential_port_guesses(window: int,
                                start: int = EPHEMERAL_RANGE[0]) -> List[int]:
        """Ports a sequential-allocation stack will use next."""
        low, high = EPHEMERAL_RANGE
        return [low + ((start - low + index) % (high - low + 1))
                for index in range(window)]

    @staticmethod
    def txid_space(bits: int) -> List[int]:
        """Every TXID of a ``bits``-wide transaction-ID space."""
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        return list(range(1 << bits))

    def poison_resolver_lookup(
        self, victim_address: IPAddress, qname: "Name | str", qtype: RRType,
        spoofed_server: Endpoint, forged_addresses: Sequence[IPAddress],
        port_window: int = 8, txid_bits: int = 16,
        port_start: Optional[int] = None,
    ) -> SprayReport:
        """Convenience wrapper: build and fire a spray for one lookup."""
        plan = SprayPlan(
            question=Question(Name(qname), qtype),
            spoofed_server=spoofed_server,
            target_ports=self.sequential_port_guesses(
                port_window,
                start=port_start if port_start is not None
                else EPHEMERAL_RANGE[0]),
            txid_guesses=self.txid_space(txid_bits),
            forged_addresses=list(forged_addresses),
        )
        return self.spray(victim_address, plan)


class PeriodicSprayer:
    """A sustained off-path campaign: forged-response bursts at a fixed
    rate against one victim resolver.

    This is the attacker the ``offpath`` :class:`AttackSpec` installs
    in rate mode: it cannot observe the victim's queries, so it simply
    keeps spraying — a burst only lands if it arrives while the victim
    has a resolution (an open cache slot) in flight, which is exactly
    the exposure window shortened TTLs multiply.  The guess-space
    knobs model the paper's entropy assumptions:

    :param port_window: ports covered per burst.  With
        ``track_ports=True`` the window is anchored at the victim's
        sequential-port oracle (:attr:`Host.next_sequential_port`) —
        the most recently allocated port plus the next allocations;
        with ``track_ports=False`` the attacker guesses blind from the
        bottom of the ephemeral range.
    :param covered_bits: the burst covers the full TXID space of a
        ``covered_bits``-wide ID field; against a victim with
        ``txid_bits > covered_bits`` each guess hits with probability
        ``2**(covered_bits - txid_bits)``.
    """

    def __init__(self, poisoner: OffPathPoisoner, simulator, victim_host,
                 *, question: Question, spoofed_server: Endpoint,
                 forged_addresses: Sequence["IPAddress | str"],
                 rate: float, duration: float, start: float = 0.0,
                 port_window: int = 2, covered_bits: int = 6,
                 track_ports: bool = True, ttl: int = 86_400) -> None:
        if rate <= 0.0:
            raise ValueError("spray rate must be > 0 bursts/s")
        if duration < 0.0 or start < 0.0:
            raise ValueError("spray start/duration must be >= 0")
        if port_window < 1:
            raise ValueError("port_window must be >= 1")
        self._poisoner = poisoner
        self._simulator = simulator
        self._victim = victim_host
        self._question = question
        self._spoofed_server = spoofed_server
        self._forged = [IPAddress(a) for a in forged_addresses]
        self._rate = float(rate)
        self._duration = float(duration)
        self._start = float(start)
        self._port_window = int(port_window)
        self._txids = OffPathPoisoner.txid_space(int(covered_bits))
        self._track_ports = bool(track_ports)
        self._ttl = int(ttl)
        self._scheduled = False
        self.bursts = 0
        self.packets_injected = 0

    @property
    def planned_bursts(self) -> int:
        return max(1, int(round(self._duration * self._rate)))

    def schedule(self) -> None:
        """Pre-schedule every burst of the campaign (idempotent)."""
        if self._scheduled:
            return
        self._scheduled = True
        interval = 1.0 / self._rate
        for index in range(self.planned_bursts):
            self._simulator.schedule_at(self._start + index * interval,
                                        self._fire, label="offpath-spray")

    def _target_ports(self) -> List[int]:
        low, high = EPHEMERAL_RANGE
        if self._track_ports and not self._victim.randomize_ports:
            # The socket currently awaiting an answer (if any) holds the
            # most recently allocated port, i.e. the oracle minus one;
            # cover it plus the next window-1 allocations.
            span = high - low + 1
            anchor = low + ((self._victim.next_sequential_port - low - 1)
                            % span)
            return OffPathPoisoner.sequential_port_guesses(
                self._port_window, start=anchor)
        return OffPathPoisoner.sequential_port_guesses(self._port_window)

    def _fire(self) -> None:
        plan = SprayPlan(
            question=self._question,
            spoofed_server=self._spoofed_server,
            target_ports=self._target_ports(),
            txid_guesses=self._txids,
            forged_addresses=self._forged,
            ttl=self._ttl)
        report = self._poisoner.spray(self._victim.primary_address, plan)
        self.bursts += 1
        self.packets_injected += report.packets_injected
