"""Fragmentation-based DNS poisoning (Herzberg & Shulman [5]).

Mechanism being modelled: a UDP response larger than the path MTU is
IP-fragmented; the DNS transaction ID, UDP header and question all
travel in the *first* fragment, while trailing resource records ride in
later fragments that carry no DNS-layer entropy. An off-path attacker
who can predict the IPID can pre-plant a spoofed second fragment and
overwrite those trailing records without guessing TXID or port.

Substitution in this simulator (documented in DESIGN.md): the netsim
layer does not fragment packets, so the *effect* is reproduced — for
responses exceeding ``mtu`` crossing the victim's access link, the
attacker may rewrite only the byte range beyond the first-fragment
payload boundary. The capability is therefore strictly weaker than
on-path rewriting (small responses are untouchable, headers and the
question are untouchable), matching the real attack's constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dns.message import Message, ResourceRecord
from repro.dns.name import Name
from repro.dns.rdata import address_rdata
from repro.dns.rrtype import RRType
from repro.dns.wire import WireFormatError
from repro.netsim.address import IPAddress
from repro.netsim.internet import Internet, TapAction
from repro.netsim.link import Link
from repro.netsim.packet import Datagram

# IPv4 minimum-ish first-fragment payload after headers, rounded the way
# [5] discusses (attackers can often force tiny fragments; we default to
# a conservative 576-byte first fragment).
DEFAULT_MTU = 576


@dataclass
class FragmentationStats:
    responses_seen: int = 0
    oversized_seen: int = 0
    tails_rewritten: int = 0


class FragmentationPoisoner:
    """Off-path attacker with the fragment-overwrite capability.

    :param internet: network to attach to.
    :param link_name: the victim-side link where reassembly happens.
    :param mtu: first-fragment payload size; only bytes beyond this
        boundary are attacker-writable.
    :param target: poisoned (qname, A) pair.
    :param forged_addresses: what the spoofed tail injects.
    :param ipid_prediction_works: models the IPID-prediction step of
        [5]; when False the planted fragment never matches and the
        attack silently fails (control condition).
    """

    def __init__(self, internet: Internet, link_name: str,
                 target: "Name | str",
                 forged_addresses: Sequence["IPAddress | str"],
                 mtu: int = DEFAULT_MTU,
                 ipid_prediction_works: bool = True) -> None:
        self._mtu = mtu
        self._target = Name(target)
        self._forged = [IPAddress(a) for a in forged_addresses]
        self._predicts_ipid = ipid_prediction_works
        self._stats = FragmentationStats()
        internet.add_tap(link_name, self._tap)

    @property
    def stats(self) -> FragmentationStats:
        return self._stats

    def _tap(self, link: Link, datagram: Datagram) -> TapAction:
        # Only plaintext DNS responses are interesting (TLS tails are
        # ciphertext; rewriting them just fails the MAC).
        if datagram.src.port != 53:
            return TapAction.passthrough()
        try:
            message = Message.decode(datagram.payload)
        except WireFormatError:
            return TapAction.passthrough()
        if not message.is_response or len(message.questions) != 1:
            return TapAction.passthrough()
        self._stats.responses_seen += 1
        if len(datagram.payload) <= self._mtu:
            return TapAction.passthrough()
        self._stats.oversized_seen += 1
        question = message.questions[0]
        if question.qname != self._target or question.qtype is not RRType.A:
            return TapAction.passthrough()
        if not self._predicts_ipid:
            return TapAction.passthrough()

        forged = self._rewrite_tail(message)
        if forged is None:
            return TapAction.passthrough()
        self._stats.tails_rewritten += 1
        return TapAction.rewrite(forged.encode())

    def _rewrite_tail(self, message: Message) -> Optional[Message]:
        """Replace the answer records that live beyond the fragment
        boundary with forged ones.

        We recompute which *whole records* start past the boundary —
        the attacker keeps the first-fragment records intact (it cannot
        touch them) and substitutes the rest.
        """
        kept: List[ResourceRecord] = []
        replaced = 0
        # Walk the answer records, encoding incrementally, to find which
        # whole records start beyond the first-fragment boundary.
        for record in message.answers:
            trial = Message(txid=message.txid, flags=message.flags,
                            questions=list(message.questions),
                            answers=kept + [record])
            if len(trial.encode()) <= self._mtu:
                kept.append(record)
            else:
                replaced += 1
        if replaced == 0:
            return None
        forged_tail = [
            ResourceRecord(self._target, RRType.A, 86_400,
                           address_rdata(self._forged[index % len(self._forged)]))
            for index in range(replaced)
        ]
        return Message(txid=message.txid, flags=message.flags,
                       questions=list(message.questions),
                       answers=kept + forged_tail,
                       authority=list(message.authority),
                       additional=list(message.additional))
