"""Attacker models.

Each module implements one capability class from the paper's threat
discussion, at the mechanical level the simulation supports — attacks
succeed or fail because of what the protocol code actually checks, not
because of a hard-coded coin flip:

* :mod:`repro.attacks.offpath` — classic off-path DNS poisoning: spray
  forged responses racing the authoritative answer, guessing TXID and
  source port (the attack class of [1] against NTP/Chronos);
* :mod:`repro.attacks.fragmentation` — fragmentation-based poisoning
  (Herzberg & Shulman [5]): overwrite the tail of oversized responses
  without needing TXID/port (they travel in the first fragment);
* :mod:`repro.attacks.mitm` — on-path attackers controlling a subset of
  links: observe/drop/rewrite plaintext, drop/delay (only) TLS;
* :mod:`repro.attacks.compromise` — a corrupted DoH provider answering
  pool queries with attacker-chosen records (substitution, inflation,
  empty-answer DoS);
* :mod:`repro.attacks.overpopulation` — [1]'s anti-Chronos move:
  flooding the answer list with attacker addresses, the attack §II
  footnote 2's truncation neutralises;
* :mod:`repro.attacks.timeshift` — end-to-end orchestration: poison the
  pool, stand up lying NTP servers, measure the client clock error.
"""

from repro.attacks.compromise import CompromisedResolverBehavior, compromise_provider
from repro.attacks.fragmentation import FragmentationPoisoner
from repro.attacks.mitm import OnPathAttacker
from repro.attacks.offpath import OffPathPoisoner, SprayPlan
from repro.attacks.overpopulation import OverPopulationAttack
from repro.attacks.timeshift import TimeShiftExperiment, TimeShiftResult

__all__ = [
    "CompromisedResolverBehavior",
    "compromise_provider",
    "FragmentationPoisoner",
    "OnPathAttacker",
    "OffPathPoisoner",
    "SprayPlan",
    "OverPopulationAttack",
    "TimeShiftExperiment",
    "TimeShiftResult",
]
