"""End-to-end time-shift attack orchestration (experiment E7).

One attacker with the paper's "realistic" capabilities — on-path control
of the client's access link plus control of one DoH provider — attacks
a client that needs correct time, under four configurations:

========================  ==========================================
pool acquisition          NTP discipline
========================  ==========================================
plain DNS (one resolver)  naive SNTP average
plain DNS (one resolver)  Chronos
distributed DoH (Alg. 1)  naive SNTP average
distributed DoH (Alg. 1)  Chronos         ← the paper's proposal
========================  ==========================================

Expected shape (§I, §V): both plain-DNS rows are shifted by the full lie
(the attacker rewrites the one pool answer, so even Chronos is
helpless — this is [1]); DoH+naive is partially shifted (one corrupted
resolver seeds 1/N of the pool; naive averaging follows it); DoH+Chronos
holds (crop discards the minority liars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    compromise_provider,
)
from repro.attacks.mitm import OnPathAttacker
from repro.core.pool import PoolGeneratorConfig
from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.netsim.address import IPAddress
from repro.ntp.chronos import ChronosClient, ChronosConfig
from repro.ntp.client import NtpClient, NtpSample
from repro.ntp.clock import SimClock
from repro.ntp.pool import deploy_ntp_fleet
from repro.scenarios.spec import materialize, pool_spec

ATTACKER_NTP_ADDRESSES = [f"203.0.113.{i + 1}" for i in range(12)]
CLIENT_ACCESS_LINK = "client-edge--eu-central"


@dataclass
class TimeShiftResult:
    """Outcome of one configuration run."""

    configuration: str
    lie_offset: float
    clock_error_after: float
    pool_size: int
    pool_malicious_fraction: float
    synced: bool
    details: str = ""

    @property
    def shifted(self) -> bool:
        """Did the attacker move the clock by a meaningful amount
        (> 10% of the lie)?"""
        return abs(self.clock_error_after) > 0.1 * abs(self.lie_offset)


class TimeShiftExperiment:
    """Builds a fresh world per configuration and runs the attack.

    :param seed: world seed (vary for confidence intervals).
    :param lie_offset: seconds the attacker's NTP servers lie by.
    :param num_providers: trusted DoH resolvers for the Algorithm 1 row.
    :param corrupted_providers: how many of them the attacker controls.
    :param pool_size: honest NTP pool population.
    """

    def __init__(self, seed: int = 1, lie_offset: float = 10.0,
                 num_providers: int = 3, corrupted_providers: int = 1,
                 pool_size: int = 20) -> None:
        self._seed = seed
        self._lie = lie_offset
        self._num_providers = num_providers
        self._corrupted = corrupted_providers
        self._pool_size = pool_size

    # ------------------------------------------------------------------
    # World assembly.
    # ------------------------------------------------------------------

    def _build_world(self):
        scenario = materialize(pool_spec(num_providers=self._num_providers,
                                         pool_size=self._pool_size,
                                         answers_per_query=4), self._seed)
        fleet = deploy_ntp_fleet(
            scenario.internet, scenario.directory, scenario.rng,
            malicious_lie_offset=self._lie,
            extra_addresses=ATTACKER_NTP_ADDRESSES)
        # The single attacker: on-path at the client edge...
        mitm = OnPathAttacker(scenario.internet, [CLIENT_ACCESS_LINK])
        mitm.poison_a_records(scenario.pool_domain,
                              ATTACKER_NTP_ADDRESSES, inflate_to=12)
        # ...and in control of `corrupted` DoH providers.
        for provider in scenario.providers[:self._corrupted]:
            compromise_provider(provider, CompromiseConfig(
                target=scenario.pool_domain,
                behavior=CompromisedResolverBehavior.SUBSTITUTE,
                forged_addresses=ATTACKER_NTP_ADDRESSES[:4]))
        clock = SimClock(lambda: scenario.simulator.now, offset=0.0)
        ntp_client = NtpClient(scenario.client, scenario.simulator, clock,
                               timeout=1.0)
        return scenario, fleet, mitm, clock, ntp_client

    # ------------------------------------------------------------------
    # Pool acquisition strategies.
    # ------------------------------------------------------------------

    def _pool_via_plain_dns(self, scenario) -> List[IPAddress]:
        """One RD query to one resolver over spoofable UDP."""
        resolver_address = scenario.providers[0].address
        stub = StubResolver(scenario.client, scenario.simulator,
                            resolver_address, timeout=5.0)
        outcomes: List = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        if not outcomes or not outcomes[0].ok:
            return []
        return outcomes[0].addresses

    def _pool_via_distributed_doh(self, scenario) -> List[IPAddress]:
        """Algorithm 1 across the trusted resolver set."""
        pool = scenario.generate_pool_sync()
        return pool.addresses

    # ------------------------------------------------------------------
    # NTP discipline strategies.
    # ------------------------------------------------------------------

    def _discipline_naive(self, scenario, ntp_client: NtpClient,
                          pool: List[IPAddress]) -> bool:
        """Naive SNTP: average the offsets of (up to) 4 pool servers."""
        rng = scenario.rng.stream("naive-pick")
        chosen = pool if len(pool) <= 4 else rng.sample(pool, 4)
        samples: List[NtpSample] = []
        for server in chosen:
            ntp_client.sample(server, samples.append)
        scenario.simulator.run()
        good = [s.offset for s in samples if s.ok]
        if not good:
            return False
        ntp_client.clock.step(sum(good) / len(good))
        return True

    def _discipline_chronos(self, scenario, ntp_client: NtpClient,
                            pool: List[IPAddress]) -> bool:
        chronos = ChronosClient(
            ntp_client, pool,
            config=ChronosConfig(sample_size=9, agreement_window=0.060,
                                 panic_threshold=0.200, max_retries=2,
                                 min_responses=5),
            rng=scenario.rng.stream("chronos"))
        outcomes: List = []
        chronos.sync(outcomes.append)
        scenario.simulator.run()
        return bool(outcomes) and outcomes[0].ok

    # ------------------------------------------------------------------
    # The four configurations.
    # ------------------------------------------------------------------

    def run(self, use_distributed_doh: bool,
            use_chronos: bool) -> TimeShiftResult:
        """Run one configuration in a fresh world."""
        scenario, fleet, mitm, clock, ntp_client = self._build_world()
        if use_distributed_doh:
            pool = self._pool_via_distributed_doh(scenario)
            acquisition = "distributed-doh"
        else:
            pool = self._pool_via_plain_dns(scenario)
            acquisition = "plain-dns"
        discipline = "chronos" if use_chronos else "naive-sntp"
        name = f"{acquisition}+{discipline}"
        if not pool:
            return TimeShiftResult(
                configuration=name, lie_offset=self._lie,
                clock_error_after=clock.error(), pool_size=0,
                pool_malicious_fraction=0.0, synced=False,
                details="pool acquisition failed")
        malicious = set(IPAddress(a) for a in ATTACKER_NTP_ADDRESSES)
        malicious_fraction = (sum(1 for a in pool if a in malicious)
                              / len(pool))
        if use_chronos:
            synced = self._discipline_chronos(scenario, ntp_client, pool)
        else:
            synced = self._discipline_naive(scenario, ntp_client, pool)
        return TimeShiftResult(
            configuration=name, lie_offset=self._lie,
            clock_error_after=clock.error(), pool_size=len(pool),
            pool_malicious_fraction=malicious_fraction, synced=synced,
            details=f"mitm rewrote {mitm.stats.dns_responses_rewritten} "
                    f"plaintext DNS responses")

    def run_all(self) -> List[TimeShiftResult]:
        """All four rows of the E7 table."""
        return [
            self.run(use_distributed_doh=False, use_chronos=False),
            self.run(use_distributed_doh=False, use_chronos=True),
            self.run(use_distributed_doh=True, use_chronos=False),
            self.run(use_distributed_doh=True, use_chronos=True),
        ]
