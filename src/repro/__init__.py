"""repro — Secure Consensus Generation with Distributed DoH.

Reproduction of Jeitner, Shulman & Waidner (DSN-S 2020,
arXiv:2010.09331): secure server-pool generation by querying a pool
domain through multiple DNS-over-HTTPS resolvers and combining the
truncated answers (Algorithm 1).

Subpackages
-----------
``repro.core``
    The paper's contribution: Algorithm 1, majority voting, policies,
    the backward-compatible plain-DNS front-end, periodic refresh.
``repro.dns`` / ``repro.doh``
    Wire-accurate DNS substrate and the RFC 8484 DoH transport over a
    structurally honest TLS simulation.
``repro.ntp``
    NTP clocks/servers/clients and the Chronos watchdog.
``repro.attacks``
    Off-path, fragmentation, on-path, compromised-resolver and
    time-shift attacker models.
``repro.analysis``
    Section III closed forms and Monte-Carlo validation.
``repro.netsim`` / ``repro.scenarios``
    The deterministic discrete-event Internet and assembled worlds.

Quick start::

    from repro.scenarios import figure1_scenario
    pool = figure1_scenario(seed=1).generate_pool_sync()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
