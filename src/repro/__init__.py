"""repro — Secure Consensus Generation with Distributed DoH.

Reproduction of Jeitner, Shulman & Waidner (DSN-S 2020,
arXiv:2010.09331): secure server-pool generation by querying a pool
domain through multiple DNS-over-HTTPS resolvers and combining the
truncated answers (Algorithm 1).

Subpackages
-----------
``repro.core``
    The paper's contribution: Algorithm 1, majority voting, policies,
    the backward-compatible plain-DNS front-end, periodic refresh.
``repro.dns`` / ``repro.doh``
    Wire-accurate DNS substrate and the RFC 8484 DoH transport over a
    structurally honest TLS simulation.
``repro.ntp``
    NTP clocks/servers/clients and the Chronos watchdog.
``repro.attacks``
    Off-path, fragmentation, on-path, compromised-resolver and
    time-shift attacker models.
``repro.analysis``
    Section III closed forms and Monte-Carlo validation.
``repro.netsim`` / ``repro.scenarios``
    The deterministic discrete-event Internet and assembled worlds.
``repro.campaign``
    Declarative parameter sweeps at scale: a ``ParameterGrid`` names
    the axes (presets × attacks × pool sizes × resolver configs ×
    dual-stack families), a ``CampaignRunner`` shards the trials across
    worker processes with deterministic per-trial seeds, and an
    ``Aggregator`` folds the records into mean/stderr/CI summaries with
    JSON export. Serial and multiprocessing runs are bit-identical; the
    ``bench_e*`` experiment scripts are thin grid declarations over it.

Quick start::

    from repro.scenarios import figure1_scenario
    pool = figure1_scenario(seed=1).generate_pool_sync()

Sweep 40 scenarios across all cores::

    from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial
    grid = ParameterGrid({"num_providers": (3, 5, 9, 15, 31),
                          "corrupted": range(10)},
                         fixed={"pool_size": 40,
                                "forged": ("203.0.113.1",)}).where(
        lambda p: p["corrupted"] <= p["num_providers"])
    result = CampaignRunner(pool_attack_trial, trials_per_point=3,
                            base_seed=7).run(grid)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
