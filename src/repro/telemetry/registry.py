"""The metrics registry and its process-wide installation point.

A :class:`MetricsRegistry` names instruments by ``(name, labels)`` and
memoises them, so every publisher incrementing
``registry.counter("net.datagrams_sent")`` shares one accumulator.

Publishers do not take a registry parameter; they look up the *active*
registry (:func:`current_registry`) once, at construction time, and
publish only when one was installed. With no registry installed (the
default) instrumented components skip telemetry entirely — a single
``is None`` test at construction, zero work per event — which keeps
every pre-telemetry run bit-identical and cost-identical.

Each simulated world is single-threaded, but the campaign engine's
thread executor may run several worlds concurrently in one process, so
the installation point is a :class:`contextvars.ContextVar` — scoping
in one thread is invisible to every other; :func:`use_registry`
restores the previous registry on exit so nested scopes compose.
"""

from __future__ import annotations

import json
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    LogBucketHistogram,
    TimeSeries,
)

#: Version tag stamped into every metrics snapshot. Versioned
#: independently of the trace snapshot schema
#: (:data:`repro.telemetry.trace.TRACE_SCHEMA`) so the two formats can
#: evolve separately.
METRICS_SCHEMA = "repro-metrics/1"

_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": LogBucketHistogram,
}

_LOADERS = {
    "counter": Counter.from_state,
    "gauge": Gauge.from_state,
    "histogram": LogBucketHistogram.from_state,
    "timeseries": TimeSeries.from_state,
}

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render_key(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _parse_key(rendered: str) -> _Key:
    """Invert :func:`_render_key` (label values must not contain ``,``
    or ``=`` — publishers use plain identifiers, which snapshots keep)."""
    if not rendered.endswith("}") or "{" not in rendered:
        return (rendered, ())
    name, _, body = rendered[:-1].partition("{")
    labels = tuple(tuple(pair.split("=", 1)) for pair in body.split(","))
    return (name, labels)  # type: ignore[return-value]


class MetricsRegistry:
    """A deterministic namespace of metric instruments.

    Instruments are created on first use and memoised by
    ``(name, labels)``. Snapshots render every instrument's state with
    sorted keys, so two runs that made the same observations produce
    byte-identical snapshots — the property the telemetry tests pin.
    """

    def __init__(self) -> None:
        self._instruments: Dict[_Key, object] = {}
        self._kinds: Dict[_Key, str] = {}

    # ------------------------------------------------------------------
    # Instrument accessors.
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> LogBucketHistogram:
        return self._get("histogram", name, labels)

    def timeseries(self, name: str, bin_width: float = 1.0,
                   **labels) -> TimeSeries:
        """The named series; ``bin_width`` applies on first creation
        only (pre-create a series to pin its binning)."""
        key = _key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if self._kinds[key] != "timeseries":
                raise TypeError(
                    f"metric {_render_key(key)} already registered as "
                    f"{self._kinds[key]}")
            return existing  # type: ignore[return-value]
        series = TimeSeries(bin_width)
        self._instruments[key] = series
        self._kinds[key] = "timeseries"
        return series

    def _get(self, kind: str, name: str, labels: Dict[str, object]):
        key = _key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if self._kinds[key] != kind:
                raise TypeError(
                    f"metric {_render_key(key)} already registered as "
                    f"{self._kinds[key]}, requested as {kind}")
            return existing
        instrument = _KINDS[kind]()
        self._instruments[key] = instrument
        self._kinds[key] = kind
        return instrument

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list:
        """Rendered instrument names, sorted."""
        return sorted(_render_key(key) for key in self._instruments)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """A counter/gauge's current value (``default`` when absent)."""
        instrument = self._instruments.get(_key(name, labels))
        if instrument is None:
            return default
        return instrument.value  # type: ignore[attr-defined]

    def get(self, name: str, **labels):
        """The raw instrument, or ``None`` when never touched."""
        return self._instruments.get(_key(name, labels))

    def snapshot(self) -> Dict[str, object]:
        """Deterministic state of every instrument, grouped by kind,
        under a ``schema`` version tag."""
        grouped: Dict[str, object] = {"schema": METRICS_SCHEMA}
        for key in sorted(self._instruments):
            kind = self._kinds[key]
            grouped.setdefault(kind, {})[_render_key(key)] = (  # type: ignore[union-attr]
                self._instruments[key].state())  # type: ignore[attr-defined]
        return grouped

    def snapshot_json(self) -> str:
        """The snapshot as canonical JSON (byte-comparable).

        Strict JSON: any NaN/Infinity sneaking into instrument state
        raises here instead of silently producing unparseable output.
        """
        return json.dumps(self.snapshot(), sort_keys=True, allow_nan=False)

    # ------------------------------------------------------------------
    # Merging (sharded accumulation).
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        Instruments that exist on both sides are merged pairwise (same
        kind required); instruments unique to ``other`` are merged into
        fresh empty instruments so the result never aliases state.
        Returns ``self`` for chaining.
        """
        for key, theirs in other._instruments.items():
            kind = other._kinds[key]
            mine = self._instruments.get(key)
            if mine is None:
                if kind == "timeseries":
                    mine = TimeSeries(theirs.bin_width)  # type: ignore[attr-defined]
                else:
                    mine = _KINDS[kind]()
                self._instruments[key] = mine
                self._kinds[key] = kind
            elif self._kinds[key] != kind:
                raise TypeError(
                    f"metric {_render_key(key)} is {self._kinds[key]} "
                    f"here but {kind} in the merged registry")
            mine.merge(theirs)  # type: ignore[attr-defined]
        return self

    # ------------------------------------------------------------------
    # Snapshot round-trip (the sharded-fold entry point).
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: "Dict[str, Dict[str, object]] | str"
                      ) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (or its
        :meth:`snapshot_json` string).

        The round trip is exact: every instrument state JSON encodes
        (ints, shortest-round-trip floats) decodes to the same value,
        so ``from_snapshot(r.snapshot_json()).snapshot_json()`` is
        byte-identical to ``r.snapshot_json()``. This is what lets a
        shard ship its registry across a process boundary as JSON and
        the parent fold it with :func:`fold_snapshots` as if the
        shard's instruments had been merged directly.
        """
        if isinstance(snapshot, str):
            snapshot = json.loads(snapshot)
        snapshot = dict(snapshot)
        if snapshot.pop("schema", None) is None:
            # Pre-versioning snapshots (recorded before the schema tag
            # landed) still load — but loudly, so stale artifacts get
            # regenerated rather than silently mixed with tagged ones.
            warnings.warn(
                "metrics snapshot carries no 'schema' field; assuming "
                f"{METRICS_SCHEMA}", stacklevel=2)
        registry = cls()
        for kind, instruments in snapshot.items():
            loader = _LOADERS.get(kind)
            if loader is None:
                raise ValueError(f"unknown instrument kind {kind!r}; "
                                 f"known: {sorted(_LOADERS)}")
            for rendered, state in instruments.items():
                key = _parse_key(rendered)
                registry._instruments[key] = loader(state)
                registry._kinds[key] = kind
        return registry


def fold_snapshots(snapshots, select=None) -> MetricsRegistry:
    """Left-fold registry snapshots, in order, into one registry.

    :param snapshots: an iterable of :meth:`MetricsRegistry.snapshot`
        dicts or :meth:`MetricsRegistry.snapshot_json` strings — e.g.
        per-shard results, folded **in shard order** (the fold order is
        part of the determinism contract: integer state merges are
        associative and order-free, but float accumulations such as a
        histogram's ``total`` reproduce byte-identically only when the
        fold order is pinned).
    :param select: optional predicate ``(kind, name, labels) -> bool``
        restricting the fold to a subset of instruments — the sharding
        layer uses it to compare the population-invariant subset across
        different shard counts.
    """
    folded = MetricsRegistry()
    for snapshot in snapshots:
        shard = MetricsRegistry.from_snapshot(snapshot)
        if select is not None:
            kept = MetricsRegistry()
            for key, instrument in shard._instruments.items():
                kind = shard._kinds[key]
                name, labels = key
                if select(kind, name, dict(labels)):
                    kept._instruments[key] = instrument
                    kept._kinds[key] = kind
            shard = kept
        folded.merge(shard)
    return folded


# ----------------------------------------------------------------------
# The active registry.
# ----------------------------------------------------------------------

# Context-local, not a module global: the campaign thread executor runs
# trials concurrently, and each trial scopes its own registry — a plain
# global would let one thread's registry capture another thread's
# publishers. A ContextVar is per-thread (threads start from a copy of
# the spawning context), so scoping stays isolated; single-threaded
# behaviour is unchanged.
_active: "ContextVar[Optional[MetricsRegistry]]" = ContextVar(
    "repro_telemetry_active_registry", default=None)


def current_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` (telemetry off)."""
    return _active.get()


def install_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install ``registry`` as the active one (``None`` disables)."""
    _active.set(registry)


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as active; restores the previous on exit."""
    previous = _active.get()
    install_registry(registry)
    try:
        yield registry
    finally:
        install_registry(previous)
