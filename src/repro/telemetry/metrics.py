"""Deterministic, mergeable metric instruments.

Every instrument here is built for the campaign layer's determinism
contract: instruments accumulate plain numbers, carry no wall-clock
state, and merge associatively so that sharded accumulation folded in
spec order is bit-identical to serial accumulation.

* :class:`Counter` — monotone accumulator (integers add exactly).
* :class:`Gauge` — last-write-wins sample, ordered by a caller-supplied
  virtual timestamp so merges do not depend on fold order.
* :class:`LogBucketHistogram` — streaming histogram over *fixed*
  log-spaced buckets. The bucket geometry is a module constant, never a
  per-instance fit, so any two histograms of the same metric are
  merge-compatible and bucket counts (integers) combine exactly.
* :class:`TimeSeries` — per-virtual-time-bin aggregates (count, sum,
  min, max), the instrument behind "victim fraction over virtual time".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# Fixed histogram geometry (shared by every LogBucketHistogram).
# ----------------------------------------------------------------------

#: Buckets per decade: bucket ``i`` spans ``[10^(i/8), 10^((i+1)/8))``.
BUCKETS_PER_DECADE = 8

#: Bucket indices are clamped to this range (1e-9 .. 1e9 seconds/bytes —
#: far wider than anything the simulation produces).
MIN_BUCKET_INDEX = -9 * BUCKETS_PER_DECADE
MAX_BUCKET_INDEX = 9 * BUCKETS_PER_DECADE


def bucket_index(value: float) -> int:
    """The fixed log-spaced bucket a positive value falls into."""
    if value <= 0.0:
        raise ValueError(f"bucket_index needs a positive value, got {value}")
    index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    return max(MIN_BUCKET_INDEX, min(MAX_BUCKET_INDEX, index))


def bucket_upper_edge(index: int) -> float:
    """Exclusive upper edge of bucket ``index``."""
    return 10.0 ** ((index + 1) / BUCKETS_PER_DECADE)


class Counter:
    """A monotone accumulator.

    >>> c = Counter()
    >>> c.inc(); c.inc(2)
    >>> c.value
    3
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def state(self):
        return self.value

    @classmethod
    def from_state(cls, state) -> "Counter":
        counter = cls()
        counter.value = int(state)
        return counter


class Gauge:
    """A last-write-wins sample ordered by virtual time.

    The timestamp makes the merge order-independent: whichever side
    observed later (in virtual time) wins, regardless of which registry
    shard is folded first. Ties keep the fold target's sample so serial
    and sharded folds agree.
    """

    __slots__ = ("value", "updated_at")

    def __init__(self) -> None:
        self.value = 0.0
        self.updated_at = -math.inf

    def set(self, value: float, at: float) -> None:
        """Record ``value`` observed at virtual time ``at``.

        The timestamp is mandatory: an implicit default would make a
        plain ``set(v)`` after any timestamped write a silent no-op.
        """
        if at >= self.updated_at:
            self.value = float(value)
            self.updated_at = at

    def merge(self, other: "Gauge") -> None:
        if other.updated_at > self.updated_at:
            self.value = other.value
            self.updated_at = other.updated_at

    def state(self):
        # A never-set gauge reports a null timestamp: -inf is only an
        # internal ordering sentinel and is not valid JSON.
        at = None if self.updated_at == -math.inf else self.updated_at
        return [at, self.value]

    @classmethod
    def from_state(cls, state) -> "Gauge":
        gauge = cls()
        at, value = state
        gauge.updated_at = -math.inf if at is None else at
        gauge.value = float(value)
        return gauge


class LogBucketHistogram:
    """Streaming histogram over the module's fixed log-spaced buckets.

    Values ``<= 0`` land in a dedicated ``underflow`` bucket (clock
    offsets of exactly zero are real observations). Because the bucket
    geometry is global and counts are integers, merging histograms is
    exact and associative; only the float ``total`` depends on fold
    order, which the campaign layer pins by folding in spec order.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "underflow",
                 "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.underflow = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.underflow += 1
            return
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the upper edge of the bucket the
        rank falls into (0.0 for ranks inside the underflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.underflow
        if rank <= seen:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                # The bucket's edge, clamped so the estimate never
                # exceeds the largest value actually observed.
                return min(bucket_upper_edge(index), self.maximum)
        return self.maximum

    def merge(self, other: "LogBucketHistogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.underflow += other.underflow
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def state(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "underflow": self.underflow,
            "buckets": {str(index): self.buckets[index]
                        for index in sorted(self.buckets)},
        }

    @classmethod
    def from_state(cls, state) -> "LogBucketHistogram":
        histogram = cls()
        histogram.count = int(state["count"])
        histogram.total = float(state["total"])
        if histogram.count:
            histogram.minimum = state["min"]
            histogram.maximum = state["max"]
        histogram.underflow = int(state["underflow"])
        histogram.buckets = {int(index): int(count)
                             for index, count in state["buckets"].items()}
        return histogram


class TimeSeries:
    """Per-virtual-time-bin aggregates of a sampled quantity.

    ``record(t, v)`` folds ``v`` into the bin ``floor(t / bin_width)``;
    each bin keeps (count, sum, min, max). The per-bin *mean* of a 0/1
    indicator is exactly "fraction of events in that window" — which is
    how the population layer reads victim fraction over virtual time.
    """

    __slots__ = ("bin_width", "bins")

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        self.bin_width = float(bin_width)
        self.bins: Dict[int, List[float]] = {}

    def record(self, when: float, value: float) -> None:
        index = int(when // self.bin_width)
        value = float(value)
        entry = self.bins.get(index)
        if entry is None:
            self.bins[index] = [1, value, value, value]
            return
        entry[0] += 1
        entry[1] += value
        if value < entry[2]:
            entry[2] = value
        if value > entry[3]:
            entry[3] = value

    @property
    def count(self) -> int:
        return sum(int(entry[0]) for entry in self.bins.values())

    def mean(self) -> float:
        """Mean over every recorded sample (all bins pooled)."""
        count = self.count
        if not count:
            return 0.0
        return sum(entry[1] for _, entry in sorted(self.bins.items())) / count

    def series(self) -> List[Tuple[float, float]]:
        """``(bin start time, bin mean)`` pairs in time order."""
        return [(index * self.bin_width, entry[1] / entry[0])
                for index, entry in sorted(self.bins.items())]

    def merge(self, other: "TimeSeries") -> None:
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"cannot merge series with bin widths "
                f"{self.bin_width} and {other.bin_width}")
        for index, entry in other.bins.items():
            mine = self.bins.get(index)
            if mine is None:
                self.bins[index] = list(entry)
                continue
            mine[0] += entry[0]
            mine[1] += entry[1]
            if entry[2] < mine[2]:
                mine[2] = entry[2]
            if entry[3] > mine[3]:
                mine[3] = entry[3]

    def state(self):
        return {
            "bin_width": self.bin_width,
            "bins": {str(index): list(entry)
                     for index, entry in sorted(self.bins.items())},
        }

    @classmethod
    def from_state(cls, state) -> "TimeSeries":
        series = cls(state["bin_width"])
        series.bins = {int(index): list(entry)
                       for index, entry in state["bins"].items()}
        return series
