"""Trace analyzer: from a span dump to "who poisoned this client, how".

``python -m repro.telemetry.tracetool trace.json`` reads a trace
snapshot (the canonical JSON of :meth:`repro.telemetry.Tracer.snapshot_json`
or its JSONL rendering) and reconstructs, for every victim client
round, the causal chain the aggregates hide:

* which providers answered the round's Algorithm 1 fan-out, and what
  each answered;
* which addresses survived the truncate-and-combine, which of those
  are attacker-controlled, and which provider(s) contributed each;
* which pool member the client picked and synced against, over which
  links (per-hop flight timeline, with drop/duplicate/tap fault
  attribution);
* per-exchange critical-path timing: request transit, server-side
  time, response transit.

The forged-address set is optional (``--forged``): without it the tool
attributes via the round's own victim classification (the ``pick``
that synced against an attacker). ``--chrome`` converts the trace to
Chrome Trace Event JSON for https://ui.perfetto.dev.

Everything is importable — ``TraceIndex``, :func:`victim_rounds`,
:func:`format_victim_chain` — so examples and tests can drive the same
analysis without shelling out.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.trace import load_snapshot, snapshot_to_chrome

SpanDict = Dict[str, Any]


class TraceIndex:
    """A parsed trace snapshot with parent/child navigation."""

    def __init__(self, snapshot: Dict[str, Any]) -> None:
        self.snapshot = snapshot
        self.spans: List[SpanDict] = list(snapshot.get("spans", ()))
        self.by_id: Dict[int, SpanDict] = {
            span["id"]: span for span in self.spans}
        self._children: Dict[Optional[int], List[SpanDict]] = {}
        for span in self.spans:
            self._children.setdefault(span.get("parent"), []).append(span)

    def named(self, name: str) -> List[SpanDict]:
        return [span for span in self.spans if span["name"] == name]

    def children(self, span: SpanDict,
                 name: Optional[str] = None) -> List[SpanDict]:
        kids = self._children.get(span["id"], [])
        if name is not None:
            kids = [kid for kid in kids if kid["name"] == name]
        return kids

    def descendants(self, span: SpanDict,
                    name: Optional[str] = None) -> List[SpanDict]:
        """All spans below ``span`` (depth-first, emission order within
        a level), optionally filtered by name."""
        found: List[SpanDict] = []
        stack = list(self.children(span))
        while stack:
            current = stack.pop(0)
            if name is None or current["name"] == name:
                found.append(current)
            stack = self.children(current) + stack
        return found


def attrs(span: SpanDict) -> Dict[str, Any]:
    return span.get("attrs") or {}


def duration(span: SpanDict) -> float:
    return span.get("end", span["start"]) - span["start"]


def matches_forged(address: str, forged: Sequence[str]) -> bool:
    """Exact match, or prefix match for specs ending in ``.`` — so
    ``--forged 203.0.113.`` covers the whole documentation block."""
    for spec in forged:
        if spec.endswith("."):
            if address.startswith(spec):
                return True
        elif address == spec:
            return True
    return False


def victim_rounds(index: TraceIndex,
                  client: Optional[int] = None) -> List[SpanDict]:
    """Round spans that synced against an attacker server."""
    rounds = [span for span in index.named("client.round")
              if attrs(span).get("victim")]
    if client is not None:
        rounds = [span for span in rounds
                  if attrs(span).get("client") == client]
    return rounds


def client_rounds(index: TraceIndex, client: int) -> List[SpanDict]:
    return [span for span in index.named("client.round")
            if attrs(span).get("client") == client]


# ----------------------------------------------------------------------
# Flight / exchange analysis.
# ----------------------------------------------------------------------


def _flight_line(flight: SpanDict) -> str:
    a = attrs(flight)
    outcome = a.get("outcome", "open")
    extra = ""
    if outcome == "dropped":
        extra = f" by {a.get('dropped_by', '?')}"
    if a.get("spoofed"):
        extra += " SPOOFED"
    if a.get("duplicated"):
        extra += " duplicated"
    return (f"flight {a.get('src', '?')} -> {a.get('dst', '?')} "
            f"[{outcome}{extra}] {duration(flight) * 1e3:.2f}ms")


def _hop_line(hop: SpanDict) -> str:
    a = attrs(hop)
    fault = f" fault={a['fault']}" if "fault" in a else ""
    rewritten = " REWRITTEN" if a.get("rewritten") else ""
    return (f"hop {a.get('link', '?')} "
            f"{duration(hop) * 1e3:.2f}ms{fault}{rewritten}")


def _render_flight_tree(index: TraceIndex, flight: SpanDict,
                        lines: List[str], indent: str) -> None:
    lines.append(indent + _flight_line(flight))
    for hop in index.children(flight, "net.hop"):
        lines.append(indent + "  " + _hop_line(hop))
    for child in index.children(flight, "net.flight"):
        _render_flight_tree(index, child, lines, indent + "  ")


def _terminal_flight(index: TraceIndex, flight: SpanDict) -> SpanDict:
    """The deepest flight in a request's continuation chain (the
    response leg that finally reached the requester, when delivered)."""
    current = flight
    while True:
        nested = index.children(current, "net.flight")
        if not nested:
            return current
        current = nested[-1]


def critical_path(index: TraceIndex,
                  exchange: SpanDict) -> Optional[Dict[str, float]]:
    """Request transit / server time / response transit of the accepted
    attempt, or ``None`` when no attempt carried a delivered response."""
    for attempt in reversed(index.children(exchange, "transport.attempt")):
        flights = index.children(attempt, "net.flight")
        if not flights:
            continue
        request = flights[0]
        response = _terminal_flight(index, request)
        if response is request:
            continue
        return {
            "request_s": duration(request),
            "server_s": max(response["start"] - request.get(
                "end", request["start"]), 0.0),
            "response_s": duration(response),
            "total_s": response.get("end", response["start"])
            - request["start"],
        }
    return None


def format_exchange(index: TraceIndex, exchange: SpanDict,
                    indent: str = "  ") -> List[str]:
    """Human-readable report of one supervised exchange: attempts,
    per-link flight timelines, critical-path split."""
    a = attrs(exchange)
    lines = [f"{indent}exchange {a.get('label', '?')} "
             f"t={exchange['start']:.3f}s dur={duration(exchange) * 1e3:.2f}ms "
             f"attempts={a.get('attempts', '?')}"
             + (" TIMED-OUT" if a.get("timed_out") else "")]
    for attempt in index.children(exchange, "transport.attempt"):
        at = attrs(attempt)
        txid = f" txid={at['txid']}" if "txid" in at else ""
        lines.append(f"{indent}  attempt {at.get('attempt', '?')}{txid} "
                     f"[{at.get('outcome', 'open')}]")
        for flight in index.children(attempt, "net.flight"):
            _render_flight_tree(index, flight, lines, indent + "    ")
    path = critical_path(index, exchange)
    if path is not None:
        lines.append(
            f"{indent}  critical path: request {path['request_s'] * 1e3:.2f}ms"
            f" | server {path['server_s'] * 1e3:.2f}ms"
            f" | response {path['response_s'] * 1e3:.2f}ms"
            f" | total {path['total_s'] * 1e3:.2f}ms")
    return lines


# ----------------------------------------------------------------------
# The victim causal chain.
# ----------------------------------------------------------------------


def format_victim_chain(index: TraceIndex, round_span: SpanDict,
                        forged: Sequence[str] = ()) -> str:
    """The full causal story of one victim round, as printable text."""
    a = attrs(round_span)
    pick = a.get("pick")
    lines = [f"Victim causal chain — client {a.get('client', '?')}, "
             f"round {a.get('round', '?')} "
             f"(t={round_span['start']:.3f}s → "
             f"{round_span.get('end', round_span['start']):.3f}s)"]

    # Phase 1: the fan-out. Which provider answered what, over which
    # wire path.
    contributed_pick: List[Any] = []
    queries = index.children(round_span, "client.query")
    for query in queries:
        qa = attrs(query)
        provider = qa.get("provider", "?")
        answers = qa.get("answers")
        if qa.get("failed") or answers is None:
            lines.append(f"  provider {provider}: FAILED (no answer)")
            continue
        marks = []
        forged_answers = [addr for addr in answers
                          if matches_forged(addr, forged)]
        if forged_answers:
            marks.append(f"serves forged {', '.join(forged_answers)}")
        if pick is not None and pick in answers:
            contributed_pick.append(provider)
            marks.append("contributed the pick")
        mark = f"   << {'; '.join(marks)}" if marks else ""
        lines.append(f"  provider {provider}: answers "
                     f"[{', '.join(answers)}]{mark}")
        for exchange in index.descendants(query, "transport.exchange"):
            lines.extend(format_exchange(index, exchange, indent="    "))

    # Phase 2: the combine. What survived truncation, and who to blame.
    combines = index.children(round_span, "client.combine")
    for combine in combines:
        ca = attrs(combine)
        pool = ca.get("pool", [])
        survivors = [addr for addr in pool if matches_forged(addr, forged)]
        lines.append(f"  combine -> pool [{', '.join(pool)}]"
                     + ("" if ca.get("ok") else " (FAILED)"))
        for survivor in survivors:
            sources = [attrs(q).get("provider", "?") for q in queries
                       if survivor in (attrs(q).get("answers") or ())]
            lines.append(f"    forged survivor {survivor} "
                         f"(from provider(s) "
                         f"{', '.join(str(s) for s in sources)})")
    if not combines and a.get("round", 1) != 0:
        lines.append("  (cached pool — resolved in an earlier round)")

    # Phase 3: the sync. The attacker server the client disciplined
    # its clock against, and the wire path the exchange took.
    if pick is not None:
        source = (f" (answered by provider(s) "
                  f"{', '.join(str(s) for s in contributed_pick)})"
                  if contributed_pick else "")
        lines.append(f"  pick {pick}  << attacker server{source}")
    error = a.get("clock_error")
    shifted = " TIME-SHIFTED" if a.get("shifted") else ""
    lines.append(f"  sync: synced={a.get('synced', False)}"
                 + (f" clock_error={error * 1e3:.2f}ms" if error is not None
                    else "") + shifted)
    for exchange in index.children(round_span, "transport.exchange"):
        # NTP exchanges hang directly under the round (queries own the
        # DNS ones).
        lines.extend(format_exchange(index, exchange, indent="    "))
    return "\n".join(lines)


def summarize(index: TraceIndex) -> str:
    """Span census: count and total duration per span name."""
    counts: Counter = Counter()
    totals: Dict[str, float] = {}
    for span in index.spans:
        counts[span["name"]] += 1
        totals[span["name"]] = totals.get(span["name"], 0.0) + duration(span)
    width = max((len(name) for name in counts), default=4)
    lines = [f"{'span':<{width}}  count  total_virtual_s"]
    for name in sorted(counts):
        lines.append(f"{name:<{width}}  {counts[name]:>5}  "
                     f"{totals[name]:.6f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------


def load_trace(path: str) -> TraceIndex:
    """Read a snapshot (JSON document or JSONL; ``-`` for stdin)."""
    text = (sys.stdin.read() if path == "-"
            else Path(path).read_text())
    return TraceIndex(load_snapshot(text))


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.tracetool",
        description="Analyze a repro trace snapshot: victim causal "
                    "chains, per-exchange critical paths, Perfetto "
                    "export.")
    parser.add_argument("trace", help="trace snapshot (JSON or JSONL; "
                                      "'-' reads stdin)")
    parser.add_argument("--forged", default="",
                        help="comma-separated attacker addresses; a "
                             "trailing '.' makes a spec a prefix "
                             "(e.g. '203.0.113.')")
    parser.add_argument("--client", type=int, default=None,
                        help="restrict to one client's rounds (with no "
                             "victim rounds, shows all of them)")
    parser.add_argument("--max-chains", type=int, default=5,
                        help="cap on printed causal chains (default 5)")
    parser.add_argument("--summary", action="store_true",
                        help="print the span census instead of chains")
    parser.add_argument("--chrome", metavar="OUT", default=None,
                        help="also write Chrome Trace Event JSON "
                             "(open in ui.perfetto.dev)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    index = load_trace(args.trace)
    if args.chrome:
        Path(args.chrome).write_text(json.dumps(
            snapshot_to_chrome(index.snapshot), sort_keys=True) + "\n")
        print(f"wrote Chrome trace: {args.chrome} "
              f"({len(index.spans)} spans)")
    if args.summary:
        print(summarize(index))
        return 0

    forged = [spec.strip() for spec in args.forged.split(",") if spec.strip()]
    rounds = victim_rounds(index, client=args.client)
    if not rounds and args.client is not None:
        rounds = client_rounds(index, args.client)
        if rounds:
            print(f"client {args.client} was never a victim; "
                  f"showing its {len(rounds)} round(s)")
    if not rounds:
        print(f"no victim rounds in trace ({len(index.spans)} spans, "
              f"{len(index.named('client.round'))} client rounds)")
        return 0
    shown = rounds[:args.max_chains]
    print(f"{len(rounds)} victim round(s); showing {len(shown)}\n")
    for round_span in shown:
        print(format_victim_chain(index, round_span, forged))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
