"""Deterministic causal tracing beside the metrics registry.

A :class:`Tracer` records **spans** — named intervals in *virtual*
simulation time, linked parent-to-child — so the attempt → datagram →
hop → decode → combine chain behind every aggregate counter becomes
inspectable. The tracer follows the exact zero-cost contract of
:class:`~repro.telemetry.registry.MetricsRegistry`:

* publishers look up the active tracer (:func:`current_tracer`) once,
  at construction time, and guard every span emission on it being
  non-``None`` — with no tracer installed nothing is allocated and all
  golden fixtures stay byte-identical;
* the installation point is a :class:`contextvars.ContextVar`
  (:func:`use_tracer` / :func:`install_tracer`), so the campaign thread
  executor can trace several worlds concurrently in one process;
* span IDs come from a plain per-tracer counter — never from
  :mod:`repro.util.rng` — and timestamps are the simulator's virtual
  clock, so traces are bit-identical serial vs parallel and a traced
  run never perturbs a single RNG draw.

Each simulated world is single-threaded, so the "current span" used to
parent children across event-driven boundaries is a plain attribute on
the tracer. Callbacks scheduled on the simulator heap do **not**
inherit it automatically — instrumentation captures the span it wants
restored (e.g. a transport attempt) and re-activates it inside the
callback via :meth:`Tracer.activate`.

Two exporters ship with the tracer: a deterministic JSONL snapshot
(:meth:`Tracer.to_jsonl`) that folds across shards like metrics
snapshots do (:func:`fold_trace_snapshots`), and a Chrome Trace Event
JSON (:meth:`Tracer.to_chrome_json`) loadable in Perfetto, with virtual
seconds mapped to microseconds.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
)

#: Version tag of the trace snapshot format. Versioned independently of
#: the metrics snapshot ``schema`` field — the two evolve separately.
TRACE_SCHEMA = "repro-trace/1"


class Span:
    """One named interval in virtual time, linked to a parent span.

    ``end`` is ``None`` while the span is open; snapshots render open
    spans as zero-length at their start so exports stay deterministic
    even when a trace is cut mid-flight.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, attrs: Optional[Dict[str, Any]]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns ``self``."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.start if self.end is None else self.end,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


#: Sentinel distinguishing "parent defaulted" from "explicitly root".
_CURRENT = object()


class Tracer:
    """A deterministic span recorder for one traced world.

    Spans are numbered by a monotonically increasing counter in emission
    order; because each world is single-threaded and event dispatch
    order is pinned by the simulator heap, the numbering — and therefore
    the whole trace — is reproducible byte-for-byte across executors.
    """

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._next_id = 0
        #: The span new children parent under by default. Managed with
        #: :meth:`activate` / :meth:`scope`; callbacks hopping through
        #: the simulator heap must restore it explicitly.
        self.current: Optional[Span] = None
        self._clock: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Virtual clock.
    # ------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind the virtual clock (the simulator's ``now``). Spans begun
        or finished without explicit timestamps read it; before any
        binding the clock reads 0.0 (trial setup time)."""
        self._clock = clock

    def now(self) -> float:
        return 0.0 if self._clock is None else self._clock()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def begin(self, name: str, *, parent: Any = _CURRENT,
              start: Optional[float] = None,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span. ``parent`` defaults to the current span; pass
        ``parent=None`` for an explicit root."""
        if parent is _CURRENT:
            parent = self.current
        span = Span(self._next_id,
                    None if parent is None else parent.span_id,
                    name,
                    self.now() if start is None else start,
                    attrs)
        self._next_id += 1
        self._spans.append(span)
        return span

    def finish(self, span: Span, end: Optional[float] = None) -> Span:
        span.end = self.now() if end is None else end
        return span

    def event(self, name: str, *, parent: Any = _CURRENT,
              at: Optional[float] = None,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """A zero-length span (instantaneous event) at ``at``."""
        span = self.begin(name, parent=parent, start=at, attrs=attrs)
        span.end = span.start
        return span

    def span_at(self, name: str, start: float, end: float, *,
                parent: Any = _CURRENT,
                attrs: Optional[Dict[str, Any]] = None) -> Span:
        """A closed span over a precomputed ``[start, end]`` interval —
        flight/hop timelines are decided at schedule time, before the
        virtual clock reaches them."""
        span = self.begin(name, parent=parent, start=start, attrs=attrs)
        span.end = end
        return span

    def absorb(self, snapshot: Dict[str, Any],
               parent: Any = _CURRENT) -> None:
        """Graft an exported snapshot's spans into this tracer.

        Span IDs are rebased past the live counter and the grafted
        roots are re-parented under ``parent`` (default: the current
        span) — the sharded fleet uses this to hang its per-shard
        traces under the trial span that spawned the shards.
        """
        if parent is _CURRENT:
            parent = self.current
        base = self._next_id
        top = base
        for payload in snapshot.get("spans", ()):
            if payload.get("parent") is not None:
                parent_id: Optional[int] = payload["parent"] + base
            else:
                parent_id = None if parent is None else parent.span_id
            span = Span(payload["id"] + base, parent_id, payload["name"],
                        payload["start"],
                        dict(payload["attrs"])
                        if payload.get("attrs") else None)
            span.end = payload.get("end", payload["start"])
            self._spans.append(span)
            top = max(top, span.span_id + 1)
        self._next_id = top

    # ------------------------------------------------------------------
    # Current-span management (context across callback hops).
    # ------------------------------------------------------------------

    def activate(self, span: Optional[Span]) -> Optional[Span]:
        """Make ``span`` the current parent; returns the previous one
        so callers can restore it."""
        previous = self.current
        self.current = span
        return previous

    @contextmanager
    def scope(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Scope ``span`` as current; restores the previous on exit."""
        previous = self.activate(span)
        try:
            yield span
        finally:
            self.current = previous

    # ------------------------------------------------------------------
    # Reading / export.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def spans(self) -> List[Span]:
        return self._spans

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic state of the whole trace (span-ID order)."""
        return {"schema": TRACE_SCHEMA,
                "spans": [span.to_dict() for span in self._spans]}

    def snapshot_json(self) -> str:
        """The snapshot as canonical JSON (byte-comparable; strict —
        NaN/Infinity raise instead of emitting unparseable output)."""
        return json.dumps(self.snapshot(), sort_keys=True, allow_nan=False)

    def to_jsonl(self) -> str:
        """The snapshot as JSONL: a schema header line, then one span
        per line in span-ID order — line-diffable and identical across
        serial/threads/processes executors."""
        return snapshot_to_jsonl(self.snapshot())

    def to_chrome(self) -> Dict[str, Any]:
        return snapshot_to_chrome(self.snapshot())

    def to_chrome_json(self) -> str:
        """Chrome Trace Event JSON (open in https://ui.perfetto.dev)."""
        return json.dumps(self.to_chrome(), sort_keys=True, allow_nan=False)


# ----------------------------------------------------------------------
# Snapshot-level helpers (operate on exported dicts, not live tracers).
# ----------------------------------------------------------------------


def snapshot_to_jsonl(snapshot: Dict[str, Any]) -> str:
    lines = [json.dumps({"schema": snapshot.get("schema", TRACE_SCHEMA)},
                        sort_keys=True)]
    for span in snapshot.get("spans", ()):
        lines.append(json.dumps(span, sort_keys=True, allow_nan=False))
    return "\n".join(lines) + "\n"


def load_snapshot(text: str) -> Dict[str, Any]:
    """Parse a trace back from :meth:`Tracer.snapshot_json` output or
    from the JSONL rendering (header line + one span per line)."""
    stripped = text.strip()
    if not stripped:
        return {"schema": TRACE_SCHEMA, "spans": []}
    if stripped.startswith("{") and "\n" not in stripped:
        payload = json.loads(stripped)
        if "spans" in payload:
            return payload
        return {"schema": payload.get("schema", TRACE_SCHEMA), "spans": []}
    first = json.loads(stripped.splitlines()[0])
    if "spans" in first:
        return first
    schema = first.get("schema", TRACE_SCHEMA)
    spans = [json.loads(line) for line in stripped.splitlines()[1:] if line]
    return {"schema": schema, "spans": spans}


def fold_trace_snapshots(snapshots: Iterable[Any]) -> Dict[str, Any]:
    """Left-fold per-shard trace snapshots, in shard order, into one.

    Mirrors :func:`repro.telemetry.fold_snapshots`: each shard recorded
    its spans independently with IDs starting at 0, so the fold rebases
    every shard's IDs past the previous shards' and tags spans with
    their shard index. Folding the same snapshots in the same order is
    byte-deterministic.
    """
    materialized = []
    for snapshot in snapshots:
        if isinstance(snapshot, str):
            snapshot = load_snapshot(snapshot)
        materialized.append(snapshot)
    folded: List[Dict[str, Any]] = []
    offset = 0
    tag_shards = len(materialized) > 1
    for shard_index, snapshot in enumerate(materialized):
        spans = snapshot.get("spans", [])
        for span in spans:
            rebased = dict(span)
            rebased["id"] = span["id"] + offset
            if span.get("parent") is not None:
                rebased["parent"] = span["parent"] + offset
            if tag_shards:
                attrs = dict(rebased.get("attrs") or {})
                attrs["shard"] = shard_index
                rebased["attrs"] = attrs
            folded.append(rebased)
        if spans:
            offset += max(span["id"] for span in spans) + 1
    return {"schema": TRACE_SCHEMA, "spans": folded}


def snapshot_to_chrome(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Render a trace snapshot as Chrome Trace Event JSON.

    Virtual seconds map to microseconds (``ts``/``dur``); complete
    events (``ph: "X"``) carry the span/parent IDs and attributes in
    ``args`` so Perfetto's query engine can rebuild the causal links.
    Tracks (``tid``) follow the nearest ancestor carrying a ``client``
    attribute, which puts each fleet client's rounds on its own row.
    """
    spans = snapshot.get("spans", [])
    by_id = {span["id"]: span for span in spans}

    def track(span: Dict[str, Any]) -> int:
        while span is not None:
            attrs = span.get("attrs") or {}
            if "client" in attrs:
                return int(attrs["client"]) + 1
            parent = span.get("parent")
            span = by_id.get(parent) if parent is not None else None
        return 0

    events = []
    for span in spans:
        attrs = span.get("attrs") or {}
        start = span["start"]
        end = span.get("end", start)
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span["name"].split(".", 1)[0],
            "ts": round(start * 1e6, 3),
            "dur": round(max(end - start, 0.0) * 1e6, 3),
            "pid": int(attrs.get("shard", 0)),
            "tid": track(span),
            "args": {"span_id": span["id"], "parent_id": span.get("parent"),
                     **attrs},
        })
    return {"displayTimeUnit": "ms", "traceEvents": events}


# ----------------------------------------------------------------------
# Head-based sampling.
# ----------------------------------------------------------------------


def sample_fraction(point_key: str, trial: int) -> float:
    """A stable pseudo-uniform draw in ``[0, 1)`` keyed on
    ``(point_key, trial)`` — the campaign's trial identity, the same
    pair that keys its seeds, caches and journals. SHA-256, not
    ``hash()``: independent of ``PYTHONHASHSEED`` and identical in
    every worker process, so a sampled sweep resumes and caches exactly
    like an unsampled one. Never touches :mod:`repro.util.rng`."""
    digest = hashlib.sha256(
        f"trace-sample|{point_key}|{trial}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def should_sample(point_key: str, trial: int, rate: float) -> bool:
    """Head-based sampling decision for one ``(point, trial)``.
    ``rate=1.0`` (or more) traces everything, ``0.0`` nothing."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return sample_fraction(point_key, trial) < rate


# ----------------------------------------------------------------------
# The active tracer (same scoping contract as the metrics registry).
# ----------------------------------------------------------------------

_active: "ContextVar[Optional[Tracer]]" = ContextVar(
    "repro_telemetry_active_tracer", default=None)


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (tracing off)."""
    return _active.get()


def install_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as the active one (``None`` disables)."""
    _active.set(tracer)


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as active; restores the previous on exit."""
    previous = _active.get()
    install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
