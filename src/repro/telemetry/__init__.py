"""Streaming, deterministic telemetry for the simulation stack.

The transport, network fabric and protocol clients publish counters,
histograms and virtual-time series into an optional
:class:`MetricsRegistry`; with none installed they publish nothing and
cost nothing. See :mod:`repro.telemetry.registry` for the scoping
contract and :mod:`repro.telemetry.metrics` for the determinism/merge
guarantees the campaign layer relies on.
"""

from repro.telemetry.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    LogBucketHistogram,
    TimeSeries,
    bucket_index,
    bucket_upper_edge,
)
from repro.telemetry.registry import (
    MetricsRegistry,
    current_registry,
    fold_snapshots,
    install_registry,
    use_registry,
)

__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "Gauge",
    "LogBucketHistogram",
    "MetricsRegistry",
    "TimeSeries",
    "bucket_index",
    "bucket_upper_edge",
    "current_registry",
    "fold_snapshots",
    "install_registry",
    "use_registry",
]
