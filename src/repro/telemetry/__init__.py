"""Streaming, deterministic telemetry for the simulation stack.

The transport, network fabric and protocol clients publish counters,
histograms and virtual-time series into an optional
:class:`MetricsRegistry`; with none installed they publish nothing and
cost nothing. See :mod:`repro.telemetry.registry` for the scoping
contract and :mod:`repro.telemetry.metrics` for the determinism/merge
guarantees the campaign layer relies on.

The same publishers also emit causal **spans** into an optional
:class:`Tracer` (:mod:`repro.telemetry.trace`) under the identical
zero-cost contract — virtual-time, RNG-free, byte-deterministic across
executors — and :mod:`repro.telemetry.tracetool` reconstructs victim
causal chains from exported traces.
"""

from repro.telemetry.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    LogBucketHistogram,
    TimeSeries,
    bucket_index,
    bucket_upper_edge,
)
from repro.telemetry.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    current_registry,
    fold_snapshots,
    install_registry,
    use_registry,
)
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    Span,
    Tracer,
    current_tracer,
    fold_trace_snapshots,
    install_tracer,
    load_snapshot,
    should_sample,
    snapshot_to_chrome,
    snapshot_to_jsonl,
    use_tracer,
)

__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "Gauge",
    "LogBucketHistogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "Span",
    "TRACE_SCHEMA",
    "TimeSeries",
    "Tracer",
    "bucket_index",
    "bucket_upper_edge",
    "current_registry",
    "current_tracer",
    "fold_snapshots",
    "fold_trace_snapshots",
    "install_registry",
    "install_tracer",
    "load_snapshot",
    "should_sample",
    "snapshot_to_chrome",
    "snapshot_to_jsonl",
    "use_registry",
    "use_tracer",
]
