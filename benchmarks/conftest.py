"""Shared benchmark infrastructure.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E10 plus the A1 ablation) as a campaign grid declaration, prints
the table the paper's claim implies, and writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite the
measured numbers. Campaign results additionally land as
``results/<experiment>.json`` and are content-hash cached under
``results/.cache`` — rerunning an unchanged benchmark replays the
cached records instead of recomputing the sweep.

Two invocation modes:

* full (default): the complete grids, statistical assertions included;
* ``--smoke``: each benchmark shrinks to a tiny grid (a few points,
  one trial) that exercises the whole campaign pipeline in seconds —
  the CI regression gate. Statistical assertions that need the full
  grid are skipped via the ``smoke`` fixture.

pytest-benchmark is optional: without the plugin a minimal ``benchmark``
fixture stands in (runs the function once, untimed), so the smoke job
needs nothing beyond pytest itself.
"""

from pathlib import Path
from typing import List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / ".cache"
JOURNAL_DIR = RESULTS_DIR / ".journal"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run tiny campaign grids (fast CI regression gate)")


@pytest.fixture
def smoke(request) -> bool:
    """Whether this run should use the reduced smoke grids."""
    return request.config.getoption("--smoke")


@pytest.fixture
def results_dir(smoke) -> Path:
    """Artifact directory for this run.

    Smoke runs land under ``results/smoke/`` so their tiny-grid tables
    and JSON exports never clobber the full-grid artifacts that
    EXPERIMENTS.md cites.
    """
    return RESULTS_DIR / "smoke" if smoke else RESULTS_DIR


try:  # pragma: no cover - exercised only without pytest-benchmark
    import pytest_benchmark  # noqa: F401
except ImportError:
    class _OnceBenchmark:
        """Minimal stand-in for the pytest-benchmark fixture."""

        def __call__(self, func, *args, **kwargs):
            return func(*args, **kwargs)

        def pedantic(self, func, args=(), kwargs=None, rounds=1,
                     iterations=1):
            return func(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _OnceBenchmark()


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], notes: str = "") -> str:
    """Render an aligned text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


@pytest.fixture
def emit_table(results_dir):
    """Print an experiment table and persist it under results/ (or
    results/smoke/ during ``--smoke`` runs)."""

    def _emit(experiment: str, title: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]], notes: str = "") -> str:
        text = format_table(title, headers, rows, notes)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / f"{experiment}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _emit


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The simulations are deterministic; repeated rounds would only
    re-measure identical work, so one round keeps the suite fast.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
