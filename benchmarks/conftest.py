"""Shared benchmark infrastructure.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E10), prints the table the paper's claim implies, and writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite the
measured numbers.
"""

from pathlib import Path
from typing import List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], notes: str = "") -> str:
    """Render an aligned text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


@pytest.fixture
def emit_table():
    """Print an experiment table and persist it under results/."""

    def _emit(experiment: str, title: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]], notes: str = "") -> str:
        text = format_table(title, headers, rows, notes)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _emit


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The simulations are deterministic; repeated rounds would only
    re-measure identical work, so one round keeps the suite fast.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
