"""P3 — the sharded megafleet: 100k+ clients, one population.

Proves the two claims the sharding layer makes and lands the megafleet
point on the repo's perf trajectory:

* **Exactness** — a ``shards=1`` serial world and a K-shard run fold to
  byte-identical telemetry: the full snapshot at fixed K across
  executor modes, and the population-invariant subset across shard
  counts (K=1 vs K=4, three seeds, on the shard-invariant spec).
* **Scale** — a ≥100k-client population (K=8, one provider corrupted)
  completes, and its victim fraction lands on the same corruption
  trend the 1k-client E2-style population measures: sharding changes
  the execution, never the experiment.

Full runs merge a ``megafleet`` block (clients, shards, rounds/s,
rounds/s-per-shard, peak RSS, victim fraction) into the committed
``BENCH_netsim.json`` trajectory next to the fast-path numbers;
``bench_perf_netsim`` preserves the block when it refreshes its own.
Smoke runs shrink the megafleet to 2 shards over ~1k clients and keep
every byte-equality check.
"""

import json
import resource
import time
from pathlib import Path

from repro.population.sharding import (
    ShardedFleet,
    invariant_snapshot_json,
    shard_invariant_spec,
)
from repro.scenarios.spec import materialize, population_spec

from benchmarks.conftest import run_once

#: Committed perf-trajectory file the megafleet block merges into.
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_netsim.json"

#: Seeds for every byte-equality check (equality must hold per seed).
EQUALITY_SEEDS = (101, 202, 303)

#: The megafleet's victim fraction must sit within this of the
#: 1k-client reference population under the same corruption (full runs).
TREND_TOLERANCE = 0.05

FULL = {"clients": 100_000, "shards": 8, "rounds": 2,
        "reference_clients": 1_000, "invariant_clients": 48,
        "fixed_k_clients": 16}
SMOKE = {"clients": 1_000, "shards": 2, "rounds": 2,
         "reference_clients": 200, "invariant_clients": 32,
         "fixed_k_clients": 16}


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _check_cross_shard_equality(clients: int) -> int:
    """K=1 vs K=4 on the shard-invariant spec: the population-invariant
    telemetry subset must fold to identical bytes. Returns the number
    of seeds checked (asserts on every one)."""
    for seed in EQUALITY_SEEDS:
        reference = materialize(shard_invariant_spec(clients, shards=1),
                                seed)
        reference.run()
        expected = invariant_snapshot_json(reference.telemetry)
        sharded = materialize(shard_invariant_spec(clients, shards=4), seed)
        sharded.run()
        got = sharded.invariant_snapshot_json()
        assert got == expected, (
            f"seed {seed}: K=4 invariant fold diverged from the serial "
            f"world ({len(got)} vs {len(expected)} bytes)")
    return len(EQUALITY_SEEDS)


def _check_fixed_shard_equality(clients: int) -> int:
    """Same K, different executors: the *full* folded snapshot must be
    byte-identical — execution mode cannot touch the telemetry."""
    spec = population_spec(num_clients=clients, rounds=2, corrupted=1)
    for seed in EQUALITY_SEEDS:
        folds = {}
        for mode in ("serial", "threads", "processes"):
            fleet = ShardedFleet(spec, seed, shards=4, workers=4)
            fleet.executor = mode
            fleet.run()
            folds[mode] = fleet.telemetry.snapshot_json()
        assert folds["serial"] == folds["threads"], (
            f"seed {seed}: thread-pool fold diverged from serial")
        assert folds["serial"] == folds["processes"], (
            f"seed {seed}: fork-pool fold diverged from serial")
    return len(EQUALITY_SEEDS)


def _run_population(clients: int, shards: int, rounds: int, seed: int):
    spec = population_spec(num_clients=clients, rounds=rounds,
                           corrupted=1, shards=shards)
    world = materialize(spec, seed)
    started = time.perf_counter()
    outcomes = world.run()
    elapsed = time.perf_counter() - started
    return outcomes, elapsed, world


def bench_p3_megafleet(benchmark, emit_table, smoke, results_dir):
    sizes = SMOKE if smoke else FULL

    def measure() -> dict:
        checked_cross = _check_cross_shard_equality(
            sizes["invariant_clients"])
        checked_fixed = _check_fixed_shard_equality(
            sizes["fixed_k_clients"])

        # The 1k-class reference population: same corruption, one world.
        ref_outcomes, ref_wall, _ = _run_population(
            sizes["reference_clients"], shards=1,
            rounds=sizes["rounds"], seed=42)

        # The megafleet point.
        outcomes, wall, world = _run_population(
            sizes["clients"], shards=sizes["shards"],
            rounds=sizes["rounds"], seed=42)
        shard_count = world.shards if isinstance(world, ShardedFleet) else 1
        return {
            "clients": sizes["clients"],
            "shards": shard_count,
            "rounds": outcomes.rounds,
            "wall_s": round(wall, 3),
            "rounds_per_s": round(outcomes.rounds / wall, 1),
            "rounds_per_s_per_shard": round(
                outcomes.rounds / wall / shard_count, 1),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "victim_fraction": round(outcomes.victim_fraction, 4),
            "availability": round(outcomes.availability, 4),
            "executed_mode": (world.executed_mode
                              if isinstance(world, ShardedFleet) else "legacy"),
            "reference_clients": sizes["reference_clients"],
            "reference_victim_fraction": round(
                ref_outcomes.victim_fraction, 4),
            "reference_wall_s": round(ref_wall, 3),
            "equality_seeds_cross_k": checked_cross,
            "equality_seeds_fixed_k": checked_fixed,
        }

    current = run_once(benchmark, measure)

    payload = {
        "experiment": "p3_megafleet",
        "mode": "smoke" if smoke else "full",
        "current": current,
        "trend_tolerance": TREND_TOLERANCE,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "p3_megafleet.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Full runs land the megafleet block on the committed trajectory
    # (merged, not rewritten — the fast-path numbers stay untouched).
    if not smoke and TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory["megafleet"] = {
            key: current[key]
            for key in ("clients", "shards", "rounds", "wall_s",
                        "rounds_per_s", "rounds_per_s_per_shard",
                        "peak_rss_mb", "victim_fraction",
                        "executed_mode", "reference_clients",
                        "reference_victim_fraction")}
        TRAJECTORY_PATH.write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n")

    emit_table(
        "p3_megafleet",
        f"P3: sharded megafleet "
        f"({'smoke' if smoke else 'full'} workload)",
        ["metric", "value"],
        [[name, value if isinstance(value, str) else f"{value:g}"]
         for name, value in current.items()],
        notes="Byte-equality checks ran first (cross-K invariant fold "
              "over 3 seeds; fixed-K serial/threads/processes full-fold "
              "over 3 seeds) — the megafleet numbers are only reported "
              "because the folds matched. victim_fraction must track "
              "the reference population within "
              f"{TREND_TOLERANCE} (full runs).")

    drift = abs(current["victim_fraction"]
                - current["reference_victim_fraction"])
    if not smoke:
        assert current["clients"] >= 100_000
        assert drift <= TREND_TOLERANCE, (
            f"megafleet victim fraction {current['victim_fraction']} "
            f"drifted {drift:.4f} from the "
            f"{current['reference_clients']}-client reference "
            f"{current['reference_victim_fraction']} "
            f"(tolerance {TREND_TOLERANCE})")
