"""Perf — the netsim fast-path benchmark and the repo's perf trajectory.

Micro and macro throughput of the simulation stack, written as
machine-readable numbers so speedups stop being anecdotes:

* **events/sec** — raw :class:`~repro.netsim.simulator.Simulator` heap
  throughput (schedule + drain, no-op callbacks);
* **datagrams/sec** — full delivery-fabric round trips across a two-hop
  route, with and without an observing on-path tap (the tapped route
  compiles a flight plan with tap dispatch, the clean one skips it);
* **fleet rounds/sec** — the 1k-client population macro bench:
  resolve → combine → SNTP rounds through real DNS/UDP, the workload
  every `ClientFleet` scenario and campaign trial multiplies;
* **campaign wall-clock** — a pool-attack grid under the adaptive
  executor: a calibration probe decides per run whether the sweep runs
  serially, on a thread pool, or on the chunked ``imap_unordered``
  fork pool (``workers=4`` is the parallelism *cap*, not a mandate —
  on a single-core runner the probe keeps the sweep serial instead of
  paying pool startup for nothing, which is exactly the 0.9× regression
  the adaptive path fixes).

``BASELINE`` pins the numbers measured on this repository immediately
*before* the fast-path PR (flight-plan caching, slotted core objects,
memoized DNS codec) on the same machine the committed current numbers
were taken on. Every rate metric is best-of-``REPEATS`` — the
simulations are deterministic, so repeated runs measure identical work
and the max filters scheduler noise (both sides of the baseline
comparison were sampled the same way). Results land in
``BENCH_netsim.json``: the run artifact under ``results/``
(``results/smoke/`` for ``--smoke``), plus the committed copy at the
repository root — the perf trajectory the ROADMAP tracks — refreshed on
every full run. Full runs assert the fleet macro bench holds a ≥2.5×
speedup over the pre-PR baseline and that the campaign wall-clock is no
worse than it (≥1.0×); smoke runs only prove the harness end to end
(tiny workloads, no baseline comparison).
"""

import gc
import json
import resource
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial
from repro.telemetry.trace import Tracer, use_tracer
from repro.netsim.address import Endpoint, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet, TapAction
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.scenarios.spec import materialize, population_spec
from repro.util.rng import RngRegistry

from benchmarks.conftest import run_once

#: Schema of BENCH_netsim.json (see README "Performance harness").
#: v2 adds ``current.peak_rss_mb``, per-shard fleet throughput, and the
#: optional top-level ``megafleet`` block (landed by
#: ``bench_p3_megafleet`` and preserved across full runs here).
#: v3 adds ``current.fleet_rounds_per_s_traced`` (the fleet macro bench
#: under an installed tracer) and the tracer-off guard that full runs
#: assert against the previously committed trajectory.
SCHEMA = "bench-netsim/3"

#: Committed perf-trajectory point, refreshed by full (non-smoke) runs.
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_netsim.json"

#: Pre-fast-path numbers (PR 4 tree) for the workloads below, measured
#: on the same machine that recorded the committed current numbers,
#: with the same best-of-``REPEATS`` sampling.
BASELINE = {
    "events_per_s": 216774.8,
    "datagrams_per_s_0tap": 45530.6,
    "datagrams_per_s_tapped": 42984.3,
    "fleet_rounds_per_s": 790.5,
    "campaign_wall_s": 10.014,
}

#: Samples per rate metric (the reported value is the fastest — see
#: module docstring).
REPEATS = 3

#: The macro-bench speedup the fast path must hold (full runs only).
TARGET_FLEET_SPEEDUP = 2.5

#: The campaign sweep must never lose to the pre-PR baseline again —
#: the adaptive executor's whole job (full runs only).
TARGET_CAMPAIGN_SPEEDUP = 1.0

#: The tracer-off fleet macro bench may drift at most this far below
#: the previously committed trajectory point — the observability
#: layer's zero-cost contract, measured rather than asserted (full
#: runs only; checked against the committed value *before* this run
#: refreshes it).
TRACER_OFF_TOLERANCE = 0.97

@contextmanager
def _quiesced_gc():
    """Collect up front, then keep the collector out of the timed
    region — the cycle collector firing mid-sample is pure noise, and
    both sides of the baseline comparison sampled this way."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


FULL = {"events": 200_000, "datagrams": 50_000,
        "fleet_clients": 1000, "fleet_rounds": 3,
        "campaign_trials": 4}
SMOKE = {"events": 20_000, "datagrams": 4_000,
         "fleet_clients": 200, "fleet_rounds": 2,
         "campaign_trials": 1}


def _bench_events(count: int) -> float:
    simulator = Simulator()
    noop = lambda: None  # noqa: E731 - the cheapest possible callback
    with _quiesced_gc():
        started = time.perf_counter()
        for index in range(count):
            simulator.schedule_at(index * 1e-6, noop)
        simulator.run()
        return count / (time.perf_counter() - started)


def _delivery_pair(tapped: bool):
    simulator = Simulator()
    registry = RngRegistry(7)
    topology = Topology(registry)
    topology.add_link("a", "m", LinkProfile.metro())
    topology.add_link("m", "b", LinkProfile.continental())
    internet = Internet(simulator, topology, registry)
    alpha = internet.add_host(Host("alpha", "a", [ip("10.0.0.1")]))
    beta = internet.add_host(Host("beta", "b", [ip("10.0.0.2")]))
    if tapped:
        internet.add_tap("a--m", lambda link, d: TapAction.passthrough())
    return internet, alpha, beta


def _bench_datagrams(count: int, tapped: bool) -> float:
    internet, alpha, beta = _delivery_pair(tapped)
    beta.bind(53, lambda datagram: None)
    sock = alpha.ephemeral_socket()
    destination = Endpoint(ip("10.0.0.2"), 53)
    payload = b"x" * 64
    with _quiesced_gc():
        started = time.perf_counter()
        for _ in range(count):
            sock.sendto(destination, payload)
            internet.simulator.run()
        return count / (time.perf_counter() - started)


def _bench_fleet(clients: int, rounds: int, shards: int = 1,
                 traced: bool = False) -> dict:
    # Publishers capture the ambient tracer at construction, so the
    # traced variant must materialize *inside* the tracer scope.
    scope = use_tracer(Tracer()) if traced else nullcontext()
    with scope:
        world = materialize(
            population_spec(num_clients=clients, rounds=rounds,
                            shards=shards),
            42)
        with _quiesced_gc():
            started = time.perf_counter()
            outcomes = world.run()
            elapsed = time.perf_counter() - started
    return {"rounds_per_s": outcomes.rounds / elapsed,
            "wall_s": elapsed, "rounds": outcomes.rounds,
            "shards": shards}


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _bench_campaign(trials: int) -> dict:
    grid = ParameterGrid(
        {"num_providers": (3, 5), "corrupted": (0, 1, 2)},
        fixed={"pool_size": 24, "answers_per_query": 4,
               "forged": ("203.0.113.1", "203.0.113.2")},
        name="perf_campaign")
    # workers=4 caps the adaptive executor; the calibration probe picks
    # the actual mode (the baseline run *forced* a 4-worker fork pool,
    # which is where the 0.9x came from on single-core runners).
    runner = CampaignRunner(pool_attack_trial, trials_per_point=trials,
                            base_seed=55, workers=4)
    started = time.perf_counter()
    result = runner.run(grid)
    return {"wall_s": time.perf_counter() - started, "mode": result.mode}


def bench_perf_netsim(benchmark, emit_table, smoke, results_dir):
    sizes = SMOKE if smoke else FULL

    def measure() -> dict:
        repeats = 1 if smoke else REPEATS
        fleets = [_bench_fleet(sizes["fleet_clients"], sizes["fleet_rounds"])
                  for _ in range(repeats)]
        best_fleet = max(fleets, key=lambda f: f["rounds_per_s"])
        traced = [_bench_fleet(sizes["fleet_clients"], sizes["fleet_rounds"],
                               traced=True)
                  for _ in range(repeats)]
        best_traced = max(traced, key=lambda f: f["rounds_per_s"])
        campaigns = [_bench_campaign(sizes["campaign_trials"])
                     for _ in range(repeats)]
        best_campaign = min(campaigns, key=lambda c: c["wall_s"])
        return {
            "events_per_s": round(
                max(_bench_events(sizes["events"])
                    for _ in range(repeats)), 1),
            "datagrams_per_s_0tap": round(
                max(_bench_datagrams(sizes["datagrams"], tapped=False)
                    for _ in range(repeats)), 1),
            "datagrams_per_s_tapped": round(
                max(_bench_datagrams(sizes["datagrams"], tapped=True)
                    for _ in range(repeats)), 1),
            "fleet_rounds_per_s": round(best_fleet["rounds_per_s"], 1),
            "fleet_rounds_per_s_traced": round(
                best_traced["rounds_per_s"], 1),
            "fleet_rounds_per_s_per_shard": round(
                best_fleet["rounds_per_s"] / best_fleet["shards"], 1),
            "fleet_shards": best_fleet["shards"],
            "fleet_wall_s": round(best_fleet["wall_s"], 3),
            "campaign_wall_s": round(best_campaign["wall_s"], 3),
            "campaign_mode": best_campaign["mode"],
            "peak_rss_mb": round(_peak_rss_mb(), 1),
        }

    # The tracer-off guard compares against the trajectory committed by
    # the *previous* full run, so capture it before this run refreshes
    # the file.
    committed = None
    if TRAJECTORY_PATH.exists():
        committed = json.loads(TRAJECTORY_PATH.read_text())

    current = run_once(benchmark, measure)

    # Smoke workloads are deliberately tiny: their numbers prove the
    # harness, not the speedup, so ratios are only computed when the
    # workload matches the baseline's.
    speedup = {}
    if not smoke:
        speedup = {
            name: round(current[name] / BASELINE[name], 2)
            for name in BASELINE if name != "campaign_wall_s"
        }
        speedup["campaign_wall_s"] = round(
            BASELINE["campaign_wall_s"] / current["campaign_wall_s"], 2)

    payload = {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "workload": dict(sizes),
        "baseline": dict(BASELINE),
        "current": current,
        "speedup": speedup,
        "target_fleet_speedup": TARGET_FLEET_SPEEDUP,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_netsim.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if not smoke:
        # Refresh the committed trajectory without dropping the
        # megafleet block bench_p3_megafleet owns.
        if committed is not None and "megafleet" in committed:
            payload["megafleet"] = committed["megafleet"]
        TRAJECTORY_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

    rows = [[name,
             f"{BASELINE[name]:g}" if name in BASELINE else "-",
             value if isinstance(value, str) else f"{value:g}",
             f"{speedup[name]:.2f}x" if name in speedup else "-"]
            for name, value in current.items()]
    emit_table(
        "perf_netsim",
        f"Perf: netsim fast-path throughput "
        f"({'smoke' if smoke else 'full'} workload)",
        ["metric", "pre-PR baseline", "current", "speedup"],
        rows,
        notes="Baseline: pre-fast-path tree, same machine, same "
              "best-of-N sampling. events/datagrams are rates (higher "
              "is better); campaign_wall_s is wall-clock (speedup is "
              "the ratio of walls) under the adaptive executor — "
              "campaign_mode records what its calibration probe chose "
              "(the 0.9x-regressed baseline forced a 4-worker fork "
              "pool even on single-core runners). Smoke workloads are "
              "scaled down and never compared against the full-size "
              "baseline.")

    if not smoke:
        assert speedup["fleet_rounds_per_s"] >= TARGET_FLEET_SPEEDUP, (
            f"fleet macro bench regressed: {speedup['fleet_rounds_per_s']}x "
            f"vs required {TARGET_FLEET_SPEEDUP}x "
            f"({current['fleet_rounds_per_s']} rounds/s against baseline "
            f"{BASELINE['fleet_rounds_per_s']})")
        assert speedup["campaign_wall_s"] >= TARGET_CAMPAIGN_SPEEDUP, (
            f"campaign sweep regressed: {speedup['campaign_wall_s']}x "
            f"vs required {TARGET_CAMPAIGN_SPEEDUP}x "
            f"({current['campaign_wall_s']}s in mode "
            f"{current['campaign_mode']!r} against baseline "
            f"{BASELINE['campaign_wall_s']}s)")
        # Zero-cost contract: with no tracer installed, the fleet macro
        # bench must hold the previously committed trajectory point to
        # within the tolerance — instrumentation guards are free.
        if committed is not None and committed.get("mode") == "full":
            floor = (committed["current"]["fleet_rounds_per_s"]
                     * TRACER_OFF_TOLERANCE)
            assert current["fleet_rounds_per_s"] >= floor, (
                f"tracer-off fleet bench regressed: "
                f"{current['fleet_rounds_per_s']} rounds/s vs committed "
                f"{committed['current']['fleet_rounds_per_s']} "
                f"(floor {floor:.1f} at {TRACER_OFF_TOLERANCE:.0%})")
