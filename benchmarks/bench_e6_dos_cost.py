"""E6 — §II fn.2's cost: the empty-answer DoS, and the quorum extension.

Claim reproduced: "This comes at the cost of allowing DoS attacks when
the attacker includes no responses at all in his poisonous response."

We corrupt 0..2 of 3 resolvers with the EMPTY behaviour and measure
availability under (a) the paper's strict semantics (all resolvers must
answer; pool collapses — the documented DoS) and (b) the quorum
extension (min_answers=2) that trades the hard guarantee (the bound
degrades from 1/3 to 1/2 share for a remaining attacker) for liveness.

Declared as a campaign grid that additionally sweeps the new
``loss_rate`` fault axis on the client access link: availability under
the quorum extension now degrades *gracefully* with natural loss, while
the strict reading stays all-or-nothing — the paper's availability
trade-off measured under imperfect networks.
"""

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

from benchmarks.conftest import CACHE_DIR, run_once

LOSS_RATES = (0.0, 0.15, 0.30)
MODES = {None: "strict (paper)", 2: "quorum ≥ 2"}

GRID = ParameterGrid(
    {"loss_rate": LOSS_RATES, "corrupted": (0, 1, 2),
     "min_answers": tuple(MODES)},
    fixed={"num_providers": 3, "answers_per_query": 4, "behavior": "empty"},
    name="e6_dos_cost",
)

RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=4,
                        base_seed=400, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid(
    {"loss_rate": (0.0,), "corrupted": (0, 1), "min_answers": tuple(MODES)},
    fixed={"num_providers": 3, "answers_per_query": 4, "behavior": "empty"},
    name="e6_dos_cost_smoke",
)

SMOKE_RUNNER = CampaignRunner(pool_attack_trial, base_seed=400,
                              cache_dir=CACHE_DIR)


def availability_label(fraction: float) -> str:
    if fraction == 1.0:
        return "yes"
    if fraction == 0.0:
        return "NO (DoS)"
    return f"{fraction:.0%}"


def bench_e6_dos_cost(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e6_dos_cost.json")

    rows = []
    for summary in result.summaries:
        ok = summary["ok"].mean
        # Failed trials contribute empty pools (size 0, benign 0), so
        # conditioning on produced pools is mean / P(ok) — size and
        # quality columns describe the pools that actually exist.
        pool_size = summary["pool_size"].mean / ok if ok else 0.0
        benign = summary["benign_fraction"].mean / ok if ok else 0.0
        rows.append([
            f"{summary.params['loss_rate']:.0%}",
            summary.params["corrupted"],
            MODES[summary.params["min_answers"]],
            availability_label(ok),
            round(pool_size),
            f"{benign:.0%}" if ok > 0.0 else "-",
            "yes" if summary["degraded"].mean > 0.0 else "no",
        ])
    emit_table(
        "e6_dos_cost",
        "E6 / §II fn.2: availability under the empty-answer DoS "
        "(× access-link loss)",
        ["loss rate", "corrupted (EMPTY)", "combination mode",
         "pool produced", "pool size", "benign fraction", "degraded"],
        rows,
        notes="Strict Algorithm 1: one empty answer collapses the pool "
              "(fn.2's documented cost) at every loss rate. The quorum "
              "extension keeps liveness while silent resolvers — "
              "attacker-emptied or loss-starved — stay below "
              "N - min_answers, degrading gracefully as the link decays. "
              "Size/benign columns are conditioned on produced pools.")

    def ok_at(**subset) -> float:
        return result.metric("ok", **subset).mean

    # The documented DoS: strict semantics collapse under any EMPTY
    # corruption, at every loss rate.
    for loss in (LOSS_RATES if not smoke else (0.0,)):
        assert ok_at(loss_rate=loss, corrupted=1, min_answers=None) == 0.0
        # Quorum with 2 EMPTY resolvers is below min_answers: also DoS.
        if not smoke:
            assert ok_at(loss_rate=loss, corrupted=2, min_answers=2) == 0.0
    # On a clean link the quorum extension restores liveness fully.
    assert ok_at(loss_rate=0.0, corrupted=0, min_answers=None) == 1.0
    assert ok_at(loss_rate=0.0, corrupted=1, min_answers=2) == 1.0
    assert result.metric("degraded",
                         loss_rate=0.0, corrupted=1, min_answers=2).mean == 1.0
    if not smoke:
        # The availability trend: a decaying access link erodes the
        # strict reading faster than the quorum extension.
        worst = LOSS_RATES[-1]
        assert (ok_at(loss_rate=worst, corrupted=0, min_answers=None)
                <= ok_at(loss_rate=0.0, corrupted=0, min_answers=None))
        assert (ok_at(loss_rate=worst, corrupted=0, min_answers=2)
                >= ok_at(loss_rate=worst, corrupted=0, min_answers=None))
