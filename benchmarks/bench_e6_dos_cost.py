"""E6 — §II fn.2's cost: the empty-answer DoS, and the quorum extension.

Claim reproduced: "This comes at the cost of allowing DoS attacks when
the attacker includes no responses at all in his poisonous response."

We corrupt 1..2 of 3 resolvers with the EMPTY behaviour and measure
availability under (a) the paper's strict semantics (all resolvers must
answer; pool collapses — the documented DoS) and (b) the quorum
extension (min_answers=2) that trades the hard guarantee (the bound
degrades from 1/3 to 1/2 share for a remaining attacker) for liveness.
"""

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.pool import PoolGeneratorConfig
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once


def run_case(corrupted: int, min_answers, seed: int):
    scenario = build_pool_scenario(seed=seed, num_providers=3,
                                   answers_per_query=4)
    if corrupted:
        corrupt_first_k(scenario.providers, corrupted, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.EMPTY))
    config = PoolGeneratorConfig(min_answers=min_answers,
                                 ignore_empty_answers=min_answers is not None)
    generator = scenario.make_generator(config=config)
    pool = scenario.generate_pool_sync(generator)
    benign = (scenario.directory.benign_fraction(pool.addresses)
              if pool.addresses else None)
    return pool, benign


def sweep():
    cases = []
    for corrupted in (0, 1, 2):
        for min_answers, mode in ((None, "strict (paper)"),
                                  (2, "quorum ≥ 2")):
            pool, benign = run_case(corrupted, min_answers,
                                    seed=400 + corrupted)
            cases.append((corrupted, mode, pool, benign))
    return cases


def bench_e6_dos_cost(benchmark, emit_table):
    cases = run_once(benchmark, sweep)

    rows = []
    for corrupted, mode, pool, benign in cases:
        rows.append([
            corrupted, mode,
            "yes" if pool.ok else "NO (DoS)",
            len(pool.addresses),
            f"{benign:.0%}" if benign is not None else "-",
            "yes" if pool.degraded else "no",
        ])
    emit_table(
        "e6_dos_cost",
        "E6 / §II fn.2: availability under the empty-answer DoS",
        ["corrupted (EMPTY)", "combination mode", "pool produced",
         "pool size", "benign fraction", "degraded"],
        rows,
        notes="Strict Algorithm 1: one empty answer collapses the pool "
              "(fn.2's documented cost). The quorum extension keeps "
              "liveness while the number of silent resolvers stays below "
              "N - min_answers.")

    by_key = {(corrupted, mode): pool
              for corrupted, mode, pool, _ in cases}
    assert by_key[(0, "strict (paper)")].ok
    assert not by_key[(1, "strict (paper)")].ok      # the DoS
    assert by_key[(1, "quorum ≥ 2")].ok              # liveness restored
    assert by_key[(1, "quorum ≥ 2")].degraded
    assert not by_key[(2, "quorum ≥ 2")].ok          # below quorum
