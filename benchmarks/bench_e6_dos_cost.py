"""E6 — §II fn.2's cost: the empty-answer DoS, and the quorum extension.

Claim reproduced: "This comes at the cost of allowing DoS attacks when
the attacker includes no responses at all in his poisonous response."

We corrupt 0..2 of 3 resolvers with the EMPTY behaviour and measure
availability under (a) the paper's strict semantics (all resolvers must
answer; pool collapses — the documented DoS) and (b) the quorum
extension (min_answers=2) that trades the hard guarantee (the bound
degrades from 1/3 to 1/2 share for a remaining attacker) for liveness.

Declared in grid-over-spec form: one base spec (Figure 1 with the
patient degraded-network resolver configuration) whose dotted paths —
``network.fault.loss_rate`` × ``provider.corrupted`` ×
``pool.min_answers`` — the campaign sweeps through
:func:`repro.campaign.spec_trial`: availability under the quorum
extension degrades *gracefully* with natural loss, while the strict
reading stays all-or-nothing — the paper's availability trade-off
measured under imperfect networks.
"""

from repro.campaign import CampaignRunner, ParameterGrid, spec_trial
from repro.scenarios.presets import degraded_network_spec
from repro.scenarios.spec import set_path

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

LOSS_RATES = (0.0, 0.15, 0.30)
MODES = {None: "strict (paper)", 2: "quorum ≥ 2"}

BASE_SPEC = set_path(degraded_network_spec(), "provider.behavior", "empty")

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"network.fault.loss_rate": LOSS_RATES,
     "provider.corrupted": (0, 1, 2),
     "pool.min_answers": tuple(MODES)},
    name="e6_dos_cost",
)

RUNNER = CampaignRunner(spec_trial, trials_per_point=4,
                        base_seed=400, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"network.fault.loss_rate": (0.0,),
     "provider.corrupted": (0, 1),
     "pool.min_answers": tuple(MODES)},
    name="e6_dos_cost_smoke",
)

SMOKE_RUNNER = CampaignRunner(spec_trial, base_seed=400,
                              cache_dir=CACHE_DIR)


def availability_label(fraction: float) -> str:
    if fraction == 1.0:
        return "yes"
    if fraction == 0.0:
        return "NO (DoS)"
    return f"{fraction:.0%}"


def bench_e6_dos_cost(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e6_dos_cost.json")

    rows = []
    for summary in result.summaries:
        ok = summary["ok"].mean
        # Failed trials contribute empty pools (size 0, benign 0), so
        # conditioning on produced pools is mean / P(ok) — size and
        # quality columns describe the pools that actually exist.
        pool_size = summary["pool_size"].mean / ok if ok else 0.0
        benign = summary["benign_fraction"].mean / ok if ok else 0.0
        rows.append([
            f"{summary.params['network.fault.loss_rate']:.0%}",
            summary.params["provider.corrupted"],
            MODES[summary.params["pool.min_answers"]],
            availability_label(ok),
            round(pool_size),
            f"{benign:.0%}" if ok > 0.0 else "-",
            "yes" if summary["degraded"].mean > 0.0 else "no",
        ])
    emit_table(
        "e6_dos_cost",
        "E6 / §II fn.2: availability under the empty-answer DoS "
        "(× access-link loss)",
        ["loss rate", "corrupted (EMPTY)", "combination mode",
         "pool produced", "pool size", "benign fraction", "degraded"],
        rows,
        notes="Strict Algorithm 1: one empty answer collapses the pool "
              "(fn.2's documented cost) at every loss rate. The quorum "
              "extension keeps liveness while silent resolvers — "
              "attacker-emptied or loss-starved — stay below "
              "N - min_answers, degrading gracefully as the link decays. "
              "Size/benign columns are conditioned on produced pools. "
              "Each point's full ScenarioSpec is recorded in the JSON "
              "export.")

    def ok_at(loss, corrupted, min_answers) -> float:
        return result.metric("ok", **{
            "network.fault.loss_rate": loss,
            "provider.corrupted": corrupted,
            "pool.min_answers": min_answers}).mean

    # The documented DoS: strict semantics collapse under any EMPTY
    # corruption, at every loss rate.
    for loss in (LOSS_RATES if not smoke else (0.0,)):
        assert ok_at(loss, 1, None) == 0.0
        # Quorum with 2 EMPTY resolvers is below min_answers: also DoS.
        if not smoke:
            assert ok_at(loss, 2, 2) == 0.0
    # On a clean link the quorum extension restores liveness fully.
    assert ok_at(0.0, 0, None) == 1.0
    assert ok_at(0.0, 1, 2) == 1.0
    assert result.metric("degraded", **{
        "network.fault.loss_rate": 0.0, "provider.corrupted": 1,
        "pool.min_answers": 2}).mean == 1.0
    if not smoke:
        # The availability trend: a decaying access link erodes the
        # strict reading faster than the quorum extension.
        worst = LOSS_RATES[-1]
        assert ok_at(worst, 0, None) <= ok_at(0.0, 0, None)
        assert ok_at(worst, 0, 2) >= ok_at(worst, 0, None)
