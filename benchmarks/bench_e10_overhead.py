"""E10 — §IV/§V 'easy to integrate': the cost of distribution.

Claim reproduced: the proposal's overhead is operational, not
architectural — queries fan out in parallel, so latency is governed by
the *slowest* resolver (not the sum), while bytes on the wire grow
linearly with N. We sweep N and report virtual latency, wire bytes and
upstream queries against the single-resolver plain-DNS baseline.

Declared as a campaign over an explicit point list (the baseline plus
one point per N); the shared :func:`repro.campaign.overhead_trial`
measures one acquisition per point.
"""

from repro.campaign import CampaignRunner, ParameterGrid, overhead_trial

from benchmarks.conftest import CACHE_DIR, run_once

from repro.scenarios import build_pool_scenario

N_SWEEP = [1, 3, 5, 9, 15]

POINTS = ([{"mechanism": "plain-dns", "num_providers": 1}]
          + [{"mechanism": "distributed-doh", "num_providers": n}
             for n in N_SWEEP])

GRID = ParameterGrid.from_points(
    POINTS,
    fixed={"pool_size": 40, "answers_per_query": 4},
    name="e10_overhead",
)

RUNNER = CampaignRunner(overhead_trial, base_seed=701, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid.from_points(
    POINTS[:3],
    fixed={"pool_size": 40, "answers_per_query": 4},
    name="e10_overhead_smoke",
)


def bench_e10_overhead(benchmark, emit_table, smoke, results_dir):
    grid = SMOKE_GRID if smoke else GRID
    result = run_once(benchmark, lambda: RUNNER.run(grid))
    result.write_json(results_dir / "e10_overhead.json")

    rows = []
    for summary in result.summaries:
        mechanism = summary.params["mechanism"]
        label = ("plain DNS (baseline)" if mechanism == "plain-dns"
                 else "distributed DoH")
        rows.append([
            label,
            summary.params["num_providers"],
            f"{summary['latency'].mean * 1000:.1f} ms",
            round(summary["bytes"].mean),
            round(summary["packets"].mean),
            round(summary["pool_size"].mean),
        ])
    emit_table(
        "e10_overhead",
        "E10 / §IV-V: overhead of distribution (virtual time, cold caches)",
        ["mechanism", "N", "latency", "wire bytes", "packets",
         "pool size"],
        rows,
        notes="Latency tracks the slowest provider (parallel fan-out + "
              "TLS handshake + recursion), not N; bytes/packets grow "
              "~linearly in N — the integration cost the paper calls "
              "acceptable.")

    if not smoke:
        def doh(metric, n):
            return result.metric(metric, mechanism="distributed-doh",
                                 num_providers=n).mean

        # Parallel fan-out: going 3 -> 15 resolvers must cost far less
        # than 5x the latency (it is bounded by the slowest, plus
        # scheduling).
        assert doh("latency", 15) < 3 * doh("latency", 3)
        assert doh("packets", 15) > doh("packets", 3)


def bench_e10_generation_wallclock(benchmark):
    """Real (host) wall-clock of a full N=3 generation, for regression
    tracking of the simulator itself."""
    def one_generation():
        scenario = build_pool_scenario(seed=711, num_providers=3,
                                       pool_size=40)
        return scenario.generate_pool_sync()

    pool = benchmark(one_generation)
    assert pool.ok
