"""E10 — §IV/§V 'easy to integrate': the cost of distribution.

Claim reproduced: the proposal's overhead is operational, not
architectural — queries fan out in parallel, so latency is governed by
the *slowest* resolver (not the sum), while bytes on the wire grow
linearly with N. We sweep N and report virtual latency, wire bytes and
upstream queries against the single-resolver plain-DNS baseline.
"""

from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

N_SWEEP = [1, 3, 5, 9, 15]


def measure_distributed(n: int, seed: int):
    scenario = build_pool_scenario(seed=seed, num_providers=n,
                                   pool_size=40, answers_per_query=4)
    bytes_before = scenario.internet.bytes_sent
    packets_before = scenario.internet.datagrams_sent
    pool = scenario.generate_pool_sync()
    return {
        "latency": pool.elapsed,
        "bytes": scenario.internet.bytes_sent - bytes_before,
        "packets": scenario.internet.datagrams_sent - packets_before,
        "pool_size": len(pool.addresses),
    }


def measure_plain_baseline(seed: int):
    scenario = build_pool_scenario(seed=seed, num_providers=1,
                                   pool_size=40, answers_per_query=4)
    stub = StubResolver(scenario.client, scenario.simulator,
                        scenario.providers[0].address, timeout=5.0)
    bytes_before = scenario.internet.bytes_sent
    packets_before = scenario.internet.datagrams_sent
    started = scenario.simulator.now
    outcomes = []
    stub.query(scenario.pool_domain, RRType.A, outcomes.append)
    scenario.simulator.run()
    return {
        "latency": scenario.simulator.now - started,
        "bytes": scenario.internet.bytes_sent - bytes_before,
        "packets": scenario.internet.datagrams_sent - packets_before,
        "pool_size": len(outcomes[0].addresses),
    }


def sweep():
    baseline = measure_plain_baseline(seed=700)
    distributed = {n: measure_distributed(n, seed=700 + n) for n in N_SWEEP}
    return baseline, distributed


def bench_e10_overhead(benchmark, emit_table):
    baseline, distributed = run_once(benchmark, sweep)

    rows = [[
        "plain DNS (baseline)", 1,
        f"{baseline['latency'] * 1000:.1f} ms",
        baseline["bytes"], baseline["packets"], baseline["pool_size"],
    ]]
    for n in N_SWEEP:
        m = distributed[n]
        rows.append([
            f"distributed DoH", n,
            f"{m['latency'] * 1000:.1f} ms",
            m["bytes"], m["packets"], m["pool_size"],
        ])
    emit_table(
        "e10_overhead",
        "E10 / §IV-V: overhead of distribution (virtual time, cold caches)",
        ["mechanism", "N", "latency", "wire bytes", "packets",
         "pool size"],
        rows,
        notes="Latency tracks the slowest provider (parallel fan-out + "
              "TLS handshake + recursion), not N; bytes/packets grow "
              "~linearly in N — the integration cost the paper calls "
              "acceptable.")

    latencies = [distributed[n]["latency"] for n in N_SWEEP]
    # Parallel fan-out: going 3 -> 15 resolvers must cost far less than
    # 5x the latency (it is bounded by the slowest, plus scheduling).
    assert latencies[-1] < 3 * latencies[1]
    packet_counts = [distributed[n]["packets"] for n in N_SWEEP]
    assert packet_counts[-1] > packet_counts[1]


def bench_e10_generation_wallclock(benchmark):
    """Real (host) wall-clock of a full N=3 generation, for regression
    tracking of the simulator itself."""
    def one_generation():
        scenario = build_pool_scenario(seed=711, num_providers=3,
                                       pool_size=40)
        return scenario.generate_pool_sync()

    pool = benchmark(one_generation)
    assert pool.ok
