"""E4 — §III-b: exponential decrease in N ("key size" analogy).

Claim reproduced: attack probability decreases exponentially in the
number of resolvers; equivalently, security bits grow *linearly* with N
at slope x·(-log2 p) — the asymptotic advantage the paper compares to
increasing a cryptographic key size.

Declared as a campaign grid over (N, p); the closed-form
:func:`repro.campaign.advantage_bits_trial` computes each point's bits.
"""

from repro.analysis.advantage import marginal_bits_per_resolver
from repro.analysis.model import resolvers_for_target_security
from repro.campaign import CampaignRunner, ParameterGrid, advantage_bits_trial

from benchmarks.conftest import CACHE_DIR, run_once

N_SWEEP = [3, 5, 9, 17, 33, 65]
P_SWEEP = [0.05, 0.10, 0.25, 0.50]
X = 0.5

GRID = ParameterGrid(
    {"n": N_SWEEP, "p_attack": P_SWEEP},
    fixed={"x": X},
    name="e4_asymptotic_advantage",
)

RUNNER = CampaignRunner(advantage_bits_trial, base_seed=4,
                        cache_dir=CACHE_DIR)

SMOKE_N = N_SWEEP[:3]
SMOKE_P = P_SWEEP[:2]

SMOKE_GRID = ParameterGrid(
    {"n": SMOKE_N, "p_attack": SMOKE_P},
    fixed={"x": X},
    name="e4_asymptotic_advantage_smoke",
)


def bench_e4_asymptotic_advantage(benchmark, emit_table, smoke, results_dir):
    grid = SMOKE_GRID if smoke else GRID
    n_sweep, p_sweep = (SMOKE_N, SMOKE_P) if smoke else (N_SWEEP, P_SWEEP)
    result = run_once(benchmark, lambda: RUNNER.run(grid))
    result.write_json(results_dir / "e4_asymptotic_advantage.json")

    bits = {(s.params["n"], s.params["p_attack"]): s["bits"].mean
            for s in result.summaries}
    targets = {p: resolvers_for_target_security(X, p, 2.0 ** -64)
               for p in p_sweep}

    rows = []
    for n in n_sweep:
        rows.append([n] + [f"{bits[(n, p)]:.1f}" for p in p_sweep])
    slope_row = ["bits/resolver"] + [
        f"{marginal_bits_per_resolver(X, p):.2f}" for p in p_sweep]
    rows.append(slope_row)
    rows.append(["N for 64-bit"] + [str(targets[p]) for p in p_sweep])
    emit_table(
        "e4_asymptotic_advantage",
        "E4 / §III-b: security bits (-log2 attack probability), x = 1/2",
        ["N"] + [f"p={p}" for p in p_sweep],
        rows,
        notes="Bits grow linearly in N (constant marginal bits per added "
              "resolver) == attack probability shrinks exponentially, the "
              "paper's key-size-style advantage.")

    for p in p_sweep:
        # Linearity check: doubling N (minus rounding) ~ doubles the
        # bits (full grid only — the smoke grid stops at N=9).
        if not smoke:
            assert bits[(33, p)] > 1.8 * bits[(17, p)] * 0.9
        # Monotone increase.
        for n1, n2 in zip(n_sweep, n_sweep[1:]):
            assert bits[(n2, p)] > bits[(n1, p)]
