"""E4 — §III-b: exponential decrease in N ("key size" analogy).

Claim reproduced: attack probability decreases exponentially in the
number of resolvers; equivalently, security bits grow *linearly* with N
at slope x·(-log2 p) — the asymptotic advantage the paper compares to
increasing a cryptographic key size.
"""

from repro.analysis.advantage import (
    marginal_bits_per_resolver,
    security_bits,
)
from repro.analysis.model import resolvers_for_target_security

from benchmarks.conftest import run_once

N_SWEEP = [3, 5, 9, 17, 33, 65]
P_SWEEP = [0.05, 0.10, 0.25, 0.50]
X = 0.5


def compute():
    bits = {(n, p): security_bits(n, X, p)
            for n in N_SWEEP for p in P_SWEEP}
    targets = {p: resolvers_for_target_security(X, p, 2.0 ** -64)
               for p in P_SWEEP}
    return bits, targets


def bench_e4_asymptotic_advantage(benchmark, emit_table):
    bits, targets = run_once(benchmark, compute)

    rows = []
    for n in N_SWEEP:
        rows.append([n] + [f"{bits[(n, p)]:.1f}" for p in P_SWEEP])
    slope_row = ["bits/resolver"] + [
        f"{marginal_bits_per_resolver(X, p):.2f}" for p in P_SWEEP]
    rows.append(slope_row)
    rows.append(["N for 64-bit"] + [str(targets[p]) for p in P_SWEEP])
    emit_table(
        "e4_asymptotic_advantage",
        "E4 / §III-b: security bits (-log2 attack probability), x = 1/2",
        ["N"] + [f"p={p}" for p in P_SWEEP],
        rows,
        notes="Bits grow linearly in N (constant marginal bits per added "
              "resolver) == attack probability shrinks exponentially, the "
              "paper's key-size-style advantage.")

    # Linearity check: doubling N (minus rounding) ~ doubles the bits.
    for p in P_SWEEP:
        assert bits[(33, p)] > 1.8 * bits[(17, p)] * 0.9
        # Monotone increase.
        for n1, n2 in zip(N_SWEEP, N_SWEEP[1:]):
            assert bits[(n2, p)] > bits[(n1, p)]
