"""P1 — the paper's corruption bound measured over a client population.

The single-client experiments (E2) measure the attacker's pool share
for one client per world and aggregate across trials. This benchmark
stands up whole fleets (hundreds to a thousand clients in one simulated
internet) and reads the *population* quantities straight from the
streaming telemetry pipeline: the fraction of clients that synced
against an attacker server, availability, and the clock-error
distribution.

Declared in grid-over-spec form: one base
:func:`repro.scenarios.spec.population_spec` with the campaign sweeping
dotted spec paths (``fleet.size`` × ``provider.corrupted``) through
:func:`repro.campaign.spec_trial`, so every point's full world
description lands verbatim in ``results/p1_population.json`` — along
with each trial's telemetry snapshot (``include_telemetry``), which the
bench asserts against the scalar metrics.

Claims reproduced at population scale:

* victim fraction grows with the corrupted-provider fraction and, with
  Algorithm 1's truncate-and-combine, is pinned to ``corrupted / N`` —
  the same trend the single-client E2 sweep measures as the attacker's
  pool share;
* a fault-free population campaign is bit-identical between serial and
  multiprocessing execution (per-trial telemetry registries, per-trial
  derived seeds).
"""

from repro.campaign import (
    CampaignRunner,
    ParameterGrid,
    pool_attack_trial,
    spec_trial,
)
from repro.scenarios.spec import population_spec

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

NUM_PROVIDERS = 3
CORRUPTED = (0, 1, 2, 3)
# Same forged set the population compiler synthesises by default, so
# the single-client reference measures exactly the same attack.
FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

BASE_SPEC = population_spec(rounds=5, mean_interval=16.0,
                            arrival="periodic", churn_rate=0.05,
                            num_providers=NUM_PROVIDERS)

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"fleet.size": (250, 1000), "provider.corrupted": CORRUPTED},
    name="p1_population",
)
RUNNER = CampaignRunner(spec_trial, trials_per_point=1, base_seed=1000,
                        include_telemetry=True, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_BASE = population_spec(rounds=3, churn_rate=0.05,
                             num_providers=NUM_PROVIDERS)
SMOKE_GRID = ParameterGrid.over_spec(
    SMOKE_BASE,
    {"provider.corrupted": (0, 1, 2)},
    fixed={"fleet.size": 200},
    name="p1_population_smoke",
)
SMOKE_RUNNER = CampaignRunner(spec_trial, base_seed=1000,
                              include_telemetry=True, cache_dir=CACHE_DIR)

# Single-client E2 reference sweep (attacker share of one generated
# pool per world) for the full-grid trend comparison.
E2_REFERENCE_GRID = ParameterGrid(
    {"corrupted": CORRUPTED},
    fixed={"behavior": "substitute", "forged": FORGED,
           "num_providers": NUM_PROVIDERS, "answers_per_query": 4},
    name="p1_e2_reference",
)
E2_REFERENCE_RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=3,
                                     base_seed=1000, cache_dir=CACHE_DIR)


def bench_p1_population(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "p1_population.json")

    rows = []
    for summary in result.summaries:
        rows.append([
            summary.params["fleet.size"],
            f"{summary.params['provider.corrupted']}/{NUM_PROVIDERS}",
            f"{summary['victim_fraction'].mean:.3f}",
            f"{summary['availability'].mean:.0%}",
            f"{summary['shifted_fraction'].mean:.3f}",
            f"{summary['mean_abs_clock_error'].mean * 1000:.1f} ms",
            int(summary["churn_leaves"].mean),
            int(summary["datagrams"].mean),
        ])
    emit_table(
        "p1_population",
        "P1: victim fraction across a client population "
        "(× corrupted provider fraction)",
        ["clients", "corrupted", "victim fraction", "availability",
         "shifted", "mean |clock err|", "churn", "datagrams"],
        rows,
        notes="Each row is one world, described end-to-end by the "
              "ScenarioSpec recorded in the JSON export: N clients "
              "resolving pool.ntp.org through all providers "
              "(Algorithm 1 combine), syncing once per round against a "
              "pool pick. Victim fraction tracks corrupted/N — the "
              "population-scale statement of the single-client E2 "
              "share bound. Metrics stream from the telemetry "
              "registry, whose snapshot rides in the JSON too.")

    # The exported registry snapshots agree with the scalar metrics
    # (one trial per point, so the totals must match exactly).
    for summary in result.summaries:
        snapshot = summary.telemetry[0]
        assert (snapshot["counter"]["net.datagrams_sent"]
                == summary["datagrams"].mean), summary.point_key

    def victim(**subset) -> float:
        return result.metric("victim_fraction", **subset).mean

    sizes = (200,) if smoke else tuple(GRID.axes["fleet.size"])
    corrupted_values = (SMOKE_GRID.axes["provider.corrupted"]
                        if smoke else CORRUPTED)
    for size in sizes:
        fractions = [victim(**{"fleet.size": size,
                               "provider.corrupted": c})
                     for c in corrupted_values]
        # The acceptance gate: monotone in the corrupted fraction.
        assert fractions == sorted(fractions), (
            f"victim fraction not monotone at {size} clients: {fractions}")
        assert fractions[0] == 0.0
        # Fault-free worlds lose no rounds.
        for c in corrupted_values:
            assert result.metric(
                "availability",
                **{"fleet.size": size, "provider.corrupted": c}).mean == 1.0

    if not smoke:
        # The 1k-client fleet reproduces the single-client E2 trend:
        # population victim fraction ≈ single-client attacker share.
        reference = E2_REFERENCE_RUNNER.run(E2_REFERENCE_GRID)
        for c in CORRUPTED:
            single = reference.metric("attacker_share", corrupted=c).mean
            fleet = victim(**{"fleet.size": 1000, "provider.corrupted": c})
            assert abs(fleet - single) < 0.05, (
                f"corrupted={c}: population {fleet:.3f} vs "
                f"single-client {single:.3f}")

    # Serial and parallel campaign execution of a fault-free population
    # run are bit-identical (no shared cache, so both really execute).
    check_grid = ParameterGrid.over_spec(
        population_spec(rounds=2, num_providers=NUM_PROVIDERS),
        {"provider.corrupted": (0, 2)},
        fixed={"fleet.size": 60 if smoke else 120},
        name="p1_serial_parallel",
    )
    serial = CampaignRunner(spec_trial, base_seed=77,
                            workers=0).run(check_grid)
    parallel = CampaignRunner(spec_trial, base_seed=77,
                              workers=4).run(check_grid)
    assert ([record.metrics for record in serial.records]
            == [record.metrics for record in parallel.records]), (
        "population campaign records differ between serial and parallel")
    assert ([record.telemetry for record in serial.records]
            == [record.telemetry for record in parallel.records]), (
        "telemetry snapshots differ between serial and parallel")
