"""E5 — §II fn.2: shortest-list truncation vs the over-population attack.

Claim reproduced: "We use the shortest list, because this prevents
attacks where the attacker seeks to overwhelm resolvers by including
more responses than usual (see attack against Chronos [1])."

Ablation: the attacker inflates its answer by increasing factors, under
the paper's SHORTEST policy and the NONE/MEDIAN alternatives. Shape to
expect: SHORTEST pins the attacker share at 1/N regardless of inflation;
NONE lets it grow toward 100%; MEDIAN holds while honest resolvers are
the median but is weaker than SHORTEST in mixed corruption.

Declared as a campaign grid over (inflation × policy), executed
end-to-end by the shared :func:`repro.campaign.pool_attack_trial` with
the ``inflate`` compromise behaviour.
"""

from repro.analysis.poolquality import (
    pool_fraction_with_truncation,
    pool_fraction_without_truncation,
)
from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial
from repro.core.policy import TruncationPolicy

from benchmarks.conftest import CACHE_DIR, run_once

INFLATION = [4, 8, 16, 32, 64]
POLICIES = [TruncationPolicy.SHORTEST, TruncationPolicy.MEDIAN,
            TruncationPolicy.NONE]
# The attacker's servers (recycled by the inflate behaviour as needed).
FORGED = tuple(f"203.0.113.{i + 1}" for i in range(8))

GRID = ParameterGrid(
    {"inflate_to": INFLATION, "truncation": POLICIES},
    fixed={"num_providers": 3, "answers_per_query": 4, "corrupted": 1,
           "behavior": "inflate", "forged": FORGED},
    name="e5_truncation_defense",
)

RUNNER = CampaignRunner(pool_attack_trial, base_seed=300,
                        cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid(
    {"inflate_to": (4, 32),
     "truncation": (TruncationPolicy.SHORTEST, TruncationPolicy.NONE)},
    fixed={"num_providers": 3, "answers_per_query": 4, "corrupted": 1,
           "behavior": "inflate", "forged": FORGED},
    name="e5_truncation_defense_smoke",
)


def bench_e5_truncation_defense(benchmark, emit_table, smoke, results_dir):
    grid = SMOKE_GRID if smoke else GRID
    result = run_once(benchmark, lambda: RUNNER.run(grid))
    result.write_json(results_dir / "e5_truncation_defense.json")

    rows = []
    for summary in result.summaries:
        inflate_to = summary.params["inflate_to"]
        policy = summary.params["truncation"]
        share = summary["attacker_share"].mean
        if policy is TruncationPolicy.SHORTEST:
            closed = pool_fraction_with_truncation(3, 1, 4, inflate_to)
        elif policy is TruncationPolicy.NONE:
            closed = pool_fraction_without_truncation(3, 1, 4, inflate_to)
        else:
            closed = float("nan")
        rows.append([
            inflate_to, policy.value,
            f"{share:.3f}",
            f"{closed:.3f}" if closed == closed else "-",
            "ATTACKER" if share > 0.5 else "bounded",
        ])
    emit_table(
        "e5_truncation_defense",
        "E5 / §II fn.2: attacker pool share vs answer inflation "
        "(1 of 3 resolvers corrupted)",
        ["inflate to", "policy", "measured share", "closed form",
         "verdict"],
        rows,
        notes="SHORTEST pins the attacker at 1/3 at any inflation; "
              "NONE lets inflation buy a majority — the [1] attack.")

    for summary in result.summaries:
        inflate_to = summary.params["inflate_to"]
        policy = summary.params["truncation"]
        share = summary["attacker_share"].mean
        if policy is TruncationPolicy.SHORTEST:
            assert abs(share - 1 / 3) < 1e-9
            assert share <= 0.5
        if policy is TruncationPolicy.NONE:
            assert abs(share - pool_fraction_without_truncation(
                3, 1, 4, inflate_to)) < 1e-9
            if inflate_to >= 16:
                assert share > 0.5
