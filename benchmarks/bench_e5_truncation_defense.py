"""E5 — §II fn.2: shortest-list truncation vs the over-population attack.

Claim reproduced: "We use the shortest list, because this prevents
attacks where the attacker seeks to overwhelm resolvers by including
more responses than usual (see attack against Chronos [1])."

Ablation: the attacker inflates its answer by increasing factors, under
the paper's SHORTEST policy and the NONE/MEDIAN alternatives. Shape to
expect: SHORTEST pins the attacker share at 1/N regardless of inflation;
NONE lets it grow toward 100%; MEDIAN holds while honest resolvers are
the median but is weaker than SHORTEST in mixed corruption.
"""

from repro.analysis.poolquality import (
    pool_fraction_with_truncation,
    pool_fraction_without_truncation,
)
from repro.attacks.overpopulation import OverPopulationAttack
from repro.core.policy import TruncationPolicy
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

INFLATION = [4, 8, 16, 32, 64]
POLICIES = [TruncationPolicy.SHORTEST, TruncationPolicy.MEDIAN,
            TruncationPolicy.NONE]


def sweep():
    results = []
    for inflate_to in INFLATION:
        for policy in POLICIES:
            scenario = build_pool_scenario(seed=300 + inflate_to,
                                           num_providers=3,
                                           answers_per_query=4)
            attack = OverPopulationAttack(scenario, corrupted=1,
                                          inflate_to=inflate_to)
            outcome = attack.run(policy)
            results.append((inflate_to, policy, outcome))
    return results


def bench_e5_truncation_defense(benchmark, emit_table):
    results = run_once(benchmark, sweep)

    rows = []
    for inflate_to, policy, outcome in results:
        if policy is TruncationPolicy.SHORTEST:
            closed = pool_fraction_with_truncation(3, 1, 4, inflate_to)
        elif policy is TruncationPolicy.NONE:
            closed = pool_fraction_without_truncation(3, 1, 4, inflate_to)
        else:
            closed = float("nan")
        rows.append([
            inflate_to, policy.value,
            f"{outcome.attacker_fraction:.3f}",
            f"{closed:.3f}" if closed == closed else "-",
            "ATTACKER" if outcome.attacker_controls_majority else "bounded",
        ])
    emit_table(
        "e5_truncation_defense",
        "E5 / §II fn.2: attacker pool share vs answer inflation "
        "(1 of 3 resolvers corrupted)",
        ["inflate to", "policy", "measured share", "closed form",
         "verdict"],
        rows,
        notes="SHORTEST pins the attacker at 1/3 at any inflation; "
              "NONE lets inflation buy a majority — the [1] attack.")

    for inflate_to, policy, outcome in results:
        if policy is TruncationPolicy.SHORTEST:
            assert abs(outcome.attacker_fraction - 1 / 3) < 1e-9
            assert not outcome.attacker_controls_majority
        if policy is TruncationPolicy.NONE and inflate_to >= 16:
            assert outcome.attacker_controls_majority
