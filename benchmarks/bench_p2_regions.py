"""P2 — per-region fleets with heterogeneous access links under an
on-path attacker.

The workload the spec redesign makes expressible: one population spread
over dedicated access regions — a fast metro edge in Europe, a slower
mid-tier edge in the US, a lossy far edge in Asia — with an on-path
attacker owning exactly *one* region's access link and poisoning the
plain-DNS pool answers that cross it.  The campaign sweeps region count
× attacker presence as dotted spec paths (``network.regions`` and
``attacks``), so the victim curve shows the paper's corruption bound
becoming a *coverage* bound: an attacker on one of R access paths
captures ≈ 1/R of the population, regardless of how many trusted
resolvers the clients fan out to.

Also exercised here (telemetry next-steps): the per-link drop
``TimeSeries`` — only the lossy Asian access link produces one — and
the registry snapshot exported into the campaign JSON via
``include_telemetry``.
"""

from repro.campaign import CampaignRunner, ParameterGrid, spec_trial
from repro.scenarios.spec import (
    AttackSpec,
    FaultSpec,
    LinkSpec,
    RegionSpec,
    population_spec,
    set_path,
)

from benchmarks.conftest import CACHE_DIR, run_once

REGIONS = (
    RegionSpec(name="eu", attach="eu-central",
               link=LinkSpec(latency=0.002, jitter=0.0005)),
    RegionSpec(name="us", attach="us-east",
               link=LinkSpec(latency=0.012, jitter=0.003)),
    RegionSpec(name="asia", attach="asia-east",
               link=LinkSpec(latency=0.030, jitter=0.008),
               fault=FaultSpec(loss_rate=0.05)),
)
ASIA_LINK = REGIONS[2].link_name

# The on-path attacker: owns the European access link only, rewrites
# every plain-DNS pool answer crossing it to its own four servers
# (which the compiler deploys as lying NTP servers).
FORGED = tuple(f"203.0.113.{101 + i}" for i in range(4))
ONPATH = (AttackSpec.of("mitm", at="region:eu", mode="poison",
                        forged=FORGED),)

BASE_SPEC = set_path(population_spec(num_clients=90, rounds=3),
                     "network.regions", REGIONS)

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"network.regions": (REGIONS[:1], REGIONS[:2], REGIONS[:3]),
     "attacks": ((), ONPATH)},
    name="p2_regions",
)
RUNNER = CampaignRunner(spec_trial, trials_per_point=1, base_seed=2000,
                        include_telemetry=True, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid.over_spec(
    population_spec(num_clients=60, rounds=2),
    {"attacks": ((), ONPATH)},
    fixed={"network.regions": REGIONS},
    name="p2_regions_smoke",
)
SMOKE_RUNNER = CampaignRunner(spec_trial, base_seed=2000,
                              include_telemetry=True, cache_dir=CACHE_DIR)


def bench_p2_regions(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "p2_regions.json")

    rows = []
    for summary in result.summaries:
        regions = summary.params["spec"].network.regions
        attacked = bool(summary.params["attacks"])
        rows.append([
            len(regions),
            "/".join(r.name for r in regions),
            "on-path @ eu" if attacked else "none",
            f"{summary['victim_fraction'].mean:.3f}",
            f"{summary['availability'].mean:.0%}",
            f"{summary['mean_abs_clock_error'].mean * 1000:.1f} ms",
            int(summary["datagrams"].mean),
        ])
    emit_table(
        "p2_regions",
        "P2: victim fraction of a per-region fleet vs an on-path "
        "attacker covering one access link",
        ["regions", "names", "attacker", "victim fraction",
         "availability", "mean |clock err|", "datagrams"],
        rows,
        notes="Clients spread round-robin over dedicated access regions "
              "with heterogeneous links (eu fast, us slower, asia lossy). "
              "The attacker rewrites pool answers on the eu access link "
              "only: its victim share is the fraction of clients behind "
              "that link (≈ 1/R), independent of the resolver count — "
              "path coverage, not resolver corruption, is the bound. "
              "Only the lossy asia link emits a per-link drop series.")

    def victim(regions, attacked) -> float:
        return result.metric("victim_fraction", **{
            "network.regions": regions,
            "attacks": ONPATH if attacked else ()}).mean

    region_sets = ([REGIONS] if smoke
                   else [REGIONS[:1], REGIONS[:2], REGIONS[:3]])
    # No attacker, no victims — in every layout.
    for regions in region_sets:
        assert victim(regions, attacked=False) == 0.0
    if smoke:
        fractions = [victim(REGIONS, attacked=True)]
    else:
        fractions = [victim(regions, attacked=True)
                     for regions in region_sets]
        # Fleet-covering attacker: every client behind the owned link.
        assert fractions[0] == 1.0
        # More regions dilute the attacker's coverage monotonically...
        assert fractions == sorted(fractions, reverse=True), fractions
        # ...and fault-free layouts lose no rounds.
        assert result.metric("availability", **{
            "network.regions": REGIONS[:2], "attacks": ()}).mean == 1.0
    # The attacker owns 1 of R access paths -> ≈ 1/R of the syncs.
    count = len(region_sets[-1])
    assert abs(fractions[-1] - 1.0 / count) < 0.08, fractions

    # Per-link drop telemetry: exactly the lossy asia access link
    # produces a net.link_drops series (lazily, so fault-free links
    # leave the snapshot untouched).
    for summary in result.summaries:
        snapshot = summary.telemetry[0]
        drop_keys = [key for key in snapshot.get("timeseries", {})
                     if key.startswith("net.link_drops")]
        if any(r.name == "asia" for r in summary.params["spec"].network.regions):
            assert f"net.link_drops{{link={ASIA_LINK}}}" in drop_keys, (
                summary.point_key, drop_keys)
        else:
            assert not drop_keys, (summary.point_key, drop_keys)

    # Serial == parallel, bit-identical — spec sweeps shard like any
    # other campaign (specs pickle across worker processes).
    check_grid = ParameterGrid.over_spec(
        set_path(population_spec(num_clients=45, rounds=2),
                 "network.regions", REGIONS),
        {"attacks": ((), ONPATH)},
        name="p2_serial_parallel",
    )
    serial = CampaignRunner(spec_trial, base_seed=88,
                            workers=0).run(check_grid)
    parallel = CampaignRunner(spec_trial, base_seed=88,
                              workers=4).run(check_grid)
    assert ([record.metrics for record in serial.records]
            == [record.metrics for record in parallel.records]), (
        "p2 campaign records differ between serial and parallel")
