"""A1 (ablation) — why plain DNS is the weak link (§I premise).

Not a numbered table in the paper, but the quantitative premise behind
it: the off-path attacker's success against plain DNS is governed by how
much of the resolver's (TXID × port) entropy a spray can cover. We fix a
weak resolver (8-bit TXID space, sequential ports) and sweep the
fraction of the TXID space the attacker covers; the measured poisoning
rate must track the covered fraction. This grounds the paper's
``p_attack`` in a mechanical quantity.
"""

from repro.attacks.offpath import OffPathPoisoner, SprayPlan
from repro.dns.message import Question
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

TXID_BITS = 8            # the weak resolver's space: 256 values
COVERED_BITS = [4, 5, 6, 7, 8]
TRIALS = 12
FORGED = [IPAddress("203.0.113.200")]


def attempt(seed: int, covered_bits: int) -> bool:
    """One poisoning race; True when the forgery was accepted."""
    scenario = build_pool_scenario(
        seed=seed, num_providers=1,
        resolver_config=ResolverConfig(txid_bits=TXID_BITS,
                                       randomize_txid=True))
    victim = scenario.providers[0]
    victim.host._randomize_ports = False
    poisoner = OffPathPoisoner(scenario.internet,
                               injection_node=victim.host.node)
    outcomes = []
    victim.resolver.resolve(scenario.pool_domain, RRType.A, outcomes.append)
    poisoner.spray(victim.address, SprayPlan(
        question=Question(scenario.pool_domain, RRType.A),
        spoofed_server=Endpoint(IPAddress("10.0.0.1"), 53),
        target_ports=poisoner.sequential_port_guesses(2),
        txid_guesses=poisoner.txid_space(covered_bits),
        forged_addresses=FORGED,
    ))
    scenario.simulator.run()
    return victim.resolver.stats.poisoned_acceptances > 0


def sweep():
    results = []
    for covered_bits in COVERED_BITS:
        wins = sum(
            1 for trial in range(TRIALS)
            if attempt(seed=1000 + covered_bits * 100 + trial,
                       covered_bits=covered_bits))
        results.append((covered_bits, wins))
    return results


def bench_a1_offpath_ablation(benchmark, emit_table):
    results = run_once(benchmark, sweep)

    rows = []
    for covered_bits, wins in results:
        coverage = 2 ** covered_bits / 2 ** TXID_BITS
        rows.append([
            f"2^{covered_bits}",
            f"{coverage:.0%}",
            f"{wins}/{TRIALS}",
            f"{wins / TRIALS:.2f}",
        ])
    emit_table(
        "a1_offpath_ablation",
        "A1 (ablation): off-path poisoning rate vs TXID-space coverage "
        "(8-bit resolver, predictable ports)",
        ["txids sprayed", "space covered", "poisoned runs",
         "measured rate"],
        rows,
        notes="The poisoning rate tracks the covered entropy fraction — "
              "the mechanical origin of the paper's per-resolver "
              "p_attack. A hardened 16-bit/random-port resolver pushes "
              "the same spray to ~0 (tests/attacks/test_offpath.py).")

    rates = {bits: wins / TRIALS for bits, wins in results}
    assert rates[8] == 1.0          # full coverage always wins
    assert rates[4] < rates[8]      # partial coverage loses sometimes
    # Monotone (non-strict) increase with coverage.
    ordered = [rates[b] for b in COVERED_BITS]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
