"""A1 (ablation) — why plain DNS is the weak link (§I premise).

Not a numbered table in the paper, but the quantitative premise behind
it: the off-path attacker's success against plain DNS is governed by how
much of the resolver's (TXID × port) entropy a spray can cover. We fix a
weak resolver (8-bit TXID space, sequential ports) and sweep the
fraction of the TXID space the attacker covers; the measured poisoning
rate must track the covered fraction. This grounds the paper's
``p_attack`` in a mechanical quantity.

Declared as a campaign grid over ``covered_bits``; each trial of the
shared :func:`repro.campaign.offpath_spray_trial` runs one poisoning
race in a fresh world (trials_per_point = races per coverage level).
"""

from repro.campaign import CampaignRunner, ParameterGrid, offpath_spray_trial

from benchmarks.conftest import CACHE_DIR, run_once

TXID_BITS = 8            # the weak resolver's space: 256 values
COVERED_BITS = [4, 5, 6, 7, 8]
TRIALS = 12

GRID = ParameterGrid(
    {"covered_bits": COVERED_BITS},
    fixed={"txid_bits": TXID_BITS, "port_guesses": 2},
    name="a1_offpath_ablation",
)

RUNNER = CampaignRunner(offpath_spray_trial, trials_per_point=TRIALS,
                        base_seed=1000, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid(
    {"covered_bits": (4, 8)},
    fixed={"txid_bits": TXID_BITS, "port_guesses": 2},
    name="a1_offpath_ablation_smoke",
)

SMOKE_RUNNER = CampaignRunner(offpath_spray_trial, trials_per_point=2,
                              base_seed=1000, cache_dir=CACHE_DIR)


def bench_a1_offpath_ablation(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "a1_offpath_ablation.json")

    rows = []
    rates = {}
    for summary in result.summaries:
        covered_bits = summary.params["covered_bits"]
        poisoned = summary["poisoned"]
        wins = round(poisoned.mean * poisoned.count)
        rates[covered_bits] = poisoned.mean
        coverage = 2 ** covered_bits / 2 ** TXID_BITS
        rows.append([
            f"2^{covered_bits}",
            f"{coverage:.0%}",
            f"{wins}/{poisoned.count}",
            f"{poisoned.mean:.2f}",
        ])
    emit_table(
        "a1_offpath_ablation",
        "A1 (ablation): off-path poisoning rate vs TXID-space coverage "
        "(8-bit resolver, predictable ports)",
        ["txids sprayed", "space covered", "poisoned runs",
         "measured rate"],
        rows,
        notes="The poisoning rate tracks the covered entropy fraction — "
              "the mechanical origin of the paper's per-resolver "
              "p_attack. A hardened 16-bit/random-port resolver pushes "
              "the same spray to ~0 (tests/attacks/test_offpath.py).")

    assert rates[8] == 1.0          # full coverage always wins
    if not smoke:
        assert rates[4] < rates[8]  # partial coverage loses sometimes
        # Monotone (non-strict) increase with coverage.
        ordered = [rates[b] for b in COVERED_BITS]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
